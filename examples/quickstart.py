"""Quickstart: run the paper's TF/IDF → K-means workflow end to end.

Generates a small synthetic corpus in the style of the paper's *Mix* data
set, runs the fused workflow on a simulated 16-core node, and prints the
clustering together with the virtual-time phase breakdown.

Run with::

    python examples/quickstart.py
"""

from repro import (
    MIX_PROFILE,
    MemStorage,
    SimScheduler,
    build_tfidf_kmeans_workflow,
    generate_corpus,
    paper_node,
    store_corpus,
)


def main() -> None:
    # 1. A corpus: ~230 documents statistically matched to Table 1's Mix.
    corpus = generate_corpus(MIX_PROFILE, scale=0.01, seed=42)
    storage = MemStorage()
    store_corpus(storage, corpus, prefix="input/")
    print(f"corpus: {len(corpus)} documents, {corpus.total_bytes / 1e6:.1f} MB")

    # 2. The paper's workflow, fused (in-memory handoff between operators).
    workflow = build_tfidf_kmeans_workflow(
        mode="merged", wc_dict_kind="map", n_clusters=8, max_iters=10
    )

    # 3. Execute on a simulated 16-core node with 16 threads.
    scheduler = SimScheduler(paper_node(cores=16))
    result = workflow.run(
        scheduler,
        storage,
        inputs={"tfidf.corpus_prefix": "input/"},
        workers=16,
    )

    # 4. Inspect the outcome.
    clusters = result.value("kmeans.clusters")
    print(f"\nclusters (k={clusters.n_clusters}, "
          f"{clusters.n_iters} iterations, converged={clusters.converged}):")
    for cluster_id, size in enumerate(clusters.cluster_sizes()):
        print(f"  cluster {cluster_id}: {size} documents")

    print(f"\nvirtual execution time on {scheduler.machine.name}: "
          f"{result.total_s:.3f}s across phases:")
    for phase, seconds in result.breakdown().items():
        print(f"  {phase:>12}: {seconds:7.3f}s")
    print(f"peak modelled memory: {result.peak_resident_bytes / 1e6:.1f} MB")

    # 5. The same run with one thread, to see what parallelism bought us.
    single = build_tfidf_kmeans_workflow(mode="merged").run(
        SimScheduler(paper_node(16)),
        storage,
        inputs={"tfidf.corpus_prefix": "input/"},
        workers=1,
    )
    print(f"\n1 thread:  {single.total_s:8.3f}s")
    print(f"16 threads:{result.total_s:8.3f}s "
          f"(speedup {single.total_s / result.total_s:.1f}x)")


if __name__ == "__main__":
    main()
