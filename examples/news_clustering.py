"""Cluster real documents and inspect what each cluster is about.

This example uses the operators *functionally* — no simulation, just the
analytics — on a small hand-written corpus of short "news" items across
four topics, then prints each cluster's highest-TF/IDF terms. It shows
that the library is a working text-analytics toolkit, not only a
performance model.

Run with::

    python examples/news_clustering.py
"""

from collections import defaultdict

from repro import Corpus, KMeansOperator, TfIdfOperator
from repro.text import Tokenizer

SPORTS = [
    "The team won the league match and the coach praised the players after the game",
    "The striker scored twice and the team won the championship match of the season",
    "The coach said the players trained hard before the league game this season",
    "Fans watched the match as the team scored late to win the league game",
    "The captain led the players and the club won the championship this season",
    "The club signed a striker and the coach expects the team to win the league",
]

MARKETS = [
    "Shares fell as investors worried about interest rates and rising inflation",
    "The bank raised interest rates citing inflation and investors sold shares",
    "Earnings beat expectations and the stock price rose as investors bought shares",
    "Markets retreated as inflation data worried investors and bond yields rose",
    "The company raised its dividend and the stock price rose in heavy trading",
    "Analysts said inflation and interest rates will weigh on shares and markets",
]

SCIENCE = [
    "Astronomers used the space telescope to observe a distant galaxy and its stars",
    "The telescope captured images of stars forming in a nebula of gas and dust",
    "Researchers observed the planet's atmosphere with the space telescope instruments",
    "The probe returned samples and scientists studied dust from the early solar system",
    "Scientists observed two black holes merging and measured the gravitational waves",
    "The mission will observe how galaxies and stars formed in the early universe",
]

COOKING = [
    "Simmer the tomato sauce slowly and season the pasta with basil and garlic",
    "Knead the dough and bake the bread in a hot oven until the crust is golden",
    "Roast the vegetables with olive oil and season the dish with lemon and garlic",
    "Whisk the eggs with sugar and bake the cake in the oven until golden",
    "Marinate the chicken in garlic and oil then grill it and season the sauce",
    "Stir the onions slowly in butter and season the soup before serving the dish",
]

TOPICS = {"sports": SPORTS, "markets": MARKETS, "science": SCIENCE, "cooking": COOKING}


def top_terms(result, matrix, members, k=6):
    """Highest mean TF/IDF terms across a cluster's documents."""
    totals = defaultdict(float)
    for doc in members:
        for term_id, score in matrix.row(doc).items():
            totals[term_id] += score
    ranked = sorted(totals.items(), key=lambda kv: -kv[1])[:k]
    return [result.vocabulary[term_id] for term_id, _ in ranked]


def main() -> None:
    texts, labels = [], []
    for topic, docs in TOPICS.items():
        texts.extend(docs)
        labels.extend([topic] * len(docs))
    corpus = Corpus.from_texts("news", texts)

    # Stop words and hapax terms matter on tiny documents: dropping both
    # leaves the topical vocabulary that actually links documents.
    tfidf = TfIdfOperator(
        wc_dict_kind="map",
        tokenizer=Tokenizer(drop_stopwords=True, min_length=3),
        min_df=2,
    )
    scores = tfidf.fit_transform(corpus)
    print(f"{scores.n_docs} documents, vocabulary of {len(scores.vocabulary)} terms")

    # k-means++ with a few restarts, keeping the lowest-inertia solution —
    # the standard recipe for small, clumpy inputs.
    clustering = min(
        (
            KMeansOperator(
                n_clusters=4, max_iters=50, seed=seed, init="kmeans++"
            ).fit(scores.matrix)
            for seed in range(8)
        ),
        key=lambda result: result.inertia,
    )
    print(f"k-means converged after {clustering.n_iters} iterations "
          f"(best of 8 restarts, inertia {clustering.inertia:.2f})\n")

    members_by_cluster = defaultdict(list)
    for doc, cluster in enumerate(clustering.assignments):
        members_by_cluster[cluster].append(doc)

    pure = 0
    for cluster in sorted(members_by_cluster):
        members = members_by_cluster[cluster]
        topics = sorted({labels[doc] for doc in members})
        terms = top_terms(scores, scores.matrix, members)
        if len(topics) == 1:
            pure += len(members)
        print(f"cluster {cluster} ({len(members)} docs, topics: {', '.join(topics)})")
        print(f"   top terms: {', '.join(terms)}")
    print(f"\n{pure}/{len(texts)} documents sit in single-topic clusters")


if __name__ == "__main__":
    main()
