"""Thread-scaling study in the style of the paper's Figures 1 and 2.

Sweeps the simulated thread count for the K-means and TF/IDF operators on
both corpus profiles and prints self-relative speedup curves, reproducing
the paper's observation that the larger data set scales much further.

Run with::

    python examples/thread_scaling.py
"""

from repro import (
    MIX_PROFILE,
    NSF_ABSTRACTS_PROFILE,
    self_relative_speedups,
)
from repro.bench import prepare_workload, run_paper_workflow
from repro.core import format_speedup_table

THREADS = (1, 2, 4, 8, 12, 16, 20)


def sweep(workload, phase_selector):
    times = {}
    for workers in THREADS:
        result = run_paper_workflow(
            workload, mode="discrete", wc_dict_kind="map", workers=workers
        )
        times[workers] = phase_selector(result.breakdown())
    return times


def main() -> None:
    mix = prepare_workload(MIX_PROFILE, scale=0.008, seed=2)
    nsf = prepare_workload(NSF_ABSTRACTS_PROFILE, scale=0.004, seed=2)
    print(f"Mix: {mix.n_docs} docs   NSF Abstracts: {nsf.n_docs} docs")
    print("(virtual times extrapolated to the full Table 1 sizes)\n")

    kmeans = {
        "Mix": sweep(mix, lambda b: b["kmeans"]),
        "NSF abstracts": sweep(nsf, lambda b: b["kmeans"]),
    }
    print(format_speedup_table(kmeans, title="K-means operator (cf. Figure 1)"))
    print()

    def tfidf_phase(breakdown):
        return breakdown["input+wc"] + breakdown["transform"] + breakdown["tfidf-output"]

    tfidf = {
        "Mix": sweep(mix, tfidf_phase),
        "NSF abstracts": sweep(nsf, tfidf_phase),
    }
    print(format_speedup_table(tfidf, title="TF/IDF operator (cf. Figure 2)"))

    mix_kmeans = self_relative_speedups(kmeans["Mix"])
    nsf_kmeans = self_relative_speedups(kmeans["NSF abstracts"])
    print(
        f"\nK-means at 20 threads: Mix {mix_kmeans[20]:.1f}x vs "
        f"NSF {nsf_kmeans[20]:.1f}x — the small corpus runs out of "
        f"scheduling chunks (fixed 8K-document grain), the large one keeps scaling."
    )


if __name__ == "__main__":
    main()
