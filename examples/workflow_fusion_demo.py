"""Workflow fusion (paper §3.3): discrete vs merged, at 1 and 16 threads.

Builds the TF/IDF → K-means workflow both ways — operators communicating
through an ARFF file on the simulated disk, versus handing the scores over
in memory — and shows the paper's headline effect: the file round trip is
a modest overhead sequentially but dominates once every other phase runs
in parallel. Also demonstrates the :func:`repro.fuse_workflow` rewriter.

Run with::

    python examples/workflow_fusion_demo.py
"""

from repro import (
    NSF_ABSTRACTS_PROFILE,
    MemStorage,
    SimScheduler,
    build_tfidf_kmeans_workflow,
    fuse_workflow,
    generate_corpus,
    paper_node,
    store_corpus,
)

PHASES = ["input+wc", "tfidf-output", "kmeans-input", "transform", "kmeans", "output"]


def run(workflow, storage, workers):
    return workflow.run(
        SimScheduler(paper_node(16)),
        storage,
        inputs={"tfidf.corpus_prefix": "input/"},
        workers=workers,
    )


def main() -> None:
    corpus = generate_corpus(NSF_ABSTRACTS_PROFILE, scale=0.003, seed=1)
    storage = MemStorage()
    store_corpus(storage, corpus, prefix="input/")
    print(f"corpus: {len(corpus)} documents (NSF-Abstracts profile)\n")

    results = {}
    for workers in (1, 16):
        for mode in ("discrete", "merged"):
            workflow = build_tfidf_kmeans_workflow(mode=mode, max_iters=10)
            results[(mode, workers)] = run(workflow, storage, workers)

    header = f"{'phase':>14} | {'disc/1T':>9} | {'merg/1T':>9} | {'disc/16T':>9} | {'merg/16T':>9}"
    print(header)
    print("-" * len(header))
    for phase in PHASES:
        cells = [
            results[(mode, workers)].breakdown().get(phase, 0.0)
            for workers in (1, 16)
            for mode in ("discrete", "merged")
        ]
        print(f"{phase:>14} | " + " | ".join(f"{c:9.3f}" for c in cells))
    totals = [
        results[(mode, workers)].total_s
        for workers in (1, 16)
        for mode in ("discrete", "merged")
    ]
    print("-" * len(header))
    print(f"{'total':>14} | " + " | ".join(f"{t:9.3f}" for t in totals))

    for workers in (1, 16):
        d = results[("discrete", workers)].total_s
        m = results[("merged", workers)].total_s
        print(f"\nat {workers:2} thread(s): storing the intermediate costs "
              f"{(d / m - 1) * 100:5.1f}% extra (discrete/merged = {d / m:.2f}x)")

    # The fusion rewriter turns a discrete graph into the merged one.
    workflow = build_tfidf_kmeans_workflow(mode="discrete", max_iters=10)
    report = fuse_workflow(workflow)
    fused = run(workflow, storage, 16)
    print(f"\nfuse_workflow() rewrote {report.n_fused} edge(s): "
          f"{', '.join(report.fused_edges)}")
    print(f"fused graph matches merged mode: "
          f"{abs(fused.total_s - results[('merged', 16)].total_s) < 1e-9}")


if __name__ == "__main__":
    main()
