"""Visualise *why* a phase stops scaling, with ASCII schedule traces.

Renders the simulated per-core schedule of the K-means assignment loop on
both corpus profiles. On Mix the fixed 8K-document grain produces only ~3
chunks — three busy cores and thirteen idle ones — while NSF fills the
machine; this is Figure 1's mechanism made visible.

Run with::

    python examples/schedule_trace.py
"""

from repro import MIX_PROFILE, NSF_ABSTRACTS_PROFILE, SimScheduler, paper_node
from repro.bench import prepare_workload
from repro.exec import render_phase_trace
from repro.ops import KMeansOperator, TfIdfOperator


def first_assignment_phase(workload, workers=16):
    scheduler = SimScheduler(paper_node(16))
    tfidf = TfIdfOperator(wc_dict_kind="map", scale=workload.scale)
    scores = tfidf.run_simulated(scheduler, workload.storage, workload.prefix,
                                 workers=workers)
    kmeans = KMeansOperator(max_iters=1, scale=workload.scale)
    result = kmeans.run_simulated(scheduler, scores.matrix, workers=workers)
    # The first phase of the iteration is the parallel assignment.
    return result.timeline.phases[0]


def main() -> None:
    mix = prepare_workload(MIX_PROFILE, scale=0.008, seed=4)
    nsf = prepare_workload(NSF_ABSTRACTS_PROFILE, scale=0.004, seed=4)

    print("K-means assignment on 16 simulated cores")
    print("=" * 72)
    print("\nMix (23,432 docs at full scale -> ~3 chunks of 8K docs):\n")
    print(render_phase_trace(first_assignment_phase(mix), width=56))
    print("\nNSF Abstracts (101,483 docs -> ~13 chunks):\n")
    print(render_phase_trace(first_assignment_phase(nsf), width=56))
    print(
        "\nThe idle rows on Mix are Figure 1's plateau: no matter how many"
        "\ncores the node has, three chunks only ever occupy three of them."
    )


if __name__ == "__main__":
    main()
