"""Tour of the cost-based workflow planner (the paper's conclusion,
mechanised).

The paper ends by noting that fusion and data-structure choice "are
influenced by the presence and degree of intra-node parallelism" and that
the choice "must be taken judiciously". The planner does exactly that: it
pilots every candidate configuration on a sample of the input and ranks
them for the full data set — including mixed per-phase dictionary
assignments — optionally under a memory budget.

Run with::

    python examples/planner_tour.py
"""

from repro import (
    MIX_PROFILE,
    MemStorage,
    WorkflowPlanner,
    generate_corpus,
    paper_node,
    store_corpus,
)


def main() -> None:
    corpus = generate_corpus(MIX_PROFILE, scale=0.01, seed=5)
    storage = MemStorage()
    store_corpus(storage, corpus, prefix="input/")
    print(f"planning for {len(corpus)} documents on a 16-core node\n")

    planner = WorkflowPlanner(
        paper_node(16),
        dict_kinds=("map", "unordered_map"),
        modes=("merged", "discrete"),
        worker_options=(1, 4, 16),
        mixed_dicts=True,
    )

    plan = planner.plan(storage, "input/", pilot_docs=64, max_iters=5)
    print(plan.explain())
    best = plan.best
    print(f"\nwinner: {best.config.describe()}")
    print("predicted phase breakdown (full scale):")
    for phase, seconds in best.breakdown.items():
        print(f"  {phase:>12}: {seconds:7.2f}s")

    # The same question under a 2 GB memory budget: the pre-sized hash
    # tables (the paper's 12.8 GB offender) are priced out.
    budget = 2e9
    constrained = planner.plan(
        storage, "input/", pilot_docs=64, max_iters=5, memory_budget_bytes=budget
    )
    print(f"\nwith a {budget / 1e9:.0f} GB memory budget the planner picks:")
    print(f"  {constrained.best.config.describe()}  "
          f"({constrained.best.predicted_peak_bytes / 1e9:.2f} GB predicted)")

    # And on a machine with few cores, fusing matters less and the
    # sequential-friendly dictionary mix can flip.
    small = WorkflowPlanner(
        paper_node(2),
        dict_kinds=("map", "unordered_map"),
        modes=("merged", "discrete"),
        worker_options=(1, 2),
        mixed_dicts=True,
    ).plan(storage, "input/", pilot_docs=64, max_iters=5)
    print(f"\non a 2-core node the winner becomes: {small.best.config.describe()}")


if __name__ == "__main__":
    main()
