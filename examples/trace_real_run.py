"""Trace a real multi-core run and draw its schedule as an ASCII Gantt.

Runs the fused TF/IDF → K-means pipeline on the process backend with span
tracing on, then shows what the simulator has always shown for virtual
runs — who ran what, when — but measured on the host's wall clock:

* one Gantt chart per phase (``render_phase_trace`` over the
  :class:`~repro.exec.spans.RunTrace` adapter), lanes = real workers;
* the per-phase utilization / queue-wait / straggler summary;
* the top-3 straggler tasks of the whole run.

Run with::

    PYTHONPATH=src python examples/trace_real_run.py
"""

from __future__ import annotations

from repro.core.pipeline import run_pipeline
from repro.exec.process import make_backend
from repro.exec.trace import render_phase_trace
from repro.ops.kmeans import KMeansOperator
from repro.ops.tfidf import TfIdfOperator
from repro.text.synth import MIX_PROFILE, generate_corpus


def main() -> None:
    corpus = generate_corpus(MIX_PROFILE, scale=0.01, seed=0)
    print(f"corpus: {len(corpus)} documents (Mix profile at 1% scale)\n")

    with make_backend("process", workers=2) as backend:
        result = run_pipeline(
            corpus,
            backend=backend,
            tfidf=TfIdfOperator(),
            kmeans=KMeansOperator(max_iters=5),
            trace=True,
        )

    trace = result.trace
    assert trace is not None

    print(f"backend {result.backend_name}: {len(trace.spans)} spans, "
          f"total {result.total_s:.3f}s\n")

    # The same ASCII Gantt the simulator draws, now over measured spans.
    for timing in trace.to_phase_timings():
        print(render_phase_trace(timing))
        print()

    print("per-phase accounting:")
    for phase, stats in trace.phase_summary().items():
        print(f"  {phase:>10}: {stats.n_tasks:3d} tasks on "
              f"{stats.n_workers} worker(s), "
              f"utilization {stats.utilization:.0%}, "
              f"queue wait {stats.queue_wait_s * 1e3:.1f}ms, "
              f"straggler x{stats.straggler_ratio:.1f}, "
              f"serial tail {stats.serial_tail_s * 1e3:.1f}ms")

    print("\ntop-3 stragglers (slowest tasks of the run):")
    for span in trace.top_stragglers(3):
        print(f"  {span.phase}#{span.task_id} on worker {span.worker}: "
              f"{span.duration_s * 1e3:.1f}ms "
              f"({span.n_items} item(s), {span.out_bytes} bytes out)")


if __name__ == "__main__":
    main()
