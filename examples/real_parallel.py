"""Real multi-core execution: the fused pipeline on actual processes.

The other examples run on the virtual-time simulator. This one runs the
same TF/IDF → K-means workflow *for real* — once inline (the sequential
reference) and once on a process pool with chunk-batched IPC — then
checks that both produced bit-identical output and reports the measured
wall-clock times per phase.

Run with::

    python examples/real_parallel.py [--workers N] [--scale S]
"""

import argparse
import os

from repro.core.pipeline import run_pipeline
from repro.exec import make_backend
from repro.ops.kmeans import KMeansOperator
from repro.ops.tfidf import TfIdfOperator
from repro.text.synth import MIX_PROFILE, generate_corpus


def _run(corpus, backend_name: str, workers: int):
    with make_backend(backend_name, workers) as backend:
        return run_pipeline(
            corpus,
            backend=backend,
            tfidf=TfIdfOperator(),
            kmeans=KMeansOperator(n_clusters=8, max_iters=10, seed=0),
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=os.cpu_count() or 1,
                        help="process-pool size (default: all cores)")
    parser.add_argument("--scale", type=float, default=0.01,
                        help="corpus scale relative to the paper's Mix")
    args = parser.parse_args()

    corpus = generate_corpus(MIX_PROFILE, scale=args.scale, seed=42)
    print(f"corpus: {len(corpus)} documents, "
          f"{corpus.total_bytes / 1e6:.1f} MB "
          f"(host has {os.cpu_count()} cores)")

    sequential = _run(corpus, "sequential", 1)
    parallel = _run(corpus, "processes", args.workers)

    # Backend choice must not change the answer — only the wall clock.
    seq_rows = [
        (tuple(r.indices), tuple(r.values))
        for r in sequential.tfidf.matrix.iter_rows()
    ]
    par_rows = [
        (tuple(r.indices), tuple(r.values))
        for r in parallel.tfidf.matrix.iter_rows()
    ]
    identical = (
        seq_rows == par_rows
        and sequential.kmeans.assignments == parallel.kmeans.assignments
    )
    print(f"output identical across backends: {identical}")
    assert identical

    print(f"\n{'phase':>12}  {'sequential':>10}  "
          f"{'processes x' + str(args.workers):>12}")
    for phase in sequential.phase_seconds:
        seq_s = sequential.phase_seconds[phase]
        par_s = parallel.phase_seconds[phase]
        print(f"{phase:>12}  {seq_s:9.3f}s  {par_s:11.3f}s")
    print(f"{'total':>12}  {sequential.total_s:9.3f}s  "
          f"{parallel.total_s:11.3f}s "
          f"(speedup {sequential.total_s / parallel.total_s:.2f}x)")

    sizes = parallel.kmeans.cluster_sizes()
    print(f"\nclusters ({parallel.kmeans.n_iters} iterations):")
    for cluster_id, size in enumerate(sizes):
        print(f"  cluster {cluster_id}: {size} documents")

    if (os.cpu_count() or 1) == 1:
        print("\n(single-core host: the process pool pays IPC overhead "
              "with no cores to spend it on — expect <1x here)")


if __name__ == "__main__":
    main()
