"""A richer analytics pipeline: dedup → TF/IDF → top terms + k-NN labels.

The paper argues analytics workflows chain many diverse operators (§1).
This example composes four from this library on one corpus:

1. **MinHash** near-duplicate detection removes boilerplate re-posts;
2. **TF/IDF** vectorises the surviving documents;
3. **top-k** reports the corpus's dominant vocabulary;
4. **k-NN** classifies unlabeled documents from a few labelled ones.

Run with::

    python examples/dedup_and_classify.py
"""

from repro import Corpus, KMeansOperator, TfIdfOperator
from repro.ops import KnnClassifier, MinHasher, top_k_terms
from repro.sparse import CsrMatrix
from repro.text import Tokenizer

LABELLED = [
    ("db", "The query optimizer rewrites the join order using table statistics"),
    ("db", "An index scan beats a table scan when the predicate is selective"),
    ("db", "The buffer pool caches pages so the executor avoids disk reads"),
    ("os", "The scheduler preempts the running thread when its quantum expires"),
    ("os", "A page fault traps to the kernel which loads the page from swap"),
    ("os", "The file system journals metadata so crashes do not corrupt inodes"),
]

UNLABELLED = [
    "The planner chooses a hash join because the statistics show a large table",
    "The kernel scheduler migrates threads between cores to balance load",
    "Buffer pool pages are evicted with a clock algorithm to make room",
    "On a fault the kernel loads the missing frame from swap and resumes the thread",
]

# Two near-identical boilerplate documents that should be deduplicated.
BOILERPLATE = [
    "Subscribe to our weekly newsletter for the latest updates news and "
    "announcements about modern database systems and operating systems research",
    "Subscribe to our weekly newsletter for the latest updates news and "
    "announcements about modern database systems and operating system research",
]


def main() -> None:
    tokenizer = Tokenizer(drop_stopwords=True, min_length=2)
    texts = [text for _, text in LABELLED] + UNLABELLED + BOILERPLATE
    labels = [label for label, _ in LABELLED]

    # 1. Deduplicate.
    streams = [tokenizer.tokens(text) for text in texts]
    hasher = MinHasher(num_hashes=64, bands=32, shingle_width=2, seed=7)
    duplicates = hasher.find_duplicates(streams, threshold=0.5)
    drop = {pair.right for pair in duplicates}
    kept = [text for i, text in enumerate(texts) if i not in drop]
    print(f"deduplicated: dropped {len(drop)} of {len(texts)} documents "
          f"({', '.join(f'{p.left}~{p.right}@{p.similarity:.2f}' for p in duplicates)})")

    # 2. Vectorise the survivors.
    corpus = Corpus.from_texts("systems", kept)
    scores = TfIdfOperator(tokenizer=tokenizer).fit_transform(corpus)

    # 3. Dominant vocabulary.
    ranked = top_k_terms(scores.wordcount.df, k=8)
    print("top document-frequency terms:",
          ", ".join(f"{t.term}({t.count})" for t in ranked))

    # 4. Classify the unlabeled documents from the labelled ones.
    n_train = len(LABELLED)
    train = CsrMatrix.from_rows(
        [scores.matrix.row(i) for i in range(n_train)],
        n_cols=scores.matrix.n_cols,
    )
    classifier = KnnClassifier(k=3).fit(train, labels)
    print("\npredictions:")
    for offset, text in enumerate(UNLABELLED):
        row = scores.matrix.row(n_train + offset)
        prediction = classifier.predict(row)
        print(f"  [{prediction}] {text}")

    # Bonus: unsupervised view of the same documents.
    clustering = KMeansOperator(n_clusters=2, max_iters=20, init="kmeans++").fit(
        scores.matrix
    )
    print(f"\nk-means (k=2) split sizes: {clustering.cluster_sizes()}")


if __name__ == "__main__":
    main()
