"""Execution substrate: simulated multicore node + real backends.

The paper's experiments sweep thread counts on a Cilkplus node; this
package reproduces that environment as a deterministic virtual-time model
(machine spec, task costs, greedy chunk scheduler, device rooflines) plus
plain real executors for functional runs.
"""

from repro.exec.faultinject import FAULT_KINDS, FaultInjected, FaultPlan, FaultSpec
from repro.exec.inline import ExecutionBackend, SequentialBackend, ThreadBackend
from repro.exec.machine import MachineSpec, fast_ssd_node, paper_node
from repro.exec.process import BACKEND_CHOICES, ProcessBackend, make_backend
from repro.exec.resilience import (
    DowngradeEvent,
    QuarantinedItem,
    QuarantineReport,
    ResilienceConfig,
    RetryPolicy,
)
from repro.exec.shm import IpcStats, shm_available
from repro.exec.spans import RunTrace, SpanRecorder, TaskSpan
from repro.exec.metrics import (
    Timeline,
    WorkSpan,
    self_relative_speedups,
    work_span,
)
from repro.exec.parallel import ParallelResult, auto_grain, parallel_map
from repro.exec.scheduler import PhaseTiming, SimScheduler
from repro.exec.trace import render_phase_trace, render_timeline_trace
from repro.exec.task import TaskCost

__all__ = [
    "MachineSpec",
    "paper_node",
    "fast_ssd_node",
    "TaskCost",
    "SimScheduler",
    "PhaseTiming",
    "parallel_map",
    "ParallelResult",
    "auto_grain",
    "Timeline",
    "WorkSpan",
    "work_span",
    "self_relative_speedups",
    "render_phase_trace",
    "render_timeline_trace",
    "ExecutionBackend",
    "SequentialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
    "BACKEND_CHOICES",
    "IpcStats",
    "shm_available",
    "RunTrace",
    "SpanRecorder",
    "TaskSpan",
    "RetryPolicy",
    "ResilienceConfig",
    "QuarantinedItem",
    "QuarantineReport",
    "DowngradeEvent",
    "FaultPlan",
    "FaultSpec",
    "FaultInjected",
    "FAULT_KINDS",
]
