"""Process-pool execution backend: real multi-core parallelism.

CPython's GIL caps :class:`~repro.exec.inline.ThreadBackend` at one core
for pure-Python operator loops; this module runs them on a pool of worker
*processes* instead — the reproduction's answer to the paper's Cilkplus
node for hosts where the simulation is not enough and the wall clock is
what counts.

Design points (see ``docs/backends.md`` for the cost model):

* **Chunk-batched IPC.** ``map`` pickles one task per *chunk* of items
  (Cilk-style grain via :func:`~repro.exec.parallel.auto_grain`), so the
  per-task pickle/unpickle round trip is amortized over the whole chunk
  instead of being paid per document. ``map_stream`` micro-batches the
  producer's items the same way while still submitting each batch the
  moment it fills.
* **Per-worker initializer.** Phase-constant state (tokenizer, stopword
  table, vocabulary, prepared matrix) is shipped once per worker through
  :meth:`ProcessBackend.configure`, not serialized into every task.
  Reconfiguring with different state recycles the pool — one cheap pool
  generation per phase, not per task.
* **Shared-memory data plane.** With ``shm`` enabled (the default where
  POSIX shared memory works), :meth:`share_arrays` places large arrays
  into named segments that workers attach zero-copy, and
  :meth:`open_broadcast`/:meth:`broadcast` publish per-iteration arrays
  into a double-buffered segment so tasks shrink to integer tokens. The
  backend owns every segment's lifecycle: ``close()`` unlinks them all,
  including after a worker crash.
* **IPC accounting.** Tasks round-trip through an explicit
  pickle-the-payload trampoline, so ``backend.ipc`` counts the *exact*
  bytes serialized each way, per pipeline phase — on a 1-CPU host the
  wall clock cannot show the shm win, the byte counters can.
* **Order preservation.** Results are collected in submission order, so
  ``map`` output is aligned with its input no matter which worker
  finished first.
* **Exception transparency.** An exception raised by the mapped function
  propagates to the caller (pickled across the process boundary) and all
  not-yet-started chunks are cancelled — a poisoned chunk does not leave
  its successors running behind the caller's back. The pool stays usable
  for subsequent ``map`` calls. A crashed worker (``BrokenProcessPool``)
  resets the pool — and unlinks the shared plane — so nothing leaks.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Callable

from repro.errors import ConfigurationError, PhaseTimeoutError, TaskTimeoutError
from repro.exec.faultinject import fire_spec
from repro.exec.inline import (
    ExecutionBackend,
    SequentialBackend,
    ThreadBackend,
    _as_list,
    apply_chunk,
)
from repro.exec.parallel import auto_grain
from repro.exec.resilience import ResilienceConfig, bisect_chunk, run_attempts
from repro.exec.shm import ShmArrays, ShmBroadcast, ShmPlane, shm_available
from repro.exec.spans import install_worker_epoch, worker_now

__all__ = ["ProcessBackend", "make_backend", "BACKEND_CHOICES", "default_start_method"]

#: Names accepted by :func:`make_backend` (and the CLI ``--backend`` flag).
BACKEND_CHOICES = ("sequential", "threads", "processes")

#: Singular spellings normalize to the canonical names, so
#: ``--backend process`` does what it obviously means.
_BACKEND_ALIASES = {"process": "processes", "thread": "threads", "inline": "sequential"}

#: ``map_stream`` cannot see the producer's length up front; its default
#: micro-batch grain assumes a window of this many items.
_STREAM_WINDOW = 256


def default_start_method() -> str:
    """Pick the cheapest available start method.

    ``fork`` makes worker start-up and initializer shipping nearly free on
    Linux (pages are shared copy-on-write); elsewhere we fall back to the
    platform default (``spawn`` on macOS/Windows), which requires the
    initializer and kernels to be importable module-level functions —
    which all of :mod:`repro.ops.kernels` are.
    """
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else multiprocessing.get_start_method()


def run_pickled_chunk(payload: bytes) -> bytes:
    """Worker-side trampoline for exact IPC accounting.

    The parent pickles ``(fn, chunk)`` itself — measuring the payload —
    and the worker pickles the results back, so both directions are
    counted without serializing anything twice. Hardened submissions
    append ``(fault, attempt)``: a planned-fault directive fired before
    the chunk runs (see :mod:`repro.exec.faultinject`) and the 1-based
    execution attempt.
    """
    loaded = pickle.loads(payload)
    fn, chunk = loaded[0], loaded[1]
    if len(loaded) > 2 and loaded[2] is not None:
        spec, state_dir = loaded[2]
        fire_spec(spec, state_dir)
    return pickle.dumps(apply_chunk(fn, chunk))


def traced_worker_init(epoch: float, initializer, initargs: tuple) -> None:
    """Pool initializer when tracing: install the epoch, then run the real one.

    The parent's monotonic-clock epoch rides along with the per-phase
    state shipment, so every worker re-bases its local clock onto the
    parent's timeline before the first task arrives — no extra IPC.
    """
    install_worker_epoch(epoch)
    if initializer is not None:
        initializer(*initargs)


def run_pickled_chunk_traced(payload: bytes) -> tuple[bytes, bytes]:
    """Traced twin of :func:`run_pickled_chunk`: same single round trip.

    The span — phase, task id, pid, re-based start/end, item count and
    exact payload bytes each way — is pickled *separately* from the
    results and piggy-backed on the same return value, so the parent can
    bill result bytes and span bytes to different counters. The results
    pickle is byte-for-byte the one the untraced trampoline produces.
    """
    t_start = worker_now()
    loaded = pickle.loads(payload)
    fn, chunk, task_id, phase, t_submit = loaded[:5]
    fault = loaded[5] if len(loaded) > 5 else None
    attempt = loaded[6] if len(loaded) > 6 else 1
    if fault is not None:
        spec, state_dir = fault
        fire_spec(spec, state_dir)
    results_blob = pickle.dumps(apply_chunk(fn, chunk))
    span = (
        phase,
        task_id,
        os.getpid(),
        t_start,
        worker_now(),
        len(chunk),
        len(payload),
        len(results_blob),
        max(0.0, t_start - t_submit),
        attempt,
    )
    return results_blob, pickle.dumps(span)


class _ChunkTask:
    """Parent-side record of one submitted chunk, across retries/replays.

    ``item_index`` is the chunk's first item's position in the original
    map input (quarantine coordinates); ``results`` flips from ``None``
    to the chunk's result list exactly once, which is also the "done"
    flag replay logic keys on.
    """

    __slots__ = (
        "fn", "chunk", "item_index", "task_id", "phase",
        "attempt", "future", "results",
    )

    def __init__(self, fn, chunk, item_index: int, task_id: int, phase: str) -> None:
        self.fn = fn
        self.chunk = chunk
        self.item_index = item_index
        self.task_id = task_id
        self.phase = phase
        self.attempt = 1
        self.future = None
        self.results = None

    @property
    def key(self) -> str:
        return f"{self.phase}#{self.task_id}"


class ProcessBackend(ExecutionBackend):
    """Runs operator loops on a pool of worker processes."""

    #: ``configure`` with new state replaces the pool, destroying any
    #: worker-resident kernel state (see the fused wc→transform path).
    configure_recycles_workers = True

    def __init__(
        self,
        workers: int,
        start_method: str | None = None,
        shm: bool | None = None,
        resilience: ResilienceConfig | None = None,
    ) -> None:
        super().__init__(resilience)
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.name = f"processes-{workers}"
        self._start_method = start_method or default_start_method()
        if shm is None:
            shm = shm_available()  # auto-fallback on platforms without it
        elif shm and not shm_available():
            raise ConfigurationError(
                "shared memory requested but unavailable on this platform"
            )
        self._shm_enabled = bool(shm)
        self._plane = ShmPlane(stats=self.ipc) if self._shm_enabled else None
        self._pool: ProcessPoolExecutor | None = None
        #: (initializer, initargs) the *current* pool generation was built
        #: with; ``configure`` compares against it to avoid restarts when
        #: the same phase maps repeatedly.
        self._init: tuple[Callable[..., None], tuple] | None = None
        #: Trace state (enabled, epoch) the current pool was built with;
        #: arming/re-arming the recorder forces a recycle so every worker
        #: receives the new epoch.
        self._pool_trace: tuple[bool, float] = (False, 0.0)
        #: ``"phase#task_id"`` of the most recently submitted task — the
        #: context a :class:`BrokenProcessPool` error names.
        self._last_task: str | None = None
        #: Worker-pool deaths absorbed in the current phase; bounded by
        #: the circuit breaker (``resilience.max_pool_restarts``).
        self._pool_restarts_phase = 0

    def begin_phase(self, name: str) -> None:
        super().begin_phase(name)
        self._pool_restarts_phase = 0

    # -- shared-array plane -------------------------------------------------------

    @property
    def uses_shm(self) -> bool:  # type: ignore[override]
        return self._shm_enabled

    def share_arrays(self, tag: str, arrays) -> ShmArrays:
        if self._plane is None:
            raise ConfigurationError(
                "share_arrays on a ProcessBackend with shm disabled: workers "
                "cannot see parent memory — ship state via configure() instead"
            )
        return self._plane.place(tag, dict(arrays))

    def open_broadcast(self, tag: str, template) -> ShmBroadcast:
        if self._plane is None:
            raise ConfigurationError(
                "open_broadcast on a ProcessBackend with shm disabled"
            )
        return self._plane.open_broadcast(tag, template)

    # -- pool lifecycle ----------------------------------------------------------

    def configure(self, initializer, initargs=()) -> None:
        """Ship per-worker state; recycles the pool only when it changed.

        Sameness is judged by identity (the initializer function and each
        initarg), not equality — initargs may hold numpy arrays, and
        callers that did not change the state pass the same objects.
        """
        if self._pool is not None and self._init is not None:
            prev_fn, prev_args = self._init
            if (
                prev_fn is initializer
                and len(prev_args) == len(initargs)
                and all(a is b for a, b in zip(prev_args, initargs))
            ):
                return
        self._close_pool()
        self._init = (initializer, initargs)
        # Under fork the pool inherits initargs copy-on-write — nothing is
        # pickled; spawn/forkserver serialize them into every worker.
        if self._start_method == "fork":
            shipped = 0
        else:
            shipped = len(pickle.dumps(initargs)) * self.workers
        self.ipc.record_configure(shipped)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        trace_state = (
            (True, self.spans.epoch) if self.spans.enabled else (False, 0.0)
        )
        if self._pool is not None and self._pool_trace != trace_state:
            # Arming (or re-arming) the recorder changes the epoch every
            # worker must re-base against: recycle the pool generation.
            self._close_pool()
        if self._pool is None:
            initializer, initargs = self._init or (None, ())
            if trace_state[0]:
                initializer, initargs = (
                    traced_worker_init,
                    (self.spans.epoch, initializer, initargs),
                )
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context(self._start_method),
                initializer=initializer,
                initargs=initargs,
            )
            self._pool_trace = trace_state
        return self._pool

    def _close_pool(self) -> None:
        """Shut the pool down but keep shared segments alive.

        ``configure`` recycles pools between phases; arrays an operator
        has just placed for the *next* phase must survive the recycle.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _kill_pool(self) -> None:
        """Hard-kill every pool worker (hung-task reclamation).

        Unlike threads, processes *can* be reclaimed: SIGKILL the
        workers, abandon the executor without waiting, and let the next
        ``_ensure_pool`` start a fresh generation. Shared segments stay
        alive — the parent owns them.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for proc in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                proc.kill()
            except Exception:
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        self._close_pool()
        if self._plane is not None:
            self._plane.close()

    def _broken(self, cause: BaseException | None = None) -> BrokenProcessPool:
        # A worker died (segfault, OOM kill): the pool is unusable and its
        # workers may never have detached. Full close — pool reset *and*
        # segment unlink — so a crash cannot leak /dev/shm entries; the
        # next map starts a fresh generation. The returned error names the
        # phase and the last task handed to the pool, so a crash report
        # says *where* in the pipeline the worker died.
        self.close()
        context = f"worker pool crashed during phase {self.ipc.phase!r}"
        if self._last_task is not None:
            context += f" (last submitted task {self._last_task})"
        detail = str(cause).strip() if cause is not None else ""
        if detail:
            context += f": {detail}"
        error = BrokenProcessPool(context)
        # Marks the error as already carrying the diagnostic context, so
        # outer handlers do not wrap it a second time.
        error._repro_diagnosed = True  # type: ignore[attr-defined]
        return error

    # -- execution ---------------------------------------------------------------

    def _submit_chunk(self, pool, fn, chunk):
        phase = self.ipc.phase
        task_id = self.ipc.phase_stats(phase).tasks
        self._last_task = f"{phase}#{task_id}"
        if self.spans.enabled:
            payload = pickle.dumps(
                (fn, chunk, task_id, phase, self.spans.now())
            )
            self.ipc.record_task(len(payload))
            return pool.submit(run_pickled_chunk_traced, payload)
        payload = pickle.dumps((fn, chunk))
        self.ipc.record_task(len(payload))
        return pool.submit(run_pickled_chunk, payload)

    def _absorb_blob(self, blob) -> list:
        """Account one trampoline return value; unpickle its results.

        Traced futures return ``(results_blob, span_blob)``; the span is
        handed to the recorder and its bytes billed to the separate span
        counter, so result-byte accounting is identical traced or not.
        """
        if isinstance(blob, tuple):
            blob, span_blob = blob
            self.ipc.record_span_payload(len(span_blob))
            self.spans.record_worker_span(pickle.loads(span_blob))
        self.ipc.record_result(len(blob))
        return pickle.loads(blob)

    def _gather_pickled(self, futures) -> list:
        """Collect trampoline futures in order, accounting result bytes.

        If any chunk raises, every future that has not started yet is
        cancelled before the exception propagates — a poisoned chunk must
        not leave the chunks submitted after it running.
        """
        results: list = []
        try:
            for future in futures:
                results.extend(self._absorb_blob(future.result()))
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        return results

    # -- hardened execution -------------------------------------------------------

    def _task_payload(self, fn, chunk, task_id: int, phase: str, attempt: int):
        """Pickle one task; returns ``(payload, trampoline)``.

        First-attempt tasks with no planned fault keep the legacy payload
        shapes byte-for-byte; the optional ``(fault, attempt)`` tail is
        appended only when it carries information.
        """
        fault = None
        if self.fault_plan is not None:
            spec = self.fault_plan.spec_for(phase, task_id)
            if spec is not None:
                fault = (spec, self.fault_plan.state_dir)
        extra = (fault, attempt) if (fault is not None or attempt > 1) else ()
        if self.spans.enabled:
            base = (fn, chunk, task_id, phase, self.spans.now())
            return pickle.dumps(base + extra), run_pickled_chunk_traced
        return pickle.dumps((fn, chunk) + extra), run_pickled_chunk

    def _submit_task(self, pool, task: _ChunkTask, *, resubmit: bool = False) -> None:
        payload, target = self._task_payload(
            task.fn, task.chunk, task.task_id, task.phase, task.attempt
        )
        self._last_task = task.key
        if resubmit:
            # Re-executions of any cause — retry, crash replay, bisection
            # probe — bill their pickle bytes to the recovery counters.
            self.ipc.record_retry(len(payload))
        else:
            self.ipc.record_task(len(payload))
        task.future = pool.submit(target, payload)

    @staticmethod
    def _cancel_unfinished(tasks) -> None:
        for task in tasks:
            if task.results is None and task.future is not None:
                task.future.cancel()

    def _recover_pool(self, tasks, cause: BaseException) -> None:
        """Respawn after a pool death (or hung-worker kill); replay what
        did not finish.

        Completed chunks keep their results (harvested from done futures
        before the executor is dropped); only in-flight chunks are
        resubmitted, at their current attempt — a pool death is the
        pool's fault, not the task's. Shared segments were never
        unlinked, so respawned workers re-attach through the same
        descriptors in the unchanged initargs. Bounded per phase by the
        ``max_pool_restarts`` circuit breaker.
        """
        self._pool_restarts_phase += 1
        if self._pool_restarts_phase > self.resilience.max_pool_restarts:
            raise self._broken(cause) from cause
        self.ipc.record_pool_restart()
        for task in tasks:
            if task.results is None and task.future is not None and task.future.done():
                try:
                    blob = task.future.result(timeout=0)
                except Exception:
                    continue
                task.results = self._absorb_blob(blob)
        self._close_pool()
        pool = self._ensure_pool()
        for task in tasks:
            if task.results is None:
                self._submit_task(pool, task, resubmit=True)

    def _run_chunk_sync(self, task: _ChunkTask, sub: list) -> list:
        """One bisection probe through the pool, synchronously.

        Probes must run on *workers* — kernels depend on per-worker state
        installed by ``configure`` that the parent never runs — and their
        pickle bytes are recovery overhead, billed like retries.
        """
        cfg = self.resilience

        def thunk(attempt: int) -> list:
            pool = self._ensure_pool()
            payload, target = self._task_payload(
                task.fn, sub, task.task_id, task.phase, attempt
            )
            self.ipc.record_retry(len(payload))
            future = pool.submit(target, payload)
            try:
                return self._absorb_blob(future.result(timeout=self._wait_timeout()))
            except FutureTimeoutError:
                self.ipc.record_timeout()
                self._kill_pool()
                raise TaskTimeoutError(
                    f"bisection probe for task {task.key} exceeded its "
                    "deadline; worker killed"
                ) from None
            except BrokenProcessPool as exc:
                self._pool_restarts_phase += 1
                if self._pool_restarts_phase > cfg.max_pool_restarts:
                    raise self._broken(exc) from exc
                self.ipc.record_pool_restart()
                self._close_pool()
                raise

        return run_attempts(cfg.retry, task.key, thunk)

    def _bisect_poisoned(self, task: _ChunkTask, exc: Exception, bisect_items: bool):
        def on_poisoned(index, sub_start, n_units, leaf_exc):
            self._note_quarantined(
                task.phase, task.key, index, sub_start, n_units, leaf_exc
            )

        return bisect_chunk(
            task.chunk,
            lambda sub: self._run_chunk_sync(task, sub),
            on_poisoned,
            item_index=task.item_index,
            bisect_items=bisect_items,
            failed_exc=exc,
        )

    def _collect(self, tasks, bisect_items: bool) -> list:
        """Hardened ordered gather: retry, replay, reclaim, quarantine.

        Worker-raised exceptions consume the task's retry budget; pool
        deaths and hung-worker kills do not (they are bounded by the
        restart breaker instead). A task that exhausts its budget either
        raises (default) or is bisected into quarantined leaves.
        """
        cfg = self.resilience
        position = 0
        while position < len(tasks):
            task = tasks[position]
            if task.results is not None:
                position += 1
                continue
            try:
                self._check_phase_deadline(task.phase)
                blob = task.future.result(timeout=self._wait_timeout())
            except FutureTimeoutError:
                try:
                    self._check_phase_deadline(task.phase)
                except PhaseTimeoutError:
                    self._kill_pool()
                    raise
                self.ipc.record_timeout()
                self._kill_pool()
                if cfg.retry.gives_up_after(task.attempt):
                    raise TaskTimeoutError(
                        f"task {task.key} exceeded its "
                        f"{cfg.task_timeout_s:.3f}s deadline on backend "
                        f"{self.name!r} (attempt {task.attempt}); worker killed"
                    ) from None
                task.attempt += 1
                self._recover_pool(
                    tasks, TaskTimeoutError(f"hung task {task.key}; worker killed")
                )
                continue
            except PhaseTimeoutError:
                self._cancel_unfinished(tasks)
                raise
            except BrokenProcessPool as exc:
                self._recover_pool(tasks, exc)
                continue
            except Exception as exc:
                if cfg.retry.is_retryable(exc) and not cfg.retry.gives_up_after(
                    task.attempt
                ):
                    delay = cfg.retry.backoff_s(task.key, task.attempt)
                    if delay > 0:
                        time.sleep(delay)
                    task.attempt += 1
                    self._submit_task(self._ensure_pool(), task, resubmit=True)
                    continue
                exc.attempts = task.attempt  # type: ignore[attr-defined]
                if not cfg.quarantining:
                    self._cancel_unfinished(tasks)
                    raise
                task.results = self._bisect_poisoned(task, exc, bisect_items)
                position += 1
                continue
            task.results = self._absorb_blob(blob)
            position += 1
        return [result for task in tasks for result in task.results]

    def _run_resilient(self, fn, chunks, bisect_items: bool) -> list:
        """Submit ``(item_index, chunk)`` tasks; gather with the policy."""
        phase = self.ipc.phase
        tasks: list[_ChunkTask] = []
        try:
            pool = None  # created on the first chunk: empty input, no pool
            for item_index, chunk in chunks:
                if pool is None:
                    pool = self._ensure_pool()
                task = _ChunkTask(
                    fn, chunk, item_index, self._next_task_id(phase), phase
                )
                self._submit_task(pool, task)
                tasks.append(task)
            return self._collect(tasks, bisect_items)
        except BrokenProcessPool as exc:
            if getattr(exc, "_repro_diagnosed", False):
                raise
            raise self._broken(exc) from exc

    def map(self, fn, items, *, grain=None, bisect_items=False):
        items = _as_list(items)
        if not items:
            return []
        if grain is None:
            grain = auto_grain(len(items), self.workers)
        if grain < 1:
            raise ConfigurationError(f"grain must be >= 1, got {grain}")
        if self._resilient:
            chunks = (
                (start, items[start : start + grain])
                for start in range(0, len(items), grain)
            )
            return self._run_resilient(fn, chunks, bisect_items)
        pool = self._ensure_pool()
        futures = [
            self._submit_chunk(pool, fn, items[start : start + grain])
            for start in range(0, len(items), grain)
        ]
        try:
            return self._gather_pickled(futures)
        except BrokenProcessPool as exc:
            raise self._broken(exc) from exc

    def map_stream(self, fn, items, *, grain=None, bisect_items=False):
        """Micro-batched streaming map: one pickled task per *batch*.

        Items are grouped into batches of ``grain`` as the producer
        yields them, and each batch is submitted the moment it fills —
        delivery stays ordered and submit-as-produced, but a slow
        producer of many small items no longer pays one pickle round
        trip per item.
        """
        if grain is None:
            grain = auto_grain(_STREAM_WINDOW, self.workers)
        if grain < 1:
            raise ConfigurationError(f"grain must be >= 1, got {grain}")
        if self._resilient:
            def batches():
                offset = 0
                batch: list = []
                for item in items:
                    batch.append(item)
                    if len(batch) >= grain:
                        yield offset, batch
                        offset += len(batch)
                        batch = []
                if batch:
                    yield offset, batch

            return self._run_resilient(fn, batches(), bisect_items)
        pool = None  # created on the first batch: empty input, no pool
        futures: list = []
        try:
            batch: list = []
            for item in items:
                batch.append(item)
                if len(batch) >= grain:
                    if pool is None:
                        pool = self._ensure_pool()
                    futures.append(self._submit_chunk(pool, fn, batch))
                    batch = []
            if batch:
                if pool is None:
                    pool = self._ensure_pool()
                futures.append(self._submit_chunk(pool, fn, batch))
            return self._gather_pickled(futures)
        except BrokenProcessPool as exc:
            raise self._broken(exc) from exc
        except BaseException:
            for future in futures:
                future.cancel()
            raise


def make_backend(
    name: str,
    workers: int = 1,
    shm: bool | None = None,
    resilience: ResilienceConfig | None = None,
) -> ExecutionBackend:
    """Build a backend from its CLI name (one of :data:`BACKEND_CHOICES`).

    ``shm`` applies to the process backend (``None`` = use it where
    available); the in-process backends share an address space, so for
    them the flag is a no-op by construction. ``resilience`` installs a
    fault-tolerance policy (default: fail fast, the seed behavior).
    Singular spellings (``process``, ``thread``) are accepted as aliases.
    """
    name = _BACKEND_ALIASES.get(name, name)
    if name == "sequential":
        return SequentialBackend(resilience)
    if name == "threads":
        return ThreadBackend(workers, resilience)
    if name == "processes":
        return ProcessBackend(workers, shm=shm, resilience=resilience)
    raise ConfigurationError(
        f"unknown backend {name!r}; expected one of {', '.join(BACKEND_CHOICES)}"
    )
