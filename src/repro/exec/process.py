"""Process-pool execution backend: real multi-core parallelism.

CPython's GIL caps :class:`~repro.exec.inline.ThreadBackend` at one core
for pure-Python operator loops; this module runs them on a pool of worker
*processes* instead — the reproduction's answer to the paper's Cilkplus
node for hosts where the simulation is not enough and the wall clock is
what counts.

Design points (see ``docs/backends.md`` for the cost model):

* **Chunk-batched IPC.** ``map`` pickles one task per *chunk* of items
  (Cilk-style grain via :func:`~repro.exec.parallel.auto_grain`), so the
  per-task pickle/unpickle round trip is amortized over the whole chunk
  instead of being paid per document. ``map_stream`` micro-batches the
  producer's items the same way while still submitting each batch the
  moment it fills.
* **Per-worker initializer.** Phase-constant state (tokenizer, stopword
  table, vocabulary, prepared matrix) is shipped once per worker through
  :meth:`ProcessBackend.configure`, not serialized into every task.
  Reconfiguring with different state recycles the pool — one cheap pool
  generation per phase, not per task.
* **Shared-memory data plane.** With ``shm`` enabled (the default where
  POSIX shared memory works), :meth:`share_arrays` places large arrays
  into named segments that workers attach zero-copy, and
  :meth:`open_broadcast`/:meth:`broadcast` publish per-iteration arrays
  into a double-buffered segment so tasks shrink to integer tokens. The
  backend owns every segment's lifecycle: ``close()`` unlinks them all,
  including after a worker crash.
* **IPC accounting.** Tasks round-trip through an explicit
  pickle-the-payload trampoline, so ``backend.ipc`` counts the *exact*
  bytes serialized each way, per pipeline phase — on a 1-CPU host the
  wall clock cannot show the shm win, the byte counters can.
* **Order preservation.** Results are collected in submission order, so
  ``map`` output is aligned with its input no matter which worker
  finished first.
* **Exception transparency.** An exception raised by the mapped function
  propagates to the caller (pickled across the process boundary) and all
  not-yet-started chunks are cancelled — a poisoned chunk does not leave
  its successors running behind the caller's back. The pool stays usable
  for subsequent ``map`` calls. A crashed worker (``BrokenProcessPool``)
  resets the pool — and unlinks the shared plane — so nothing leaks.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable

from repro.errors import ConfigurationError
from repro.exec.inline import (
    ExecutionBackend,
    SequentialBackend,
    ThreadBackend,
    _as_list,
    apply_chunk,
)
from repro.exec.parallel import auto_grain
from repro.exec.shm import ShmArrays, ShmBroadcast, ShmPlane, shm_available
from repro.exec.spans import install_worker_epoch, worker_now

__all__ = ["ProcessBackend", "make_backend", "BACKEND_CHOICES", "default_start_method"]

#: Names accepted by :func:`make_backend` (and the CLI ``--backend`` flag).
BACKEND_CHOICES = ("sequential", "threads", "processes")

#: Singular spellings normalize to the canonical names, so
#: ``--backend process`` does what it obviously means.
_BACKEND_ALIASES = {"process": "processes", "thread": "threads", "inline": "sequential"}

#: ``map_stream`` cannot see the producer's length up front; its default
#: micro-batch grain assumes a window of this many items.
_STREAM_WINDOW = 256


def default_start_method() -> str:
    """Pick the cheapest available start method.

    ``fork`` makes worker start-up and initializer shipping nearly free on
    Linux (pages are shared copy-on-write); elsewhere we fall back to the
    platform default (``spawn`` on macOS/Windows), which requires the
    initializer and kernels to be importable module-level functions —
    which all of :mod:`repro.ops.kernels` are.
    """
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else multiprocessing.get_start_method()


def run_pickled_chunk(payload: bytes) -> bytes:
    """Worker-side trampoline for exact IPC accounting.

    The parent pickles ``(fn, chunk)`` itself — measuring the payload —
    and the worker pickles the results back, so both directions are
    counted without serializing anything twice.
    """
    fn, chunk = pickle.loads(payload)
    return pickle.dumps(apply_chunk(fn, chunk))


def traced_worker_init(epoch: float, initializer, initargs: tuple) -> None:
    """Pool initializer when tracing: install the epoch, then run the real one.

    The parent's monotonic-clock epoch rides along with the per-phase
    state shipment, so every worker re-bases its local clock onto the
    parent's timeline before the first task arrives — no extra IPC.
    """
    install_worker_epoch(epoch)
    if initializer is not None:
        initializer(*initargs)


def run_pickled_chunk_traced(payload: bytes) -> tuple[bytes, bytes]:
    """Traced twin of :func:`run_pickled_chunk`: same single round trip.

    The span — phase, task id, pid, re-based start/end, item count and
    exact payload bytes each way — is pickled *separately* from the
    results and piggy-backed on the same return value, so the parent can
    bill result bytes and span bytes to different counters. The results
    pickle is byte-for-byte the one the untraced trampoline produces.
    """
    t_start = worker_now()
    fn, chunk, task_id, phase, t_submit = pickle.loads(payload)
    results_blob = pickle.dumps(apply_chunk(fn, chunk))
    span = (
        phase,
        task_id,
        os.getpid(),
        t_start,
        worker_now(),
        len(chunk),
        len(payload),
        len(results_blob),
        max(0.0, t_start - t_submit),
    )
    return results_blob, pickle.dumps(span)


class ProcessBackend(ExecutionBackend):
    """Runs operator loops on a pool of worker processes."""

    def __init__(
        self,
        workers: int,
        start_method: str | None = None,
        shm: bool | None = None,
    ) -> None:
        super().__init__()
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.name = f"processes-{workers}"
        self._start_method = start_method or default_start_method()
        if shm is None:
            shm = shm_available()  # auto-fallback on platforms without it
        elif shm and not shm_available():
            raise ConfigurationError(
                "shared memory requested but unavailable on this platform"
            )
        self._shm_enabled = bool(shm)
        self._plane = ShmPlane(stats=self.ipc) if self._shm_enabled else None
        self._pool: ProcessPoolExecutor | None = None
        #: (initializer, initargs) the *current* pool generation was built
        #: with; ``configure`` compares against it to avoid restarts when
        #: the same phase maps repeatedly.
        self._init: tuple[Callable[..., None], tuple] | None = None
        #: Trace state (enabled, epoch) the current pool was built with;
        #: arming/re-arming the recorder forces a recycle so every worker
        #: receives the new epoch.
        self._pool_trace: tuple[bool, float] = (False, 0.0)
        #: ``"phase#task_id"`` of the most recently submitted task — the
        #: context a :class:`BrokenProcessPool` error names.
        self._last_task: str | None = None

    # -- shared-array plane -------------------------------------------------------

    @property
    def uses_shm(self) -> bool:  # type: ignore[override]
        return self._shm_enabled

    def share_arrays(self, tag: str, arrays) -> ShmArrays:
        if self._plane is None:
            raise ConfigurationError(
                "share_arrays on a ProcessBackend with shm disabled: workers "
                "cannot see parent memory — ship state via configure() instead"
            )
        return self._plane.place(tag, dict(arrays))

    def open_broadcast(self, tag: str, template) -> ShmBroadcast:
        if self._plane is None:
            raise ConfigurationError(
                "open_broadcast on a ProcessBackend with shm disabled"
            )
        return self._plane.open_broadcast(tag, template)

    # -- pool lifecycle ----------------------------------------------------------

    def configure(self, initializer, initargs=()) -> None:
        """Ship per-worker state; recycles the pool only when it changed.

        Sameness is judged by identity (the initializer function and each
        initarg), not equality — initargs may hold numpy arrays, and
        callers that did not change the state pass the same objects.
        """
        if self._pool is not None and self._init is not None:
            prev_fn, prev_args = self._init
            if (
                prev_fn is initializer
                and len(prev_args) == len(initargs)
                and all(a is b for a, b in zip(prev_args, initargs))
            ):
                return
        self._close_pool()
        self._init = (initializer, initargs)
        # Under fork the pool inherits initargs copy-on-write — nothing is
        # pickled; spawn/forkserver serialize them into every worker.
        if self._start_method == "fork":
            shipped = 0
        else:
            shipped = len(pickle.dumps(initargs)) * self.workers
        self.ipc.record_configure(shipped)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        trace_state = (
            (True, self.spans.epoch) if self.spans.enabled else (False, 0.0)
        )
        if self._pool is not None and self._pool_trace != trace_state:
            # Arming (or re-arming) the recorder changes the epoch every
            # worker must re-base against: recycle the pool generation.
            self._close_pool()
        if self._pool is None:
            initializer, initargs = self._init or (None, ())
            if trace_state[0]:
                initializer, initargs = (
                    traced_worker_init,
                    (self.spans.epoch, initializer, initargs),
                )
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context(self._start_method),
                initializer=initializer,
                initargs=initargs,
            )
            self._pool_trace = trace_state
        return self._pool

    def _close_pool(self) -> None:
        """Shut the pool down but keep shared segments alive.

        ``configure`` recycles pools between phases; arrays an operator
        has just placed for the *next* phase must survive the recycle.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def close(self) -> None:
        self._close_pool()
        if self._plane is not None:
            self._plane.close()

    def _broken(self, cause: BaseException | None = None) -> BrokenProcessPool:
        # A worker died (segfault, OOM kill): the pool is unusable and its
        # workers may never have detached. Full close — pool reset *and*
        # segment unlink — so a crash cannot leak /dev/shm entries; the
        # next map starts a fresh generation. The returned error names the
        # phase and the last task handed to the pool, so a crash report
        # says *where* in the pipeline the worker died.
        self.close()
        context = f"worker pool crashed during phase {self.ipc.phase!r}"
        if self._last_task is not None:
            context += f" (last submitted task {self._last_task})"
        detail = str(cause).strip() if cause is not None else ""
        if detail:
            context += f": {detail}"
        return BrokenProcessPool(context)

    # -- execution ---------------------------------------------------------------

    def _submit_chunk(self, pool, fn, chunk):
        phase = self.ipc.phase
        task_id = self.ipc.phase_stats(phase).tasks
        self._last_task = f"{phase}#{task_id}"
        if self.spans.enabled:
            payload = pickle.dumps(
                (fn, chunk, task_id, phase, self.spans.now())
            )
            self.ipc.record_task(len(payload))
            return pool.submit(run_pickled_chunk_traced, payload)
        payload = pickle.dumps((fn, chunk))
        self.ipc.record_task(len(payload))
        return pool.submit(run_pickled_chunk, payload)

    def _gather_pickled(self, futures) -> list:
        """Collect trampoline futures in order, accounting result bytes.

        Traced futures return ``(results_blob, span_blob)``; the span is
        handed to the recorder and its bytes billed to the separate span
        counter, so result-byte accounting is identical traced or not.
        If any chunk raises, every future that has not started yet is
        cancelled before the exception propagates — a poisoned chunk must
        not leave the chunks submitted after it running.
        """
        results: list = []
        try:
            for future in futures:
                blob = future.result()
                if isinstance(blob, tuple):
                    blob, span_blob = blob
                    self.ipc.record_span_payload(len(span_blob))
                    self.spans.record_worker_span(pickle.loads(span_blob))
                self.ipc.record_result(len(blob))
                results.extend(pickle.loads(blob))
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        return results

    def map(self, fn, items, *, grain=None):
        items = _as_list(items)
        if not items:
            return []
        if grain is None:
            grain = auto_grain(len(items), self.workers)
        if grain < 1:
            raise ConfigurationError(f"grain must be >= 1, got {grain}")
        pool = self._ensure_pool()
        futures = [
            self._submit_chunk(pool, fn, items[start : start + grain])
            for start in range(0, len(items), grain)
        ]
        try:
            return self._gather_pickled(futures)
        except BrokenProcessPool as exc:
            raise self._broken(exc) from exc

    def map_stream(self, fn, items, *, grain=None):
        """Micro-batched streaming map: one pickled task per *batch*.

        Items are grouped into batches of ``grain`` as the producer
        yields them, and each batch is submitted the moment it fills —
        delivery stays ordered and submit-as-produced, but a slow
        producer of many small items no longer pays one pickle round
        trip per item.
        """
        if grain is None:
            grain = auto_grain(_STREAM_WINDOW, self.workers)
        if grain < 1:
            raise ConfigurationError(f"grain must be >= 1, got {grain}")
        pool = self._ensure_pool()
        futures: list = []
        try:
            batch: list = []
            for item in items:
                batch.append(item)
                if len(batch) >= grain:
                    futures.append(self._submit_chunk(pool, fn, batch))
                    batch = []
            if batch:
                futures.append(self._submit_chunk(pool, fn, batch))
            return self._gather_pickled(futures)
        except BrokenProcessPool as exc:
            raise self._broken(exc) from exc
        except BaseException:
            for future in futures:
                future.cancel()
            raise


def make_backend(
    name: str, workers: int = 1, shm: bool | None = None
) -> ExecutionBackend:
    """Build a backend from its CLI name (one of :data:`BACKEND_CHOICES`).

    ``shm`` applies to the process backend (``None`` = use it where
    available); the in-process backends share an address space, so for
    them the flag is a no-op by construction. Singular spellings
    (``process``, ``thread``) are accepted as aliases.
    """
    name = _BACKEND_ALIASES.get(name, name)
    if name == "sequential":
        return SequentialBackend()
    if name == "threads":
        return ThreadBackend(workers)
    if name == "processes":
        return ProcessBackend(workers, shm=shm)
    raise ConfigurationError(
        f"unknown backend {name!r}; expected one of {', '.join(BACKEND_CHOICES)}"
    )
