"""Process-pool execution backend: real multi-core parallelism.

CPython's GIL caps :class:`~repro.exec.inline.ThreadBackend` at one core
for pure-Python operator loops; this module runs them on a pool of worker
*processes* instead — the reproduction's answer to the paper's Cilkplus
node for hosts where the simulation is not enough and the wall clock is
what counts.

Design points (see ``docs/backends.md`` for the cost model):

* **Chunk-batched IPC.** ``map`` pickles one task per *chunk* of items
  (Cilk-style grain via :func:`~repro.exec.parallel.auto_grain`), so the
  per-task pickle/unpickle round trip is amortized over the whole chunk
  instead of being paid per document.
* **Per-worker initializer.** Phase-constant state (tokenizer, stopword
  table, vocabulary, prepared matrix) is shipped once per worker through
  :meth:`ProcessBackend.configure`, not serialized into every task.
  Reconfiguring with different state recycles the pool — one cheap pool
  generation per phase, not per task.
* **Order preservation.** Results are collected in submission order, so
  ``map`` output is aligned with its input no matter which worker
  finished first.
* **Exception transparency.** An exception raised by the mapped function
  propagates to the caller (pickled across the process boundary) and all
  not-yet-started chunks are cancelled — a poisoned chunk does not leave
  its successors running behind the caller's back. The pool stays usable
  for subsequent ``map`` calls. A crashed worker (``BrokenProcessPool``)
  resets the pool so the next call starts fresh.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable

from repro.errors import ConfigurationError
from repro.exec.inline import (
    ExecutionBackend,
    SequentialBackend,
    ThreadBackend,
    _as_list,
    apply_chunk,
    gather_ordered,
    submit_stream,
)
from repro.exec.parallel import auto_grain

__all__ = ["ProcessBackend", "make_backend", "BACKEND_CHOICES", "default_start_method"]

#: Names accepted by :func:`make_backend` (and the CLI ``--backend`` flag).
BACKEND_CHOICES = ("sequential", "threads", "processes")


def default_start_method() -> str:
    """Pick the cheapest available start method.

    ``fork`` makes worker start-up and initializer shipping nearly free on
    Linux (pages are shared copy-on-write); elsewhere we fall back to the
    platform default (``spawn`` on macOS/Windows), which requires the
    initializer and kernels to be importable module-level functions —
    which all of :mod:`repro.ops.kernels` are.
    """
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else multiprocessing.get_start_method()


class ProcessBackend(ExecutionBackend):
    """Runs operator loops on a pool of worker processes."""

    def __init__(self, workers: int, start_method: str | None = None) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.name = f"processes-{workers}"
        self._start_method = start_method or default_start_method()
        self._pool: ProcessPoolExecutor | None = None
        #: (initializer, initargs) the *current* pool generation was built
        #: with; ``configure`` compares against it to avoid restarts when
        #: the same phase maps repeatedly.
        self._init: tuple[Callable[..., None], tuple] | None = None

    # -- pool lifecycle ----------------------------------------------------------

    def configure(self, initializer, initargs=()) -> None:
        """Ship per-worker state; recycles the pool only when it changed.

        Sameness is judged by identity (the initializer function and each
        initarg), not equality — initargs may hold numpy arrays, and
        callers that did not change the state pass the same objects.
        """
        if self._pool is not None and self._init is not None:
            prev_fn, prev_args = self._init
            if (
                prev_fn is initializer
                and len(prev_args) == len(initargs)
                and all(a is b for a, b in zip(prev_args, initargs))
            ):
                return
        self.close()
        self._init = (initializer, initargs)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            initializer, initargs = self._init or (None, ())
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context(self._start_method),
                initializer=initializer,
                initargs=initargs,
            )
        return self._pool

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # -- execution ---------------------------------------------------------------

    def map(self, fn, items, *, grain=None):
        items = _as_list(items)
        if not items:
            return []
        if grain is None:
            grain = auto_grain(len(items), self.workers)
        if grain < 1:
            raise ConfigurationError(f"grain must be >= 1, got {grain}")
        pool = self._ensure_pool()
        futures = [
            pool.submit(apply_chunk, fn, items[start : start + grain])
            for start in range(0, len(items), grain)
        ]
        try:
            # gather_ordered cancels not-yet-started chunks on any failure,
            # so a poisoned chunk does not leave its successors running.
            return gather_ordered(futures)
        except BrokenProcessPool:
            # A worker died (segfault, OOM kill): the pool is unusable.
            # Reset so the next map starts a fresh generation.
            self.close()
            raise

    def map_stream(self, fn, items):
        try:
            return submit_stream(self._ensure_pool(), fn, items)
        except BrokenProcessPool:
            self.close()
            raise


def make_backend(name: str, workers: int = 1) -> ExecutionBackend:
    """Build a backend from its CLI name (one of :data:`BACKEND_CHOICES`)."""
    if name == "sequential":
        return SequentialBackend()
    if name == "threads":
        return ThreadBackend(workers)
    if name == "processes":
        return ProcessBackend(workers)
    raise ConfigurationError(
        f"unknown backend {name!r}; expected one of {', '.join(BACKEND_CHOICES)}"
    )
