"""Deterministic fault injection for the real execution backends.

Testing recovery paths against real worker crashes is flaky by nature —
unless the faults themselves are planned. A :class:`FaultPlan` names, up
front, exactly which tasks misbehave and how:

* ``raise``  — the task raises :class:`FaultInjected` (a transient,
  retryable failure);
* ``hang``   — the task sleeps ``hang_s`` seconds (a wedged worker, to be
  reclaimed by the per-task timeout);
* ``exit``   — the task calls ``os._exit`` (a hard worker crash: the
  process dies without unwinding, the pool breaks).

Faults are keyed by ``(phase, task_id)`` — the same ids the span tracer
and IPC accounting use — and fire at most ``times`` times. The firing
state lives in a caller-owned directory of marker files, **not** in
process memory: a crashed-and-respawned worker sees that its fault
already fired and completes the replay, which is exactly the real-world
shape of a transient fault (and what lets a deterministic test assert
recovery instead of a crash loop).

Plans are installed on a backend (``backend.fault_plan = plan``); the
process backend ships each task's matching directive inside the task
payload, the in-process backends consult the plan inline. The plan only
*adds* failures — it never touches task data, so a recovered run is
bit-identical to a fault-free one.

``FaultPlan.seeded`` derives the victim tasks from a seed for
property-style sweeps; explicit specs remain the precise tool.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError, ReproError

__all__ = ["FAULT_KINDS", "FaultInjected", "FaultSpec", "FaultPlan", "fire_spec"]

#: Supported misbehaviors, roughly ordered by severity.
FAULT_KINDS = ("raise", "hang", "exit")

#: Exit status a crashed (``exit``-fault) worker dies with; distinctive
#: enough to spot in pool diagnostics.
CRASH_EXIT_CODE = 86


class FaultInjected(ReproError):
    """The transient failure a ``raise`` fault throws inside a task."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: which task, what happens, how often."""

    phase: str
    task_id: int
    kind: str
    #: Fire on the first ``times`` executions of the task, then behave.
    times: int = 1
    #: Sleep duration for ``hang`` faults (pick it well above the
    #: backend's task timeout so the hang is observed as a hang).
    hang_s: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.times < 1:
            raise ConfigurationError(f"fault times must be >= 1, got {self.times}")

    @property
    def key(self) -> str:
        return f"{self.phase}#{self.task_id}"


def _marker_path(state_dir: str, spec: FaultSpec) -> str:
    safe_phase = "".join(
        ch if ch.isalnum() or ch in "-_" else "_" for ch in spec.phase
    )
    return os.path.join(state_dir, f"fired_{safe_phase}_{spec.task_id}")


def _fire_count(state_dir: str, spec: FaultSpec) -> int:
    try:
        return os.path.getsize(_marker_path(state_dir, spec))
    except OSError:
        return 0


def _record_fire(state_dir: str, spec: FaultSpec) -> None:
    # One byte appended per firing; append is atomic enough because a
    # given task id executes on one worker at a time (replays included).
    with open(_marker_path(state_dir, spec), "ab") as handle:
        handle.write(b"x")


def fire_spec(spec: FaultSpec, state_dir: str) -> None:
    """Fire ``spec`` once if its budget allows — called inside the task.

    Module-level (and driven by plain picklable arguments) so the process
    backend can ship a directive inside a task payload and the worker can
    execute it without holding the whole plan.
    """
    if _fire_count(state_dir, spec) >= spec.times:
        return
    _record_fire(state_dir, spec)
    if spec.kind == "raise":
        raise FaultInjected(
            f"injected transient fault in task {spec.key} "
            f"(firing {_fire_count(state_dir, spec)}/{spec.times})"
        )
    if spec.kind == "hang":
        time.sleep(spec.hang_s)
        return
    # "exit": die without unwinding — no finally blocks, no atexit, the
    # closest stand-in for a segfaulted or OOM-killed worker.
    os._exit(CRASH_EXIT_CODE)


class FaultPlan:
    """A set of planned faults plus the directory holding firing state.

    ``state_dir`` must exist and outlive the run (tests pass ``tmp_path``);
    :meth:`reset` clears the firing markers so one plan can drive several
    runs. Multiple specs may target different tasks; at most one spec per
    ``(phase, task_id)``.
    """

    def __init__(self, specs, state_dir: str) -> None:
        if not os.path.isdir(state_dir):
            raise ConfigurationError(
                f"fault-plan state_dir {state_dir!r} is not a directory"
            )
        self.state_dir = state_dir
        self.specs: tuple[FaultSpec, ...] = tuple(specs)
        self._by_task: dict[tuple[str, int], FaultSpec] = {}
        for spec in self.specs:
            key = (spec.phase, spec.task_id)
            if key in self._by_task:
                raise ConfigurationError(
                    f"duplicate fault for task {spec.key}"
                )
            self._by_task[key] = spec

    @classmethod
    def seeded(
        cls,
        seed: int,
        state_dir: str,
        *,
        phases=("input+wc", "transform", "kmeans"),
        tasks_per_phase: int = 8,
        kinds=("raise",),
        times: int = 1,
        hang_s: float = 30.0,
    ) -> "FaultPlan":
        """Derive victim tasks deterministically from ``seed``.

        Each requested kind is assigned to one task drawn (without
        replacement) from the ``phases × tasks_per_phase`` grid — the
        same seed always builds the same plan.
        """
        rng = random.Random(seed)
        grid = [(phase, task_id) for phase in phases for task_id in range(tasks_per_phase)]
        if len(kinds) > len(grid):
            raise ConfigurationError(
                f"cannot place {len(kinds)} faults on a grid of {len(grid)} tasks"
            )
        victims = rng.sample(grid, len(tuple(kinds)))
        specs = [
            FaultSpec(phase=phase, task_id=task_id, kind=kind, times=times, hang_s=hang_s)
            for (phase, task_id), kind in zip(victims, kinds)
        ]
        return cls(specs, state_dir)

    def spec_for(self, phase: str, task_id: int) -> FaultSpec | None:
        return self._by_task.get((phase, task_id))

    def fire(self, phase: str, task_id: int) -> None:
        """In-process injection hook (sequential/thread backends)."""
        spec = self.spec_for(phase, task_id)
        if spec is not None:
            fire_spec(spec, self.state_dir)

    def fired(self, phase: str, task_id: int) -> int:
        """How many times the fault planned for this task has fired."""
        spec = self.spec_for(phase, task_id)
        return 0 if spec is None else _fire_count(self.state_dir, spec)

    def total_fired(self) -> int:
        return sum(_fire_count(self.state_dir, spec) for spec in self.specs)

    def reset(self) -> None:
        """Clear firing state so the plan can drive a fresh run."""
        for spec in self.specs:
            try:
                os.remove(_marker_path(self.state_dir, spec))
            except OSError:
                pass

    def scaled(self, **overrides) -> "FaultPlan":
        """A copy with every spec's fields overridden (e.g. ``hang_s``)."""
        return FaultPlan(
            [replace(spec, **overrides) for spec in self.specs], self.state_dir
        )
