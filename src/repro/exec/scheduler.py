"""Greedy virtual-time scheduler for parallel phases.

Models a Cilkplus-style ``cilk_for``: ready chunks are handed to the
earliest-available core (dynamic self-scheduling, the behaviour a
work-stealing runtime converges to for independent loop iterations), and
the phase additionally cannot complete faster than any shared device allows
(memory bandwidth, disk bandwidth, I/O channel latency).

The output of a simulation is a :class:`PhaseTiming`: elapsed virtual
seconds plus a per-resource lower-bound breakdown that names the phase's
bottleneck. Workflow reports (Figures 3 and 4) are stacks of these.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import SchedulerError
from repro.exec.machine import MachineSpec
from repro.exec.task import TaskCost

__all__ = ["PhaseTiming", "SimScheduler"]


@dataclass
class PhaseTiming:
    """Outcome of simulating one phase on the machine model."""

    #: Phase label (e.g. ``"input+wc"``, ``"kmeans"``, ``"tfidf-output"``).
    name: str
    #: Virtual seconds the phase occupies on the machine.
    elapsed_s: float
    #: Number of workers the schedule used.
    workers: int
    #: Number of scheduled chunks.
    n_tasks: int
    #: Aggregate resources consumed by the phase.
    totals: TaskCost
    #: Lower bounds per resource; ``elapsed_s`` is their maximum.
    bounds: dict[str, float] = field(default_factory=dict)
    #: Name of the binding resource (key of the max entry in ``bounds``).
    bottleneck: str = "schedule"
    #: Sum of per-core busy time (for utilization).
    busy_s: float = 0.0
    #: Per-task placement: (core, start, end) in schedule time, task order.
    spans: list[tuple[int, float, float]] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        """Fraction of core-seconds actually busy during the phase."""
        if self.elapsed_s == 0.0:
            return 0.0
        return self.busy_s / (self.workers * self.elapsed_s)

    def scaled(self, factor: float) -> "PhaseTiming":
        """Timing with all times multiplied by ``factor`` (extrapolation)."""
        return PhaseTiming(
            name=self.name,
            elapsed_s=self.elapsed_s * factor,
            workers=self.workers,
            n_tasks=self.n_tasks,
            totals=self.totals.scaled(factor),
            bounds={key: value * factor for key, value in self.bounds.items()},
            bottleneck=self.bottleneck,
            busy_s=self.busy_s * factor,
            spans=[(c, s * factor, e * factor) for c, s, e in self.spans],
        )


class SimScheduler:
    """Schedules declared task costs onto a :class:`MachineSpec`."""

    def __init__(self, machine: MachineSpec) -> None:
        self.machine = machine

    def simulate_phase(
        self,
        costs: Sequence[TaskCost],
        workers: int | None = None,
        name: str = "phase",
    ) -> PhaseTiming:
        """Simulate a phase of independent tasks and return its timing.

        ``costs`` are scheduled in order onto the earliest-free core —
        dynamic chunk self-scheduling. Shared-device rooflines are applied
        on top of the computed makespan.
        """
        machine = self.machine
        T = machine.effective_workers(workers)
        if any(cost.cpu_s < 0 or cost.mem_bytes < 0 for cost in costs):
            raise SchedulerError(f"phase {name!r} contains negative task costs")

        # (free_time, core_id) heap so placements are reported per core.
        core_free = [(0.0, core) for core in range(T)]
        heapq.heapify(core_free)
        busy = 0.0
        spans: list[tuple[int, float, float]] = []
        for cost in costs:
            duration = cost.duration_on(machine)
            busy += duration
            start, core = heapq.heappop(core_free)
            spans.append((core, start, start + duration))
            heapq.heappush(core_free, (start + duration, core))
        makespan = max(t for t, _ in core_free) if core_free else 0.0

        totals = TaskCost.total(list(costs))
        bounds = {
            "schedule": makespan,
            "memory": totals.mem_bytes / machine.mem_bw,
            "disk-read": totals.disk_read_bytes / machine.disk_read_bw,
            "disk-write": totals.disk_write_bytes / machine.disk_write_bw,
            "disk-latency": (
                totals.disk_opens
                * machine.disk_latency_s
                / min(T, machine.io_channels)
            ),
        }
        bottleneck = max(bounds, key=lambda key: bounds[key])
        return PhaseTiming(
            name=name,
            elapsed_s=bounds[bottleneck],
            workers=T,
            n_tasks=len(costs),
            totals=totals,
            bounds=bounds,
            bottleneck=bottleneck,
            busy_s=busy,
            spans=spans,
        )

    def serial_phase(self, cost: TaskCost, name: str = "serial") -> PhaseTiming:
        """Simulate a single-threaded phase (e.g. the ARFF output step)."""
        return self.simulate_phase([cost], workers=1, name=name)
