"""Real execution backends (no simulation).

The simulator answers "how would this scale on a 16-core node"; these
backends simply *run* the operators on the host for functional use —
examples, correctness tests, and real-data workloads. ``ThreadBackend``
uses a thread pool, which on CPython mostly helps I/O-bound stages but
keeps the operators' code paths identical to the simulated runs; the
process pool in :mod:`repro.exec.process` delivers real multi-core
speedups.

All backends share one protocol:

* :meth:`ExecutionBackend.configure` installs per-worker state (tokenizer,
  vocabulary, prepared matrix) *once per phase* instead of shipping it
  with every task;
* :meth:`ExecutionBackend.map` applies a function over items in input
  order, submitting **chunks** of items per task (Cilk-style grain, via
  :func:`repro.exec.parallel.auto_grain`) so per-task overhead — future
  bookkeeping for threads, pickling for processes — is amortized.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from itertools import chain
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import ConfigurationError, PhaseTimeoutError, TaskTimeoutError
from repro.exec.parallel import auto_grain
from repro.exec.resilience import (
    QuarantinedItem,
    QuarantineReport,
    ResilienceConfig,
    bisect_chunk,
    run_attempts,
)
from repro.exec.shm import IpcStats, LocalArrays, LocalBroadcast
from repro.exec.spans import SpanRecorder

__all__ = [
    "ExecutionBackend",
    "SequentialBackend",
    "ThreadBackend",
    "apply_chunk",
    "gather_ordered",
    "submit_stream",
]

ItemT = TypeVar("ItemT")

#: Sentinel for "the stream produced nothing" when peeking at a lazy
#: source — an empty input must never spin up a worker pool.
_EMPTY = object()
ResultT = TypeVar("ResultT")


def apply_chunk(fn: Callable, chunk: Sequence) -> list:
    """Apply ``fn`` to every item of ``chunk`` (the per-task trampoline).

    Module-level so process backends can pickle it once per submitted
    chunk; the thread backend reuses it so all backends share one path.
    """
    return [fn(item) for item in chunk]


def _as_list(items: Iterable) -> list:
    return items if isinstance(items, list) else list(items)


def gather_ordered(futures: Sequence) -> list:
    """Collect chunk futures in submission order, extending into one list.

    If any chunk raises, every future that has not started yet is
    cancelled before the exception propagates — a poisoned chunk must not
    leave the chunks submitted after it running (or keeping a wedged pool
    busy) once the caller has already seen the failure.
    """
    results: list = []
    try:
        for future in futures:
            results.extend(future.result())
    except BaseException:
        for future in futures:
            future.cancel()
        raise
    return results


def submit_stream(pool, fn: Callable, items: Iterable) -> list:
    """Submit one task per item as a (possibly lazy) producer yields it.

    The streaming twin of chunked ``map``: tasks start executing while the
    producer — typically a prefetching corpus reader — is still yielding,
    so compute overlaps input. Results are returned in submission order.
    If the producer *or* any task raises, all queued tasks are cancelled.
    """
    futures = []
    try:
        for item in items:
            futures.append(pool.submit(fn, item))
        return [future.result() for future in futures]
    except BaseException:
        for future in futures:
            future.cancel()
        raise


class ExecutionBackend:
    """Interface: map a function over items, preserving input order."""

    name = "abstract"
    #: Degree of real parallelism the backend targets (1 for sequential).
    workers = 1
    #: True when arrays shared via :meth:`share_arrays` live in named
    #: shared-memory segments that *worker processes* can attach to.
    #: Operators use this to pick the token/broadcast task shape; the
    #: in-process backends share an address space, so for them the
    #: zero-copy path is the plain by-reference path they already use.
    uses_shm = False
    #: True when :meth:`configure` may replace the worker pool (and with
    #: it any worker-resident kernel state). In-process backends run
    #: initializers against the parent's address space, so state survives
    #: reconfiguration; the process backend recycles its pool instead —
    #: the fused wc→transform path branches on this.
    configure_recycles_workers = False

    def __init__(self, resilience: ResilienceConfig | None = None) -> None:
        #: Per-phase IPC accounting (see :class:`repro.exec.shm.IpcStats`).
        #: In-process backends keep it too — operators charge phases
        #: uniformly, and the zero counts are themselves the measurement.
        self.ipc = IpcStats()
        #: Per-task span capture (see :class:`repro.exec.spans.SpanRecorder`);
        #: disarmed by default, armed by ``spans.begin_run()`` (which
        #: ``run_pipeline(trace=True)`` does for you).
        self.spans = SpanRecorder()
        #: Fault-tolerance policy (retries, deadlines, poison handling);
        #: the default config reproduces the pre-resilience fail-fast
        #: behavior exactly. Plain attribute — callers may replace it
        #: between phases.
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        #: Items isolated by ``on_poison="quarantine"`` across this
        #: backend's lifetime; ``run_pipeline`` clears it per run.
        self.quarantine = QuarantineReport()
        #: Optional :class:`repro.exec.faultinject.FaultPlan` — when set,
        #: tasks consult it (in-process backends inline, the process
        #: backend via a directive shipped in the task payload).
        self.fault_plan = None
        # Backend-level per-phase task ids, so fault plans, retries, and
        # spans agree on numbering whether or not tracing is armed.
        self._task_counters: dict[str, int] = {}
        self._phase_started = time.monotonic()

    def begin_phase(self, name: str) -> None:
        """Charge subsequent tasks/IPC/spans to the named pipeline phase."""
        self.ipc.set_phase(name)
        self.spans.set_phase(name)
        self._phase_started = time.monotonic()

    # -- resilience plumbing ------------------------------------------------------

    @property
    def _resilient(self) -> bool:
        """True when any fault-tolerance feature deviates from the seed
        behavior (and the hardened execution paths must be taken)."""
        cfg = self.resilience
        return (
            self.fault_plan is not None
            or cfg.retry.enabled
            or cfg.task_timeout_s is not None
            or cfg.phase_timeout_s is not None
            or cfg.quarantining
        )

    def _next_task_id(self, phase: str) -> int:
        task_id = self._task_counters.get(phase, 0)
        self._task_counters[phase] = task_id + 1
        return task_id

    def _check_phase_deadline(self, phase: str) -> None:
        limit = self.resilience.phase_timeout_s
        if limit is not None and time.monotonic() - self._phase_started > limit:
            raise PhaseTimeoutError(
                f"phase {phase!r} exceeded its {limit:.3f}s deadline on "
                f"backend {self.name!r}"
            )

    def _wait_timeout(self) -> float | None:
        """Effective timeout for one future wait: the per-task deadline,
        capped by whatever remains of the phase deadline."""
        cfg = self.resilience
        timeout = cfg.task_timeout_s
        if cfg.phase_timeout_s is not None:
            remaining = max(
                0.0, cfg.phase_timeout_s - (time.monotonic() - self._phase_started)
            )
            timeout = remaining if timeout is None else min(timeout, remaining)
        return timeout

    def _note_quarantined(
        self, phase: str, task_key: str, item_index: int,
        sub_start: int, n_units: int, exc: BaseException,
    ) -> None:
        self.quarantine.add(
            QuarantinedItem(
                phase=phase,
                task_key=task_key,
                item_index=item_index,
                sub_start=sub_start,
                n_units=n_units,
                attempts=getattr(exc, "attempts", 1),
                error=str(exc),
                error_type=type(exc).__name__,
            )
        )
        self.ipc.record_quarantined(n_units)

    def _run_item_resilient(self, fn, item, *, task_id: int, phase: str):
        """One map item under the retry policy (inline execution)."""

        def thunk(attempt: int):
            if self.fault_plan is not None:
                self.fault_plan.fire(phase, task_id)
            if not self.spans.enabled:
                return fn(item)
            t_start = self.spans.now()
            result = fn(item)
            self.spans.record(
                t_start, self.spans.now(), task_id=task_id, phase=phase,
                n_items=1, attempt=attempt,
            )
            return result

        def on_retry(attempt, exc, delay_s):
            self.ipc.record_retry(0)

        return run_attempts(
            self.resilience.retry, f"{phase}#{task_id}", thunk, on_retry=on_retry
        )

    def _map_inline_resilient(self, fn, items: Iterable, bisect_items: bool) -> list:
        """Hardened inline map shared by the sequential paths.

        Per item: fire any planned fault, retry under the policy, and —
        in quarantine mode — bisect a poisoned item (splitting *inside*
        sequence items when ``bisect_items``) instead of failing the map.
        """
        phase = self.spans.phase
        results: list = []
        for index, item in enumerate(items):
            self._check_phase_deadline(phase)
            task_id = self._next_task_id(phase)
            task_key = f"{phase}#{task_id}"
            try:
                results.append(
                    self._run_item_resilient(fn, item, task_id=task_id, phase=phase)
                )
            except Exception as exc:
                if not self.resilience.quarantining:
                    raise
                def run_sub(sub, _task_id=task_id, _phase=phase):
                    return [
                        self._run_item_resilient(fn, x, task_id=_task_id, phase=_phase)
                        for x in sub
                    ]
                def on_poisoned(i, sub_start, n_units, leaf_exc,
                                _phase=phase, _key=task_key):
                    self._note_quarantined(
                        _phase, _key, i, sub_start, n_units, leaf_exc
                    )
                results.extend(
                    bisect_chunk(
                        [item], run_sub, on_poisoned,
                        item_index=index, bisect_items=bisect_items,
                        failed_exc=exc,
                    )
                )
        return results

    def _record_inline_span(
        self, t_start: float, n_items: int, phase: str | None = None
    ) -> None:
        """Span for work just executed inline on the calling thread."""
        self.spans.record(
            t_start, self.spans.now(), n_items=n_items, phase=phase
        )

    # -- shared-array plane -------------------------------------------------------

    def share_arrays(self, tag: str, arrays) -> LocalArrays:
        """Place phase-constant arrays where every worker can see them.

        Returns a handle whose ``descriptor()`` is picklable into
        ``configure`` initargs and whose ``close()`` releases the
        placement. In-process default: a no-op wrapper around the very
        same arrays (nothing is copied).
        """
        return LocalArrays(tag, arrays)

    def open_broadcast(self, tag: str, template) -> LocalBroadcast:
        """Open a channel for per-iteration array publication.

        ``template`` fixes the shapes/dtypes every later
        :meth:`broadcast` must match. In-process default: a reference
        slot (publish stores references, readers get them back).
        """
        return LocalBroadcast(tag, stats=self.ipc)

    def broadcast(self, channel, arrays) -> int:
        """Publish this iteration's arrays; returns their generation.

        Workers read them back through the channel *descriptor* with
        ``read(generation)`` — tasks carry only the integer token.
        """
        return channel.publish(arrays)

    def configure(
        self, initializer: Callable[..., None], initargs: tuple = ()
    ) -> None:
        """Install per-worker state for the next phase of ``map`` calls.

        In-process backends (sequential, threads) run ``initializer`` once
        right here; the process backend runs it once inside every pool
        worker. Kernels retrieve the state through module-level globals
        (see :mod:`repro.ops.kernels`), so the same kernel code runs
        unchanged on every backend.
        """
        initializer(*initargs)

    def map(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Iterable[ItemT],
        *,
        grain: int | None = None,
        bisect_items: bool = False,
    ) -> list[ResultT]:
        raise NotImplementedError

    def map_stream(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Iterable[ItemT],
        *,
        grain: int | None = None,
        bisect_items: bool = False,
    ) -> list[ResultT]:
        """Apply ``fn`` to items as a lazy producer yields them, in order.

        Pooled backends start executing early tasks while the producer
        (e.g. a prefetching corpus reader) is still yielding later ones,
        overlapping input with compute; in-process backends drain the
        producer inline. ``grain`` is items per submitted task — callers
        whose items are already chunk-sized pass ``grain=1``; the process
        backend micro-batches by default to amortize per-task pickling.
        ``bisect_items`` opts quarantine-mode bisection into splitting
        *inside* sequence-valued items (only meaningful for callers whose
        per-item results are flattened in order, like the chunked text
        kernels).
        """
        if self._resilient:
            return self._map_inline_resilient(fn, items, bisect_items)
        if not self.spans.enabled:
            return [fn(item) for item in items]
        results = []
        for item in items:
            t_start = self.spans.now()
            results.append(fn(item))
            self._record_inline_span(t_start, n_items=1)
        return results

    def close(self) -> None:
        """Release any pooled resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SequentialBackend(ExecutionBackend):
    """Runs the loop inline on the calling thread."""

    name = "sequential"

    def map(self, fn, items, *, grain=None, bisect_items=False):
        items = _as_list(items)
        if self._resilient:
            return self._map_inline_resilient(fn, items, bisect_items)
        if not self.spans.enabled:
            return [fn(item) for item in items]
        # Operators pre-chunk their items (one chunk/block per map item),
        # so a span per item is a span per logical task here too.
        results = []
        for item in items:
            t_start = self.spans.now()
            results.append(fn(item))
            self._record_inline_span(t_start, n_items=1)
        return results


class ThreadBackend(ExecutionBackend):
    """Runs the loop on a pool of OS threads.

    ``map`` submits one future per *chunk* of items, not per item: with
    small loop bodies the executor's per-future bookkeeping otherwise
    swamps the work itself. The default grain targets ~8 chunks per
    worker (:func:`~repro.exec.parallel.auto_grain`).
    """

    def __init__(
        self, workers: int, resilience: ResilienceConfig | None = None
    ) -> None:
        super().__init__(resilience)
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.name = f"threads-{workers}"
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    def _traced_chunk(self, fn, chunk, task_id, phase, t_submit):
        """Chunk trampoline that records its span on the executing thread."""
        t_start = self.spans.now()
        results = apply_chunk(fn, chunk)
        self.spans.record(
            t_start,
            self.spans.now(),
            task_id=task_id,
            phase=phase,
            n_items=len(chunk),
            queue_s=t_start - t_submit,
        )
        return results

    def _submit_chunk(self, pool, fn, chunk):
        if not self.spans.enabled:
            return pool.submit(apply_chunk, fn, chunk)
        phase = self.spans.phase
        return pool.submit(
            self._traced_chunk,
            fn,
            chunk,
            self.spans.next_task_id(phase),
            phase,
            self.spans.now(),
        )

    def map(self, fn, items, *, grain=None, bisect_items=False):
        items = _as_list(items)
        if self._resilient:
            if not items:
                return []
            if grain is None:
                grain = (
                    auto_grain(len(items), self.workers)
                    if self.workers > 1 and len(items) > 1
                    else 1
                )
            if grain < 1:
                raise ConfigurationError(f"grain must be >= 1, got {grain}")
            chunks = [
                (start, items[start : start + grain])
                for start in range(0, len(items), grain)
            ]
            return self._run_resilient(fn, chunks, bisect_items)
        if len(items) <= 1 or self.workers == 1:
            if not self.spans.enabled:
                return [fn(item) for item in items]
            results = []
            for item in items:
                t_start = self.spans.now()
                results.append(fn(item))
                self._record_inline_span(t_start, n_items=1)
            return results
        if grain is None:
            grain = auto_grain(len(items), self.workers)
        if grain < 1:
            raise ConfigurationError(f"grain must be >= 1, got {grain}")
        pool = self._ensure_pool()
        futures = [
            self._submit_chunk(pool, fn, items[start : start + grain])
            for start in range(0, len(items), grain)
        ]
        return gather_ordered(futures)

    def map_stream(self, fn, items, *, grain=None, bisect_items=False):
        if self._resilient:
            # Per-item chunks (threads pay no pickle tax); the generator
            # keeps streaming overlap — tasks are submitted as the
            # producer yields, the hardened gather starts afterwards.
            chunks = ((index, [item]) for index, item in enumerate(items))
            return self._run_resilient(fn, chunks, bisect_items)
        if self.workers == 1:
            return super().map_stream(fn, items, grain=grain)
        if not self.spans.enabled:
            # Threads pay no pickle tax, so per-item submission is fine;
            # the grain knob only matters for the process backend. Peek
            # before creating the pool: an empty stream costs nothing.
            iterator = iter(items)
            first = next(iterator, _EMPTY)
            if first is _EMPTY:
                return []
            return submit_stream(
                self._ensure_pool(), fn, chain([first], iterator)
            )
        pool = None
        futures = []
        try:
            for item in items:
                if pool is None:
                    pool = self._ensure_pool()
                futures.append(self._submit_chunk(pool, fn, [item]))
        except BaseException:
            # The *producer* failed mid-stream: drop what was queued.
            for future in futures:
                future.cancel()
            raise
        return gather_ordered(futures)

    # -- hardened execution -------------------------------------------------------

    def _resilient_chunk(self, fn, chunk, task_id, phase, t_submit, attempt):
        """Chunk trampoline that fires planned faults and stamps attempts."""
        if self.fault_plan is not None:
            self.fault_plan.fire(phase, task_id)
        if not self.spans.enabled:
            return apply_chunk(fn, chunk)
        t_start = self.spans.now()
        results = apply_chunk(fn, chunk)
        self.spans.record(
            t_start,
            self.spans.now(),
            task_id=task_id,
            phase=phase,
            n_items=len(chunk),
            queue_s=t_start - t_submit,
            attempt=attempt,
        )
        return results

    def _submit_resilient(self, pool, fn, chunk, task_id, phase, attempt):
        t_submit = self.spans.now() if self.spans.enabled else 0.0
        return pool.submit(
            self._resilient_chunk, fn, chunk, task_id, phase, t_submit, attempt
        )

    def _abandon_pool(self) -> None:
        """Walk away from a pool with a wedged thread.

        Threads cannot be killed; all we can do is cancel what has not
        started and stop handing the pool new work. The wedged thread
        finishes (or sleeps out) on its own.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _run_resilient(self, fn, chunks, bisect_items: bool) -> list:
        """Submit ``(start_index, chunk)`` tasks; gather with the policy.

        A failed chunk is retried (resubmitted under the same task id,
        billed to ``IpcStats.retries``); a chunk that exhausts the budget
        is either raised (default) or bisected into quarantined leaves. A
        per-task deadline overrun is final on this backend — the wedged
        thread cannot be reclaimed, so the pool is abandoned and
        :class:`TaskTimeoutError` propagates.
        """
        cfg = self.resilience
        phase = self.spans.phase
        pool = None  # created on the first chunk: empty input, no pool
        tasks = []  # [start_index, chunk, task_id, future]
        for start, chunk in chunks:
            if pool is None:
                pool = self._ensure_pool()
            task_id = self._next_task_id(phase)
            future = self._submit_resilient(pool, fn, chunk, task_id, phase, 1)
            tasks.append([start, chunk, task_id, future])
        results: list = []
        for position, task in enumerate(tasks):
            start, chunk, task_id, future = task
            task_key = f"{phase}#{task_id}"
            attempt = 1
            while True:
                try:
                    self._check_phase_deadline(phase)
                    results.extend(future.result(timeout=self._wait_timeout()))
                    break
                except FutureTimeoutError:
                    self._cancel_rest(tasks, position + 1)
                    self._abandon_pool()
                    self._check_phase_deadline(phase)  # phase overrun? say so
                    self.ipc.record_timeout()
                    raise TaskTimeoutError(
                        f"task {task_key} exceeded its per-task deadline on "
                        f"backend {self.name!r}; threads cannot be reclaimed "
                        "— pool abandoned"
                    ) from None
                except PhaseTimeoutError:
                    self._cancel_rest(tasks, position + 1)
                    self._abandon_pool()
                    raise
                except Exception as exc:
                    retry = cfg.retry
                    if retry.is_retryable(exc) and not retry.gives_up_after(attempt):
                        delay = retry.backoff_s(task_key, attempt)
                        self.ipc.record_retry(0)
                        if delay > 0:
                            time.sleep(delay)
                        attempt += 1
                        future = self._submit_resilient(
                            pool, fn, chunk, task_id, phase, attempt
                        )
                        continue
                    exc.attempts = attempt  # type: ignore[attr-defined]
                    if not cfg.quarantining:
                        self._cancel_rest(tasks, position + 1)
                        raise
                    results.extend(
                        self._bisect_poisoned(
                            fn, chunk, exc,
                            item_index=start, phase=phase, task_key=task_key,
                            task_id=task_id, bisect_items=bisect_items,
                        )
                    )
                    break
        return results

    @staticmethod
    def _cancel_rest(tasks, from_position: int) -> None:
        for task in tasks[from_position:]:
            task[3].cancel()

    def _bisect_poisoned(
        self, fn, chunk, exc, *, item_index, phase, task_key, task_id, bisect_items
    ) -> list:
        """Isolate the poisoned item(s) of an exhausted chunk, inline."""

        def run_sub(sub):
            def thunk(attempt):
                if self.fault_plan is not None:
                    self.fault_plan.fire(phase, task_id)
                return apply_chunk(fn, sub)

            def on_retry(attempt, retry_exc, delay_s):
                self.ipc.record_retry(0)

            return run_attempts(
                self.resilience.retry, task_key, thunk, on_retry=on_retry
            )

        def on_poisoned(index, sub_start, n_units, leaf_exc):
            self._note_quarantined(
                phase, task_key, index, sub_start, n_units, leaf_exc
            )

        return bisect_chunk(
            chunk, run_sub, on_poisoned,
            item_index=item_index, bisect_items=bisect_items, failed_exc=exc,
        )

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
