"""Real execution backends (no simulation).

The simulator answers "how would this scale on a 16-core node"; these
backends simply *run* the operators on the host for functional use —
examples, correctness tests, and real-data workloads. ``ThreadBackend``
uses a thread pool, which on CPython mostly helps I/O-bound stages but
keeps the operators' code paths identical to the simulated runs; the
process pool in :mod:`repro.exec.process` delivers real multi-core
speedups.

All backends share one protocol:

* :meth:`ExecutionBackend.configure` installs per-worker state (tokenizer,
  vocabulary, prepared matrix) *once per phase* instead of shipping it
  with every task;
* :meth:`ExecutionBackend.map` applies a function over items in input
  order, submitting **chunks** of items per task (Cilk-style grain, via
  :func:`repro.exec.parallel.auto_grain`) so per-task overhead — future
  bookkeeping for threads, pickling for processes — is amortized.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import ConfigurationError
from repro.exec.parallel import auto_grain
from repro.exec.shm import IpcStats, LocalArrays, LocalBroadcast
from repro.exec.spans import SpanRecorder

__all__ = [
    "ExecutionBackend",
    "SequentialBackend",
    "ThreadBackend",
    "apply_chunk",
    "gather_ordered",
    "submit_stream",
]

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


def apply_chunk(fn: Callable, chunk: Sequence) -> list:
    """Apply ``fn`` to every item of ``chunk`` (the per-task trampoline).

    Module-level so process backends can pickle it once per submitted
    chunk; the thread backend reuses it so all backends share one path.
    """
    return [fn(item) for item in chunk]


def _as_list(items: Iterable) -> list:
    return items if isinstance(items, list) else list(items)


def gather_ordered(futures: Sequence) -> list:
    """Collect chunk futures in submission order, extending into one list.

    If any chunk raises, every future that has not started yet is
    cancelled before the exception propagates — a poisoned chunk must not
    leave the chunks submitted after it running (or keeping a wedged pool
    busy) once the caller has already seen the failure.
    """
    results: list = []
    try:
        for future in futures:
            results.extend(future.result())
    except BaseException:
        for future in futures:
            future.cancel()
        raise
    return results


def submit_stream(pool, fn: Callable, items: Iterable) -> list:
    """Submit one task per item as a (possibly lazy) producer yields it.

    The streaming twin of chunked ``map``: tasks start executing while the
    producer — typically a prefetching corpus reader — is still yielding,
    so compute overlaps input. Results are returned in submission order.
    If the producer *or* any task raises, all queued tasks are cancelled.
    """
    futures = []
    try:
        for item in items:
            futures.append(pool.submit(fn, item))
        return [future.result() for future in futures]
    except BaseException:
        for future in futures:
            future.cancel()
        raise


class ExecutionBackend:
    """Interface: map a function over items, preserving input order."""

    name = "abstract"
    #: Degree of real parallelism the backend targets (1 for sequential).
    workers = 1
    #: True when arrays shared via :meth:`share_arrays` live in named
    #: shared-memory segments that *worker processes* can attach to.
    #: Operators use this to pick the token/broadcast task shape; the
    #: in-process backends share an address space, so for them the
    #: zero-copy path is the plain by-reference path they already use.
    uses_shm = False

    def __init__(self) -> None:
        #: Per-phase IPC accounting (see :class:`repro.exec.shm.IpcStats`).
        #: In-process backends keep it too — operators charge phases
        #: uniformly, and the zero counts are themselves the measurement.
        self.ipc = IpcStats()
        #: Per-task span capture (see :class:`repro.exec.spans.SpanRecorder`);
        #: disarmed by default, armed by ``spans.begin_run()`` (which
        #: ``run_pipeline(trace=True)`` does for you).
        self.spans = SpanRecorder()

    def begin_phase(self, name: str) -> None:
        """Charge subsequent tasks/IPC/spans to the named pipeline phase."""
        self.ipc.set_phase(name)
        self.spans.set_phase(name)

    def _record_inline_span(
        self, t_start: float, n_items: int, phase: str | None = None
    ) -> None:
        """Span for work just executed inline on the calling thread."""
        self.spans.record(
            t_start, self.spans.now(), n_items=n_items, phase=phase
        )

    # -- shared-array plane -------------------------------------------------------

    def share_arrays(self, tag: str, arrays) -> LocalArrays:
        """Place phase-constant arrays where every worker can see them.

        Returns a handle whose ``descriptor()`` is picklable into
        ``configure`` initargs and whose ``close()`` releases the
        placement. In-process default: a no-op wrapper around the very
        same arrays (nothing is copied).
        """
        return LocalArrays(tag, arrays)

    def open_broadcast(self, tag: str, template) -> LocalBroadcast:
        """Open a channel for per-iteration array publication.

        ``template`` fixes the shapes/dtypes every later
        :meth:`broadcast` must match. In-process default: a reference
        slot (publish stores references, readers get them back).
        """
        return LocalBroadcast(tag, stats=self.ipc)

    def broadcast(self, channel, arrays) -> int:
        """Publish this iteration's arrays; returns their generation.

        Workers read them back through the channel *descriptor* with
        ``read(generation)`` — tasks carry only the integer token.
        """
        return channel.publish(arrays)

    def configure(
        self, initializer: Callable[..., None], initargs: tuple = ()
    ) -> None:
        """Install per-worker state for the next phase of ``map`` calls.

        In-process backends (sequential, threads) run ``initializer`` once
        right here; the process backend runs it once inside every pool
        worker. Kernels retrieve the state through module-level globals
        (see :mod:`repro.ops.kernels`), so the same kernel code runs
        unchanged on every backend.
        """
        initializer(*initargs)

    def map(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Iterable[ItemT],
        *,
        grain: int | None = None,
    ) -> list[ResultT]:
        raise NotImplementedError

    def map_stream(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Iterable[ItemT],
        *,
        grain: int | None = None,
    ) -> list[ResultT]:
        """Apply ``fn`` to items as a lazy producer yields them, in order.

        Pooled backends start executing early tasks while the producer
        (e.g. a prefetching corpus reader) is still yielding later ones,
        overlapping input with compute; in-process backends drain the
        producer inline. ``grain`` is items per submitted task — callers
        whose items are already chunk-sized pass ``grain=1``; the process
        backend micro-batches by default to amortize per-task pickling.
        """
        if not self.spans.enabled:
            return [fn(item) for item in items]
        results = []
        for item in items:
            t_start = self.spans.now()
            results.append(fn(item))
            self._record_inline_span(t_start, n_items=1)
        return results

    def close(self) -> None:
        """Release any pooled resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SequentialBackend(ExecutionBackend):
    """Runs the loop inline on the calling thread."""

    name = "sequential"

    def map(self, fn, items, *, grain=None):
        items = _as_list(items)
        if not self.spans.enabled:
            return [fn(item) for item in items]
        # Operators pre-chunk their items (one chunk/block per map item),
        # so a span per item is a span per logical task here too.
        results = []
        for item in items:
            t_start = self.spans.now()
            results.append(fn(item))
            self._record_inline_span(t_start, n_items=1)
        return results


class ThreadBackend(ExecutionBackend):
    """Runs the loop on a pool of OS threads.

    ``map`` submits one future per *chunk* of items, not per item: with
    small loop bodies the executor's per-future bookkeeping otherwise
    swamps the work itself. The default grain targets ~8 chunks per
    worker (:func:`~repro.exec.parallel.auto_grain`).
    """

    def __init__(self, workers: int) -> None:
        super().__init__()
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.name = f"threads-{workers}"
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    def _traced_chunk(self, fn, chunk, task_id, phase, t_submit):
        """Chunk trampoline that records its span on the executing thread."""
        t_start = self.spans.now()
        results = apply_chunk(fn, chunk)
        self.spans.record(
            t_start,
            self.spans.now(),
            task_id=task_id,
            phase=phase,
            n_items=len(chunk),
            queue_s=t_start - t_submit,
        )
        return results

    def _submit_chunk(self, pool, fn, chunk):
        if not self.spans.enabled:
            return pool.submit(apply_chunk, fn, chunk)
        phase = self.spans.phase
        return pool.submit(
            self._traced_chunk,
            fn,
            chunk,
            self.spans.next_task_id(phase),
            phase,
            self.spans.now(),
        )

    def map(self, fn, items, *, grain=None):
        items = _as_list(items)
        if len(items) <= 1 or self.workers == 1:
            if not self.spans.enabled:
                return [fn(item) for item in items]
            results = []
            for item in items:
                t_start = self.spans.now()
                results.append(fn(item))
                self._record_inline_span(t_start, n_items=1)
            return results
        if grain is None:
            grain = auto_grain(len(items), self.workers)
        if grain < 1:
            raise ConfigurationError(f"grain must be >= 1, got {grain}")
        pool = self._ensure_pool()
        futures = [
            self._submit_chunk(pool, fn, items[start : start + grain])
            for start in range(0, len(items), grain)
        ]
        return gather_ordered(futures)

    def map_stream(self, fn, items, *, grain=None):
        if self.workers == 1:
            return super().map_stream(fn, items, grain=grain)
        if not self.spans.enabled:
            # Threads pay no pickle tax, so per-item submission is fine;
            # the grain knob only matters for the process backend.
            return submit_stream(self._ensure_pool(), fn, items)
        pool = self._ensure_pool()
        futures = []
        try:
            for item in items:
                futures.append(self._submit_chunk(pool, fn, [item]))
        except BaseException:
            # The *producer* failed mid-stream: drop what was queued.
            for future in futures:
                future.cancel()
            raise
        return gather_ordered(futures)

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
