"""Real execution backends (no simulation).

The simulator answers "how would this scale on a 16-core node"; these
backends simply *run* the operators on the host for functional use —
examples, correctness tests, and real-data workloads. ``ThreadBackend``
uses a thread pool, which on CPython mostly helps I/O-bound stages but
keeps the operators' code paths identical to the simulated runs.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import ConfigurationError

__all__ = ["ExecutionBackend", "SequentialBackend", "ThreadBackend"]

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


class ExecutionBackend:
    """Interface: map a function over items, preserving input order."""

    name = "abstract"

    def map(
        self, fn: Callable[[ItemT], ResultT], items: Iterable[ItemT]
    ) -> list[ResultT]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any pooled resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SequentialBackend(ExecutionBackend):
    """Runs the loop inline on the calling thread."""

    name = "sequential"

    def map(self, fn, items):
        return [fn(item) for item in items]


class ThreadBackend(ExecutionBackend):
    """Runs the loop on a pool of OS threads."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.name = f"threads-{workers}"
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    def map(self, fn, items):
        if not isinstance(items, Sequence):
            items = list(items)
        if len(items) <= 1 or self.workers == 1:
            return [fn(item) for item in items]
        return list(self._ensure_pool().map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
