"""Task cost records for the virtual-time simulator.

Operators execute their real Python logic and, as a by-product, produce a
:class:`TaskCost` per unit of work (per document chunk, per file, per
centroid update...). The scheduler never times Python execution — wall
clock on the host is irrelevant — it only aggregates these declared costs
onto the machine model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exec.machine import MachineSpec

__all__ = ["TaskCost"]


@dataclass
class TaskCost:
    """Resources consumed by one schedulable unit of work.

    Attributes
    ----------
    cpu_s:
        Pure computation time on one core, in virtual seconds.
    mem_bytes:
        DRAM traffic generated (reads + writes); interacts with both the
        per-core and the socket-level bandwidth limits.
    disk_read_bytes / disk_write_bytes:
        Bytes moved to/from the storage device, performed synchronously
        within the task (a task reading its input file blocks on it, but
        other cores keep computing — that is the paper's "parallelism
        hides I/O latency").
    disk_opens:
        Number of file-open operations, each charged the device latency.
    """

    cpu_s: float = 0.0
    mem_bytes: float = 0.0
    disk_read_bytes: float = 0.0
    disk_write_bytes: float = 0.0
    disk_opens: int = 0

    def add(self, other: "TaskCost") -> "TaskCost":
        """Accumulate ``other`` into this cost; returns self for chaining."""
        self.cpu_s += other.cpu_s
        self.mem_bytes += other.mem_bytes
        self.disk_read_bytes += other.disk_read_bytes
        self.disk_write_bytes += other.disk_write_bytes
        self.disk_opens += other.disk_opens
        return self

    def __add__(self, other: "TaskCost") -> "TaskCost":
        return TaskCost(
            cpu_s=self.cpu_s + other.cpu_s,
            mem_bytes=self.mem_bytes + other.mem_bytes,
            disk_read_bytes=self.disk_read_bytes + other.disk_read_bytes,
            disk_write_bytes=self.disk_write_bytes + other.disk_write_bytes,
            disk_opens=self.disk_opens + other.disk_opens,
        )

    def scaled(self, factor: float) -> "TaskCost":
        """Cost multiplied by ``factor`` (used for extrapolation)."""
        return TaskCost(
            cpu_s=self.cpu_s * factor,
            mem_bytes=self.mem_bytes * factor,
            disk_read_bytes=self.disk_read_bytes * factor,
            disk_write_bytes=self.disk_write_bytes * factor,
            disk_opens=int(round(self.disk_opens * factor)),
        )

    def compute_time(self, machine: MachineSpec) -> float:
        """Single-core compute time: CPU overlapped with its own DRAM traffic.

        A core executes instructions and its memory accesses concurrently up
        to its private streaming limit, hence the ``max``.
        """
        return max(self.cpu_s, self.mem_bytes / machine.core_mem_bw)

    def io_time(self, machine: MachineSpec) -> float:
        """Synchronous storage time paid inside this task."""
        return (
            self.disk_read_bytes / machine.disk_read_bw
            + self.disk_write_bytes / machine.disk_write_bw
            + self.disk_opens * machine.disk_latency_s
        )

    def duration_on(self, machine: MachineSpec) -> float:
        """Total occupancy of one core by this task (compute + blocking I/O)."""
        return self.compute_time(machine) + self.io_time(machine)

    @property
    def is_zero(self) -> bool:
        """True when the task consumes no modelled resources."""
        return (
            self.cpu_s == 0.0
            and self.mem_bytes == 0.0
            and self.disk_read_bytes == 0.0
            and self.disk_write_bytes == 0.0
            and self.disk_opens == 0
        )

    @staticmethod
    def total(costs: "list[TaskCost] | tuple[TaskCost, ...]") -> "TaskCost":
        """Sum a sequence of costs into one record."""
        result = TaskCost()
        for cost in costs:
            result.add(cost)
        return result
