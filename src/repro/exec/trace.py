"""ASCII execution traces of simulated schedules.

Renders the per-core placement recorded by the scheduler as a Gantt-style
text chart — the quickest way to *see* why a phase stopped scaling (three
fat chunks on a 16-core machine, a serial ARFF tail, a memory-bandwidth
plateau). Used by examples and by humans debugging calibrations; the
benchmark reports stay tabular.
"""

from __future__ import annotations

from repro.exec.metrics import Timeline
from repro.exec.scheduler import PhaseTiming

__all__ = ["render_phase_trace", "render_timeline_trace"]

_FULL = "█"
_PART = "▒"


def render_phase_trace(timing: PhaseTiming, width: int = 64) -> str:
    """Gantt chart of one phase: a row per core, time left to right.

    Cells covered by a task for their whole duration render solid; cells
    partially covered render hatched. A trailing annotation names the
    phase's bottleneck when the device rooflines (not the schedule)
    bound it.
    """
    if width < 8:
        raise ValueError(f"width must be >= 8, got {width}")
    if not timing.spans or timing.elapsed_s <= 0:
        return f"{timing.name}: empty phase"

    horizon = max(end for _, _, end in timing.spans)
    scale = width / horizon if horizon > 0 else 0.0
    lines = [
        f"{timing.name}: {timing.elapsed_s:.3f}s on {timing.workers} core(s), "
        f"{timing.n_tasks} task(s), bottleneck={timing.bottleneck}, "
        f"utilization={timing.utilization:.0%}"
    ]
    cores = sorted({core for core, _, _ in timing.spans})
    for core in cores:
        cells = [" "] * width
        for span_core, start, end in timing.spans:
            if span_core != core:
                continue
            first = int(start * scale)
            last = max(first, min(width - 1, int(end * scale) - (1 if end * scale == int(end * scale) else 0)))
            for cell in range(first, last + 1):
                cell_start, cell_end = cell / scale, (cell + 1) / scale
                covered = min(end, cell_end) - max(start, cell_start)
                if covered >= 0.999 * (cell_end - cell_start):
                    cells[cell] = _FULL
                elif covered > 0 and cells[cell] != _FULL:
                    cells[cell] = _PART
        lines.append(f"  core {core:>3} |{''.join(cells)}|")
    if timing.bottleneck != "schedule":
        lines.append(
            f"  (device-bound: {timing.bottleneck} roofline extends the phase "
            f"to {timing.elapsed_s:.3f}s beyond the schedule's "
            f"{timing.bounds['schedule']:.3f}s)"
        )
    return "\n".join(lines)


def render_timeline_trace(
    timeline: Timeline, width: int = 64, max_phases: int | None = None
) -> str:
    """Concatenated phase traces for a whole run, in execution order."""
    phases = timeline.phases
    if max_phases is not None:
        phases = phases[:max_phases]
    if not phases:
        return "(empty timeline)"
    blocks = [render_phase_trace(phase, width=width) for phase in phases]
    if max_phases is not None and len(timeline.phases) > max_phases:
        blocks.append(f"... {len(timeline.phases) - max_phases} more phase(s)")
    return "\n\n".join(blocks)
