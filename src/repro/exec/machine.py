"""Machine model for the simulated analytics node.

The paper runs Cilkplus C++ on a single multi-core node with a local hard
disk (§2). This reproduction executes the same operator logic in Python and
accounts *virtual time* against an explicit machine description, so that
thread-scaling experiments are deterministic and independent of the host
(which may well have a single core and a GIL).

The model is a resource roofline:

* ``cores`` identical CPUs; per-task CPU seconds are scheduled greedily.
* one shared memory system with an aggregate bandwidth (``mem_bw``) and a
  per-core streaming limit (``core_mem_bw``); a task's effective compute
  time is ``max(cpu, mem_bytes / core_mem_bw)`` and a parallel phase cannot
  finish faster than ``total_mem_bytes / mem_bw`` — this cap is what limits
  the hash-table transform phase to 3.4x in Figure 4.
* one disk with separate read/write bandwidths, a per-open latency, and a
  bounded number of concurrent channels; serial ARFF output in Figure 3
  pays these costs un-overlapped, while the parallel input phase of
  Figure 2 hides them behind computation on other cores.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = ["MachineSpec", "paper_node", "fast_ssd_node"]

_MB = 1024 * 1024
_GB = 1024 * _MB


@dataclass(frozen=True)
class MachineSpec:
    """Description of the simulated single node.

    All bandwidths are bytes per (virtual) second; latencies are seconds.
    """

    #: Number of processing cores available to the scheduler.
    cores: int = 16
    #: Aggregate DRAM bandwidth of the socket. The ratio to ``core_mem_bw``
    #: bounds how far memory-bound phases can scale (Figure 4's 3.4x cap).
    mem_bw: float = 13.6 * _GB
    #: Streaming bandwidth achievable by a single core.
    core_mem_bw: float = 4.0 * _GB
    #: Sequential read bandwidth of the local disk.
    disk_read_bw: float = 140.0 * _MB
    #: Sequential write bandwidth of the local disk.
    disk_write_bw: float = 110.0 * _MB
    #: Latency charged per file open (metadata + queueing; the data itself
    #: is served from OS readahead, so this is far below a raw seek).
    disk_latency_s: float = 0.00015
    #: Concurrent I/O streams the storage can overlap.
    io_channels: int = 4
    #: Human-readable label for reports.
    name: str = "paper-node"

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigurationError(f"cores must be >= 1, got {self.cores}")
        for field_name in ("mem_bw", "core_mem_bw", "disk_read_bw", "disk_write_bw"):
            value = getattr(self, field_name)
            if value <= 0:
                raise ConfigurationError(f"{field_name} must be positive, got {value}")
        if self.disk_latency_s < 0:
            raise ConfigurationError("disk_latency_s must be >= 0")
        if self.io_channels < 1:
            raise ConfigurationError("io_channels must be >= 1")
        if self.core_mem_bw > self.mem_bw:
            raise ConfigurationError(
                "a single core cannot out-stream the socket: "
                f"core_mem_bw={self.core_mem_bw} > mem_bw={self.mem_bw}"
            )

    def with_cores(self, cores: int) -> "MachineSpec":
        """Copy of this machine with a different core count (thread sweeps)."""
        return replace(self, cores=cores)

    def effective_workers(self, requested: int | None) -> int:
        """Clamp a requested worker count to the physical core count."""
        if requested is None:
            return self.cores
        if requested < 1:
            raise ConfigurationError(f"workers must be >= 1, got {requested}")
        return min(requested, self.cores)


def paper_node(cores: int = 16) -> MachineSpec:
    """The default experimental platform: multi-core node with a local HDD.

    Matches the paper's setup (§2, §3.3: "the data is dumped to a local
    hard disk"): plentiful cores, a spinning disk, and a memory system that
    a handful of streaming cores can saturate.
    """
    return MachineSpec(cores=cores, name=f"paper-node-{cores}c")


def fast_ssd_node(cores: int = 16) -> MachineSpec:
    """Variant platform with NVMe-class storage, for I/O ablations."""
    return MachineSpec(
        cores=cores,
        disk_read_bw=2.0 * _GB,
        disk_write_bw=1.5 * _GB,
        disk_latency_s=0.0001,
        io_channels=16,
        name=f"ssd-node-{cores}c",
    )
