"""Fault-tolerance policy layer for the real execution backends.

The paper's intra-node operators assume every Cilk task completes; the
real backends inherited that assumption, so one poisoned document, hung
worker, or killed process used to abort the entire pipeline. This module
holds the *policy* objects the backends weave into ``map``/``map_stream``
(the mechanisms live in :mod:`repro.exec.inline` and
:mod:`repro.exec.process`):

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  **deterministic** jitter: the jitter for ``(task, attempt)`` comes from
  a seeded hash, never from global randomness, so a retried run sleeps
  the same schedule every time.
* :class:`ResilienceConfig` — one bundle per backend: the retry policy,
  per-task and per-phase deadlines, the poison-handling mode
  (``"raise"`` keeps today's fail-fast semantics; ``"quarantine"``
  isolates poisoned items and completes the rest), and the pool-restart
  circuit breaker.
* :class:`QuarantineReport` / :class:`QuarantinedItem` — the record of
  every item that exhausted its retries in a quarantine run, surfaced on
  :class:`~repro.core.pipeline.RealRunResult`.
* :class:`DowngradeEvent` — one backend downgrade (process → thread →
  inline) performed by ``run_pipeline(degrade=True)`` after a circuit
  breaker tripped.
* :func:`run_attempts` / :func:`bisect_chunk` — the small shared
  mechanisms: a retry loop for in-process execution (thread chunks,
  reader threads) and the recursive bisection that narrows a poisoned
  chunk down to the offending item(s).

Nothing here touches task *data*: retries re-run the same pure kernel on
the same chunk, so whenever recovery succeeds the output is bit-identical
to a fault-free run.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = [
    "RetryPolicy",
    "ResilienceConfig",
    "QuarantinedItem",
    "QuarantineReport",
    "DowngradeEvent",
    "POISON_MODES",
    "run_attempts",
    "bisect_chunk",
]

#: Accepted ``on_poison`` modes: fail fast (the default — preserves the
#: bit-identical-output guarantee trivially) or isolate-and-continue.
POISON_MODES = ("raise", "quarantine")


@dataclass(frozen=True)
class RetryPolicy:
    """Per-task retry budget with deterministic, seeded backoff jitter.

    ``max_attempts`` counts executions, not re-executions: the default of
    1 means "no retries" and reproduces the pre-resilience behavior
    exactly. Backoff before attempt ``n+1`` is
    ``backoff_base_s * backoff_factor**(n-1)`` (capped at
    ``max_backoff_s``), scaled by a jitter factor in
    ``[1 - jitter, 1 + jitter]`` drawn from a CRC of
    ``(jitter_seed, task key, attempt)`` — the same task retried in the
    same run sleeps the same schedule, every run, on every host.
    """

    max_attempts: int = 1
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    max_backoff_s: float = 30.0
    jitter: float = 0.1
    jitter_seed: int = 0
    #: Exception classes worth re-running the task for. ``BaseException``
    #: escapees (KeyboardInterrupt, SystemExit) are never retried.
    retryable_exceptions: tuple = (Exception,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.backoff_base_s < 0 or self.max_backoff_s < 0:
            raise ConfigurationError("backoff durations must be >= 0")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """No retries — every failure is final (the seed behavior)."""
        return cls(max_attempts=1)

    @property
    def enabled(self) -> bool:
        return self.max_attempts > 1

    def is_retryable(self, exc: BaseException) -> bool:
        return isinstance(exc, self.retryable_exceptions)

    def gives_up_after(self, attempt: int) -> bool:
        """True when ``attempt`` (1-based) was the last allowed execution."""
        return attempt >= self.max_attempts

    def backoff_s(self, task_key: str, attempt: int) -> float:
        """Deterministic sleep before re-running ``task_key``.

        ``attempt`` is the 1-based attempt that just failed. The jitter
        is a pure function of ``(jitter_seed, task_key, attempt)``, so
        retried runs are reproducible.
        """
        if self.backoff_base_s <= 0.0:
            return 0.0
        base = min(
            self.max_backoff_s,
            self.backoff_base_s * self.backoff_factor ** max(0, attempt - 1),
        )
        if self.jitter == 0.0:
            return base
        token = f"{self.jitter_seed}|{task_key}|{attempt}".encode("utf-8")
        unit = zlib.crc32(token) / 0xFFFFFFFF  # deterministic in [0, 1]
        return base * (1.0 - self.jitter + 2.0 * self.jitter * unit)


@dataclass(frozen=True)
class ResilienceConfig:
    """Fault-tolerance settings one backend (and the pipeline) runs under."""

    retry: RetryPolicy = field(default_factory=RetryPolicy.none)
    #: Max seconds the gather loop waits on one task before declaring the
    #: worker hung (process backend: kill + respawn + replay; thread
    #: backend: fail the map — threads cannot be killed). ``None`` waits
    #: forever, the seed behavior.
    task_timeout_s: float | None = None
    #: Max seconds a whole phase may run (measured from ``begin_phase``).
    phase_timeout_s: float | None = None
    #: ``"raise"`` (default) or ``"quarantine"`` — what happens to a task
    #: that exhausts its retries.
    on_poison: str = "raise"
    #: Worker-pool deaths tolerated *per phase* before the circuit breaker
    #: gives up with the diagnostic ``BrokenProcessPool``.
    max_pool_restarts: int = 2

    def __post_init__(self) -> None:
        if self.on_poison not in POISON_MODES:
            raise ConfigurationError(
                f"on_poison must be one of {POISON_MODES}, got {self.on_poison!r}"
            )
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ConfigurationError("task_timeout_s must be positive")
        if self.phase_timeout_s is not None and self.phase_timeout_s <= 0:
            raise ConfigurationError("phase_timeout_s must be positive")
        if self.max_pool_restarts < 0:
            raise ConfigurationError("max_pool_restarts must be >= 0")

    @property
    def quarantining(self) -> bool:
        return self.on_poison == "quarantine"


# -- quarantine accounting ---------------------------------------------------------


@dataclass(frozen=True)
class QuarantinedItem:
    """One map item (or isolated slice of one) that exhausted its retries.

    ``item_index`` is the item's position in the ``map``/``map_stream``
    input; for sequence items that were bisected internally,
    ``sub_start``/``n_units`` locate the poisoned slice inside the item
    (units are the item's own elements — documents, for the chunked text
    kernels). Operators translate these coordinates into document ids.
    """

    phase: str
    task_key: str
    item_index: int
    sub_start: int
    n_units: int
    attempts: int
    error: str
    error_type: str

    def as_dict(self) -> dict:
        return {
            "phase": self.phase,
            "task_key": self.task_key,
            "item_index": self.item_index,
            "sub_start": self.sub_start,
            "n_units": self.n_units,
            "attempts": self.attempts,
            "error": self.error,
            "error_type": self.error_type,
        }


class QuarantineReport:
    """Every quarantined item of one run, in isolation order.

    Lives on the backend (``backend.quarantine``) so all phases of a run
    accumulate into one report; ``run_pipeline`` clears it at run start
    and attaches it to the result. ``doc_ids`` holds the document ids the
    operators resolved from the raw item coordinates.
    """

    def __init__(self) -> None:
        self.items: list[QuarantinedItem] = []
        self.doc_ids: list[int] = []

    def __len__(self) -> int:
        return len(self.items)

    def __bool__(self) -> bool:
        return bool(self.items)

    def clear(self) -> None:
        self.items = []
        self.doc_ids = []

    def add(self, item: QuarantinedItem) -> None:
        self.items.append(item)

    def note_docs(self, doc_ids) -> None:
        """Record resolved document ids (operator-side translation)."""
        self.doc_ids.extend(int(doc) for doc in doc_ids)

    def phase_items(self, phase: str) -> list[QuarantinedItem]:
        return [item for item in self.items if item.phase == phase]

    def as_dict(self) -> dict:
        return {
            "n_items": len(self.items),
            "doc_ids": list(self.doc_ids),
            "items": [item.as_dict() for item in self.items],
        }


@dataclass(frozen=True)
class DowngradeEvent:
    """One graceful backend downgrade performed by the pipeline."""

    phase: str
    from_backend: str
    to_backend: str
    reason: str

    def as_dict(self) -> dict:
        return {
            "phase": self.phase,
            "from_backend": self.from_backend,
            "to_backend": self.to_backend,
            "reason": self.reason,
        }


# -- shared mechanisms -------------------------------------------------------------


def run_attempts(
    policy: RetryPolicy,
    task_key: str,
    thunk,
    *,
    on_retry=None,
    sleep=time.sleep,
):
    """Run ``thunk(attempt)`` under ``policy``; returns its value.

    The in-process retry loop (thread chunks, sequential items, reader
    threads): a retryable failure with attempts left sleeps the policy's
    deterministic backoff and re-runs; anything else propagates with the
    attempt count attached as ``exc.attempts`` for the caller's poison
    handling. ``on_retry(attempt, exc, delay_s)`` observes each retry.
    """
    attempt = 1
    while True:
        try:
            return thunk(attempt)
        except Exception as exc:
            if not policy.is_retryable(exc) or policy.gives_up_after(attempt):
                exc.attempts = attempt  # type: ignore[attr-defined]
                raise
            delay = policy.backoff_s(task_key, attempt)
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            if delay > 0:
                sleep(delay)
            attempt += 1


def _splittable(item) -> bool:
    return isinstance(item, (list, tuple)) and len(item) > 1


def bisect_chunk(
    chunk: list,
    run_chunk,
    quarantine,
    *,
    item_index: int,
    sub_start: int = 0,
    bisect_items: bool = False,
    failed_exc: Exception | None = None,
) -> list:
    """Recursively isolate the poisoned element(s) of a failed chunk.

    ``chunk`` is the list of map items one task carried. ``run_chunk``
    executes a sub-chunk (applying the caller's own retry policy) and
    returns its per-item results; raising means the sub-chunk is still
    poisoned. Failures bisect: multi-item chunks split between items;
    with ``bisect_items`` single items that are themselves sequences (the
    chunked text kernels' doc lists) split *inside* the item, so a single
    poisoned document is isolated even when the backend was handed
    pre-chunked items. A failing leaf is handed to
    ``quarantine(item_index, sub_start, n_units, exc)`` and contributes
    no results; everything else's results are returned in input order.

    Callers that already watched ``chunk`` fail pass the exception as
    ``failed_exc`` to skip the redundant first execution.
    """
    exc: Exception
    if failed_exc is not None:
        exc = failed_exc
    else:
        try:
            return list(run_chunk(chunk))
        except Exception as caught:
            exc = caught
    if len(chunk) > 1:
        mid = len(chunk) // 2
        left = bisect_chunk(
            chunk[:mid], run_chunk, quarantine,
            item_index=item_index, sub_start=sub_start,
            bisect_items=bisect_items,
        )
        right = bisect_chunk(
            chunk[mid:], run_chunk, quarantine,
            item_index=item_index + mid, sub_start=sub_start,
            bisect_items=bisect_items,
        )
        return left + right
    if bisect_items and _splittable(chunk[0]):
        item = chunk[0]
        mid = len(item) // 2
        left = bisect_chunk(
            [item[:mid]], run_chunk, quarantine,
            item_index=item_index, sub_start=sub_start,
            bisect_items=bisect_items,
        )
        right = bisect_chunk(
            [item[mid:]], run_chunk, quarantine,
            item_index=item_index, sub_start=sub_start + mid,
            bisect_items=bisect_items,
        )
        return left + right
    if bisect_items and isinstance(chunk[0], (list, tuple)):
        n_units = len(chunk[0])
    else:
        n_units = 1
    quarantine(item_index, sub_start, n_units, exc)
    return []
