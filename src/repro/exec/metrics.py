"""Timelines, work/span analysis and speedup helpers.

A workflow run is a sequence of :class:`PhaseTiming` records; this module
aggregates them into the quantities the paper plots: total execution time,
stacked per-phase breakdowns (Figures 3 and 4) and self-relative speedup
curves (Figures 1 and 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.exec.machine import MachineSpec
from repro.exec.scheduler import PhaseTiming
from repro.exec.task import TaskCost

__all__ = ["Timeline", "WorkSpan", "work_span", "self_relative_speedups"]


@dataclass
class Timeline:
    """Ordered record of the phases of one simulated run."""

    phases: list[PhaseTiming] = field(default_factory=list)

    def add(self, timing: PhaseTiming) -> PhaseTiming:
        """Append a phase and return it (for chaining)."""
        self.phases.append(timing)
        return timing

    def extend(self, other: "Timeline") -> None:
        """Append all phases of another timeline."""
        self.phases.extend(other.phases)

    @property
    def total_s(self) -> float:
        """Total virtual execution time (phases run back-to-back)."""
        return sum(phase.elapsed_s for phase in self.phases)

    def breakdown(self) -> dict[str, float]:
        """Elapsed seconds per phase name, merging repeated names.

        K-means iterations, for instance, produce one phase record each;
        the stacked bars in the paper's figures show them as one segment.
        """
        merged: dict[str, float] = {}
        for phase in self.phases:
            merged[phase.name] = merged.get(phase.name, 0.0) + phase.elapsed_s
        return merged

    def phase_seconds(self, name: str) -> float:
        """Total elapsed seconds of all phases with the given name."""
        return sum(p.elapsed_s for p in self.phases if p.name == name)

    def totals(self) -> TaskCost:
        """Aggregate resource consumption across all phases."""
        return TaskCost.total([phase.totals for phase in self.phases])

    def bottlenecks(self) -> dict[str, str]:
        """Binding resource per phase name (last occurrence wins)."""
        return {phase.name: phase.bottleneck for phase in self.phases}


@dataclass(frozen=True)
class WorkSpan:
    """Work/span summary of a set of independent tasks."""

    #: Total core-seconds across all tasks (T_1).
    work_s: float
    #: Longest single task (T_inf for a flat loop).
    span_s: float

    @property
    def max_parallelism(self) -> float:
        """Upper bound on achievable speedup (work / span)."""
        if self.span_s == 0.0:
            return float("inf")
        return self.work_s / self.span_s


def work_span(costs: Sequence[TaskCost], machine: MachineSpec) -> WorkSpan:
    """Compute work and span of independent tasks on the given machine."""
    durations = [cost.duration_on(machine) for cost in costs]
    return WorkSpan(work_s=sum(durations), span_s=max(durations, default=0.0))


def self_relative_speedups(times_by_threads: dict[int, float]) -> dict[int, float]:
    """Convert a thread→time map into the paper's self-relative speedups.

    Speedup at T threads is ``time(1 thread) / time(T threads)``; the
    1-thread entry must be present.
    """
    if 1 not in times_by_threads:
        raise ValueError("self-relative speedup requires a 1-thread measurement")
    base = times_by_threads[1]
    return {
        threads: (base / elapsed if elapsed > 0 else float("inf"))
        for threads, elapsed in sorted(times_by_threads.items())
    }
