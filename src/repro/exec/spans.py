"""Per-task span tracing for the real execution path.

The simulator has always been able to *show* its schedules — every
``PhaseTiming`` carries per-core spans that ``render_phase_trace`` turns
into a Gantt chart. The real backends, until this module, reported only
coarse per-phase wall totals: a phase that stopped scaling was a black
box. This module gives real runs the same eyes:

* :class:`TaskSpan` — one record per executed task: ``(phase, task_id,
  worker, t_start, t_end, n_items, in_bytes, out_bytes, queue_s)``,
  timestamps in seconds relative to the run's epoch.
* :class:`SpanRecorder` — the per-backend capture buffer (``backend.spans``,
  a sibling of ``backend.ipc``). In-process backends record directly;
  :class:`~repro.exec.process.ProcessBackend` workers record locally —
  monotonic clocks re-based against the epoch shipped to every worker at
  ``configure()`` time — and piggy-back the span on the existing
  single-pickle task trampoline, so tracing adds **zero extra IPC round
  trips** (the span payload is counted separately by ``IpcStats`` so
  benchmark byte counters stay honest).
* :class:`RunTrace` — the aggregated trace attached to
  :class:`~repro.core.pipeline.RealRunResult`: per-phase worker
  utilization, queue wait, straggler ratio (p100/p50 task time) and
  serial-tail seconds, plus two export views — Chrome trace-event JSON
  (loadable in ``chrome://tracing`` / Perfetto) and an adapter to
  :class:`~repro.exec.scheduler.PhaseTiming` so
  :func:`~repro.exec.trace.render_phase_trace` draws real schedules with
  the same ASCII Gantt it draws simulated ones.

Tracing is off by default and has no effect on operator output: spans
observe task boundaries, never touch task data, and the traced process
trampoline serializes results with the very same ``pickle.dumps`` call
as the untraced one — output is bit-identical with tracing on or off.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass, field

from repro.exec.scheduler import PhaseTiming
from repro.exec.task import TaskCost

__all__ = [
    "TaskSpan",
    "SpanRecorder",
    "PhaseTraceStats",
    "RunTrace",
    "install_worker_epoch",
    "worker_now",
]


@dataclass(frozen=True)
class TaskSpan:
    """One executed task, on any backend.

    ``t_start``/``t_end`` are seconds since the run epoch (the parent's
    monotonic clock reading when tracing began). ``worker`` is a dense
    lane index assigned parent-side in order of first appearance — a
    process worker's pid and a reader thread's ident map to distinct
    lanes. ``queue_s`` is the time the task spent between submission and
    its first instruction (0 for inline execution).
    """

    phase: str
    task_id: int
    worker: int
    t_start: float
    t_end: float
    n_items: int = 0
    in_bytes: int = 0
    out_bytes: int = 0
    queue_s: float = 0.0
    #: 1-based execution attempt; > 1 marks a retry (or a replay after a
    #: worker-pool respawn), so recoveries are visible in the trace.
    attempt: int = 1

    @property
    def duration_s(self) -> float:
        return max(0.0, self.t_end - self.t_start)


# -- worker-side clock re-basing ---------------------------------------------------

#: Epoch installed into every pool worker at configure() time. Spans are
#: recorded as ``perf_counter() - _WORKER_EPOCH`` so worker timestamps
#: land on the parent's timeline (``perf_counter`` is system-wide
#: monotonic on Linux/macOS/Windows; the exchanged epoch makes the
#: re-basing explicit rather than an accident of the platform clock).
_WORKER_EPOCH = 0.0


def install_worker_epoch(epoch: float) -> None:
    """Re-base this process's span clock onto the parent's timeline."""
    global _WORKER_EPOCH
    _WORKER_EPOCH = epoch


def worker_now() -> float:
    """Seconds since the installed epoch (0.0 epoch = raw clock)."""
    return time.perf_counter() - _WORKER_EPOCH


class SpanRecorder:
    """Span capture buffer owned by one execution backend.

    Disabled by default — ``record()`` is a no-op until ``begin_run()``
    arms it, so untraced runs pay a single boolean check per task.
    Recording is thread-safe (reader threads and the gather loop append
    concurrently); worker *keys* — ``("proc", pid)`` or
    ``("thread", ident)`` tuples — are mapped to dense lane indices in
    order of first appearance.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[TaskSpan] = []
        self._lanes: dict[tuple, int] = {}
        self._phase = "misc"
        self._task_ids: dict[str, int] = {}
        self.enabled = False
        self.epoch = 0.0
        self.epoch_wall = 0.0

    # -- lifecycle ---------------------------------------------------------------

    def begin_run(self) -> float:
        """Arm the recorder for one run; returns the new epoch.

        The epoch is a *pair*: the monotonic reading every span offset
        is measured against, and the wall-clock reading taken at the
        same instant (``epoch_wall``). Span math stays monotonic-only —
        immune to NTP steps — while ``epoch_wall + offset`` anchors any
        span on the real-time axis, so traces and ledger records from
        different processes and different runs are comparable.
        """
        with self._lock:
            self._spans = []
            self._lanes = {}
            self._task_ids = {}
            self._phase = "misc"
            self.epoch_wall = time.time()
            self.epoch = time.perf_counter()
            self.enabled = True
        return self.epoch

    def end_run(self) -> None:
        """Disarm; captured spans stay readable until the next begin_run."""
        self.enabled = False

    def set_phase(self, name: str) -> None:
        self._phase = name

    @property
    def phase(self) -> str:
        return self._phase

    def now(self) -> float:
        """Seconds since this run's epoch, on the parent's clock."""
        return time.perf_counter() - self.epoch

    def next_task_id(self, phase: str | None = None) -> int:
        """Per-phase task counter (ids restart at 0 for every phase)."""
        phase = phase if phase is not None else self._phase
        with self._lock:
            task_id = self._task_ids.get(phase, 0)
            self._task_ids[phase] = task_id + 1
        return task_id

    # -- recording ---------------------------------------------------------------

    def _lane(self, worker_key: tuple) -> int:
        lane = self._lanes.get(worker_key)
        if lane is None:
            lane = self._lanes[worker_key] = len(self._lanes)
        return lane

    def record(
        self,
        t_start: float,
        t_end: float,
        *,
        worker_key: tuple | None = None,
        task_id: int | None = None,
        phase: str | None = None,
        n_items: int = 0,
        in_bytes: int = 0,
        out_bytes: int = 0,
        queue_s: float = 0.0,
        attempt: int = 1,
    ) -> None:
        """Append one span (no-op while disarmed).

        ``worker_key`` defaults to the calling thread — the right
        identity for in-process backends and reader threads.
        """
        if not self.enabled:
            return
        if worker_key is None:
            worker_key = ("thread", threading.get_ident())
        phase = phase if phase is not None else self._phase
        with self._lock:
            if task_id is None:
                task_id = self._task_ids.get(phase, 0)
                self._task_ids[phase] = task_id + 1
            self._spans.append(
                TaskSpan(
                    phase=phase,
                    task_id=task_id,
                    worker=self._lane(worker_key),
                    t_start=t_start,
                    t_end=t_end,
                    n_items=n_items,
                    in_bytes=in_bytes,
                    out_bytes=out_bytes,
                    queue_s=max(0.0, queue_s),
                    attempt=max(1, attempt),
                )
            )

    def record_worker_span(self, raw: tuple) -> None:
        """Ingest a span tuple a pool worker piggy-backed on its result.

        ``raw`` is ``(phase, task_id, pid, t_start, t_end, n_items,
        in_bytes, out_bytes, queue_s[, attempt])`` with times already on
        the parent's timeline (the worker re-based them against the
        exchanged epoch); the trailing attempt defaults to 1 for
        first-execution spans.
        """
        phase, task_id, pid, t_start, t_end, n_items, in_b, out_b, queue_s = raw[:9]
        attempt = raw[9] if len(raw) > 9 else 1
        self.record(
            t_start,
            t_end,
            worker_key=("proc", pid),
            task_id=task_id,
            phase=phase,
            n_items=n_items,
            in_bytes=in_b,
            out_bytes=out_b,
            queue_s=queue_s,
            attempt=attempt,
        )

    # -- reading -----------------------------------------------------------------

    @property
    def spans(self) -> list[TaskSpan]:
        with self._lock:
            return list(self._spans)

    @property
    def n_lanes(self) -> int:
        with self._lock:
            return len(self._lanes)


# -- aggregation -------------------------------------------------------------------


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile over pre-sorted values (ceil(f*n) - 1)."""
    if not sorted_values:
        return 0.0
    rank = math.ceil(fraction * len(sorted_values)) - 1
    return sorted_values[max(0, min(len(sorted_values) - 1, rank))]


@dataclass(frozen=True)
class PhaseTraceStats:
    """Derived accounting for one phase of a traced real run.

    ``window_s`` is the observed span window (first task start → last
    task end); ``wall_s`` is the wall-clock seconds the pipeline billed
    to the phase (for the ``read`` phase that is consumer-*blocked*
    time, so utilization and tails are computed against the window).
    """

    phase: str
    wall_s: float
    window_s: float
    n_tasks: int
    n_workers: int
    busy_s: float
    #: busy core-seconds / (workers × window): 1.0 = no worker ever idle.
    utilization: float
    #: Total seconds tasks sat between submission and first instruction.
    queue_wait_s: float
    #: Slowest task / median task duration (p100/p50); 1.0 = perfectly even.
    straggler_ratio: float
    #: Seconds at the end of the phase when only one worker was still busy.
    serial_tail_s: float

    def as_dict(self) -> dict:
        return {
            "wall_s": self.wall_s,
            "window_s": self.window_s,
            "n_tasks": self.n_tasks,
            "n_workers": self.n_workers,
            "busy_s": self.busy_s,
            "utilization": self.utilization,
            "queue_wait_s": self.queue_wait_s,
            "straggler_ratio": self.straggler_ratio,
            "serial_tail_s": self.serial_tail_s,
        }


def _phase_stats(
    phase: str, spans: list[TaskSpan], wall_s: float
) -> PhaseTraceStats:
    starts = [span.t_start for span in spans]
    ends = [span.t_end for span in spans]
    window = max(ends) - min(starts) if spans else 0.0
    busy = sum(span.duration_s for span in spans)
    lanes = {span.worker for span in spans}
    durations = sorted(span.duration_s for span in spans)
    p50 = _percentile(durations, 0.5)
    straggler = (durations[-1] / p50) if durations and p50 > 0 else 1.0
    # Serial tail: once every worker but the slowest has retired its last
    # task, the phase is effectively single-threaded until the end.
    last_end_per_lane = {}
    for span in spans:
        last_end_per_lane[span.worker] = max(
            last_end_per_lane.get(span.worker, 0.0), span.t_end
        )
    lane_ends = sorted(last_end_per_lane.values())
    serial_tail = lane_ends[-1] - lane_ends[-2] if len(lane_ends) > 1 else 0.0
    denominator = len(lanes) * window
    return PhaseTraceStats(
        phase=phase,
        wall_s=wall_s,
        window_s=window,
        n_tasks=len(spans),
        n_workers=len(lanes),
        busy_s=busy,
        utilization=(busy / denominator) if denominator > 0 else 0.0,
        queue_wait_s=sum(span.queue_s for span in spans),
        straggler_ratio=straggler,
        serial_tail_s=serial_tail,
    )


@dataclass
class RunTrace:
    """Every span of one traced real run, plus derived accounting."""

    spans: list[TaskSpan]
    #: Wall seconds the pipeline billed per phase (``phase_seconds``).
    phase_wall_s: dict[str, float] = field(default_factory=dict)
    backend_name: str = "sequential"
    workers: int = 1
    #: Wall-clock time (Unix epoch seconds) of the run's span epoch —
    #: ``epoch_wall_s + span.t_start`` puts any span on the real-time
    #: axis shared with the run ledger.
    epoch_wall_s: float = 0.0

    @classmethod
    def from_recorder(
        cls,
        recorder: SpanRecorder,
        phase_wall_s: dict[str, float] | None = None,
        backend_name: str = "sequential",
        workers: int = 1,
    ) -> "RunTrace":
        return cls(
            spans=recorder.spans,
            phase_wall_s=dict(phase_wall_s or {}),
            backend_name=backend_name,
            workers=workers,
            epoch_wall_s=recorder.epoch_wall,
        )

    @property
    def phases(self) -> list[str]:
        """Phase names in order of first span appearance."""
        seen: list[str] = []
        for span in self.spans:
            if span.phase not in seen:
                seen.append(span.phase)
        return seen

    def phase_spans(self, phase: str) -> list[TaskSpan]:
        return [span for span in self.spans if span.phase == phase]

    def phase_summary(self) -> dict[str, PhaseTraceStats]:
        """Per-phase utilization / queue-wait / straggler / tail stats."""
        return {
            phase: _phase_stats(
                phase, self.phase_spans(phase), self.phase_wall_s.get(phase, 0.0)
            )
            for phase in self.phases
        }

    def phase_totals(self) -> dict[str, dict]:
        """Per-phase sums of busy seconds, items, tasks and bytes.

        The calibration inputs: ``busy_s / n_items`` is the measured
        worker-side compute cost per item (unpolluted by queueing or the
        parent's gather loop), which
        :meth:`repro.plan.calibration.CalibrationStore.observe_run` feeds
        back into the cost constants.
        """
        totals: dict[str, dict] = {}
        for phase in self.phases:
            spans = self.phase_spans(phase)
            totals[phase] = {
                "busy_s": sum(span.duration_s for span in spans),
                "n_items": sum(span.n_items for span in spans),
                "in_bytes": sum(span.in_bytes for span in spans),
                "out_bytes": sum(span.out_bytes for span in spans),
                "n_tasks": len(spans),
            }
        return totals

    def top_stragglers(self, n: int = 3) -> list[TaskSpan]:
        """The ``n`` longest tasks of the run, slowest first."""
        return sorted(self.spans, key=lambda span: span.duration_s, reverse=True)[:n]

    def summary_dict(self) -> dict:
        """JSON-able per-phase summary (benchmark records embed this)."""
        return {
            phase: stats.as_dict() for phase, stats in self.phase_summary().items()
        }

    # -- Chrome trace-event export ------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """The run as Chrome trace-event JSON (trace-event format).

        One complete (``"ph": "X"``) event per task span, one ``tid``
        lane per worker; load the file in ``chrome://tracing`` or
        https://ui.perfetto.dev. Timestamps are microseconds since the
        run epoch, as the format requires; the epoch's wall-clock time
        rides along under ``otherData`` so separate traces can be lined
        up on one real-time axis.
        """
        events: list[dict] = [
            {
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "name": "process_name",
                "args": {"name": f"repro pipeline ({self.backend_name})"},
            }
        ]
        for lane in sorted({span.worker for span in self.spans}):
            events.append(
                {
                    "ph": "M",
                    "pid": 0,
                    "tid": lane,
                    "name": "thread_name",
                    "args": {"name": f"worker {lane}"},
                }
            )
        for span in self.spans:
            events.append(
                {
                    "ph": "X",
                    "pid": 0,
                    "tid": span.worker,
                    "name": f"{span.phase}#{span.task_id}",
                    "cat": span.phase,
                    "ts": round(span.t_start * 1e6, 3),
                    "dur": round(span.duration_s * 1e6, 3),
                    "args": {
                        "n_items": span.n_items,
                        "in_bytes": span.in_bytes,
                        "out_bytes": span.out_bytes,
                        "queue_ms": round(span.queue_s * 1e3, 3),
                        "attempt": span.attempt,
                    },
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"epoch_wall_s": self.epoch_wall_s},
        }

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=1)
            handle.write("\n")

    # -- PhaseTiming adapter (ASCII Gantt reuse) -----------------------------------

    def to_phase_timings(self) -> list[PhaseTiming]:
        """Adapt each phase to a :class:`PhaseTiming` for the ASCII Gantt.

        Span times are re-based to the phase's first task start, so each
        chart starts at its left edge; ``render_phase_trace`` then draws
        real schedules exactly as it draws simulated ones.
        """
        timings: list[PhaseTiming] = []
        for phase in self.phases:
            spans = self.phase_spans(phase)
            t0 = min(span.t_start for span in spans)
            window = max(span.t_end for span in spans) - t0
            placements = [
                (span.worker, span.t_start - t0, span.t_end - t0) for span in spans
            ]
            timings.append(
                PhaseTiming(
                    name=phase,
                    elapsed_s=window,
                    workers=len({span.worker for span in spans}),
                    n_tasks=len(spans),
                    totals=TaskCost(),
                    bounds={"schedule": window},
                    bottleneck="schedule",
                    busy_s=sum(span.duration_s for span in spans),
                    spans=placements,
                )
            )
        return timings
