"""Parallel-loop primitives over the virtual-time scheduler.

``parallel_map`` is the reproduction's ``cilk_for``: it executes the loop
body *for real* (in plain Python, on the host), while the costs the body
declares are scheduled onto the simulated machine. Chunking mirrors grain
size control in Cilkplus — the scheduler sees one task per chunk, so very
fine-grained loops do not drown in per-task bookkeeping and very coarse
chunks expose load imbalance, exactly as on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.errors import ConfigurationError
from repro.exec.scheduler import PhaseTiming, SimScheduler
from repro.exec.task import TaskCost

__all__ = ["ParallelResult", "parallel_map", "parallel_reduce", "auto_grain"]

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Target number of chunks per worker when the grain is chosen automatically;
#: enough to smooth imbalance without flooding the scheduler.
_CHUNKS_PER_WORKER = 8


@dataclass
class ParallelResult:
    """Results of a simulated parallel loop plus its timing."""

    values: list
    timing: PhaseTiming


def auto_grain(n_items: int, workers: int) -> int:
    """Chunk size giving ~8 chunks per worker (Cilk-style default grain)."""
    if n_items <= 0:
        return 1
    return max(1, n_items // (workers * _CHUNKS_PER_WORKER))


def parallel_map(
    scheduler: SimScheduler,
    items: Sequence[ItemT] | Iterable[ItemT],
    body: Callable[[ItemT, TaskCost], ResultT],
    *,
    workers: int | None = None,
    grain: int | None = None,
    name: str = "parallel_for",
) -> ParallelResult:
    """Run ``body`` over ``items`` and simulate the loop on the machine.

    Parameters
    ----------
    body:
        Called as ``body(item, cost)``; performs the real computation and
        accumulates the virtual resources it used into ``cost``. Its return
        values are collected in input order.
    workers:
        Simulated thread count; defaults to all machine cores.
    grain:
        Items per scheduled chunk; defaults to :func:`auto_grain`.
    """
    items = list(items)
    T = scheduler.machine.effective_workers(workers)
    if grain is None:
        grain = auto_grain(len(items), T)
    if grain < 1:
        raise ConfigurationError(f"grain must be >= 1, got {grain}")

    values: list[ResultT] = []
    chunk_costs: list[TaskCost] = []
    for start in range(0, len(items), grain):
        cost = TaskCost()
        for item in items[start : start + grain]:
            values.append(body(item, cost))
        chunk_costs.append(cost)

    timing = scheduler.simulate_phase(chunk_costs, workers=T, name=name)
    return ParallelResult(values=values, timing=timing)


def parallel_reduce(
    scheduler: SimScheduler,
    items: Sequence,
    combine: Callable[[Any, Any, TaskCost], Any],
    *,
    workers: int | None = None,
    name: str = "reduce",
) -> ParallelResult:
    """Tree-reduce ``items`` with a metered combine function.

    ``combine(left, right, cost)`` merges two partial results, charging
    its work into ``cost``. Each reduction level runs as one simulated
    phase (its merges are mutually independent), so the returned timing
    reflects the log-depth critical path — the schedule a parallel
    runtime's reduction would follow.

    Returns a :class:`ParallelResult` whose ``values`` holds the single
    reduced value (or ``[]`` for empty input) and whose ``timing`` is the
    *last* level's phase; intermediate level timings are summed into it.
    """
    items = list(items)
    T = scheduler.machine.effective_workers(workers)
    if not items:
        return ParallelResult(values=[], timing=scheduler.simulate_phase([], name=name))
    level = items
    merged_timing = None
    while len(level) > 1:
        next_level = []
        level_costs = []
        for at in range(0, len(level) - 1, 2):
            cost = TaskCost()
            next_level.append(combine(level[at], level[at + 1], cost))
            level_costs.append(cost)
        if len(level) % 2:
            next_level.append(level[-1])
        timing = scheduler.simulate_phase(level_costs, workers=T, name=name)
        if merged_timing is None:
            merged_timing = timing
        else:
            merged_timing = PhaseTiming(
                name=name,
                elapsed_s=merged_timing.elapsed_s + timing.elapsed_s,
                workers=T,
                n_tasks=merged_timing.n_tasks + timing.n_tasks,
                totals=merged_timing.totals + timing.totals,
                bounds=merged_timing.bounds,
                bottleneck=timing.bottleneck,
                busy_s=merged_timing.busy_s + timing.busy_s,
            )
        level = next_level
    if merged_timing is None:
        merged_timing = scheduler.simulate_phase([], name=name)
    return ParallelResult(values=[level[0]], timing=merged_timing)
