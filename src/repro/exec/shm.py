"""Shared-memory array plane + IPC accounting for the real backends.

The process backend's hidden tax is serialization across the in-node
boundary: phase-constant state (the prepared CSR matrix, the transform
vocabulary) is shipped to every worker, and per-iteration K-means
centroids used to be re-pickled into every block task. This module
extends the fused pipeline's "memory edges" across the process boundary
(paper §3.1/§3.3): arrays are *placed* once into named
``multiprocessing.shared_memory`` segments and workers *attach*
zero-copy, while per-iteration state is *broadcast* into a
double-buffered segment — one buffer write per iteration instead of one
pickled copy per task.

Three layers:

* **Descriptors** — small, picklable recipes a worker turns back into
  numpy arrays: :class:`ShmArraysDescriptor` (``resolve()``) and
  :class:`ShmBroadcastDescriptor` (``read(generation)``). Their
  in-process twins :class:`LocalArrays` / :class:`LocalBroadcast` hold
  plain references (sequential/thread backends share an address space,
  so "zero-copy" is trivially a no-op for them).
* **Parent-side handles** — :class:`ShmArrays` / :class:`ShmBroadcast`
  own a segment's lifecycle (create → write → unlink); the
  :class:`ShmPlane` tracks every handle a backend created so
  ``backend.close()`` can unlink them all even after a worker crash.
* **Accounting** — :class:`IpcStats` counts, per pipeline phase, the
  bytes actually pickled (tasks, results, configure) next to the bytes
  that crossed through shared segments instead. On a noisy or 1-CPU
  host the wall clock cannot show the win; the pickled-bytes counter
  does, unambiguously.

Segments are named ``repro_shm_<pid>_<n>`` so tests can scan for leaks.
"""

from __future__ import annotations

import atexit
import itertools
import os
import signal
import threading
import weakref
from dataclasses import dataclass, field, fields as dataclass_fields

import numpy as np

from repro.errors import ConfigurationError

try:  # POSIX/Windows shared memory; absent on some exotic platforms.
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platform without _posixshmem
    _shared_memory = None

__all__ = [
    "IpcStats",
    "PhaseIpc",
    "LocalArrays",
    "LocalBroadcast",
    "ShmArrays",
    "ShmArraysDescriptor",
    "ShmBroadcast",
    "ShmBroadcastDescriptor",
    "ShmPlane",
    "shm_available",
    "SEGMENT_PREFIX",
]

#: Prefix of every segment this module creates; the leak-check fixture in
#: the test suite scans ``/dev/shm`` for it.
SEGMENT_PREFIX = "repro_shm"

_SEQUENCE = itertools.count()

#: Field offsets inside a segment are rounded up to this, so any dtype's
#: alignment requirement is met by the view constructed over the buffer.
_ALIGN = 16

#: Per-slot broadcast header: one int64 generation stamp, padded.
_HEADER_BYTES = _ALIGN


def _segment_name() -> str:
    return f"{SEGMENT_PREFIX}_{os.getpid()}_{next(_SEQUENCE)}"


_AVAILABLE: bool | None = None


def shm_available() -> bool:
    """True when named shared memory actually works on this host.

    Probes once (create + unlink of a 1-byte segment) and caches: some
    platforms import ``multiprocessing.shared_memory`` fine but fail at
    ``shm_open`` time (no ``/dev/shm``, sandboxed runtimes).
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        if _shared_memory is None:
            _AVAILABLE = False
        else:
            try:
                probe = _shared_memory.SharedMemory(
                    create=True, size=1, name=_segment_name()
                )
                probe.unlink()
                probe.close()
                _AVAILABLE = True
            except Exception:
                _AVAILABLE = False
    return _AVAILABLE


# -- IPC accounting ---------------------------------------------------------------


@dataclass
class PhaseIpc:
    """IPC traffic of one pipeline phase (all byte counts are exact)."""

    #: Tasks submitted to a worker pool (chunks, not items).
    tasks: int = 0
    #: Bytes pickled into task payloads (function + chunk).
    task_pickle_bytes: int = 0
    #: Bytes pickled in task results on the way back.
    result_pickle_bytes: int = 0
    #: Bytes of span records piggy-backed on results when tracing is on
    #: (kept out of ``result_pickle_bytes`` so benchmark bytes stay honest).
    span_pickle_bytes: int = 0
    #: configure() calls that (re)shipped per-worker state.
    configures: int = 0
    #: Pickled size of the shipped initargs.
    configure_pickle_bytes: int = 0
    #: Shared-memory segments created.
    segments: int = 0
    #: Capacity of those segments.
    segment_bytes: int = 0
    #: broadcast() publications.
    broadcasts: int = 0
    #: Bytes written into broadcast buffers (not pickled).
    broadcast_buffer_bytes: int = 0
    #: Task re-executions (retry after a transient failure, or replay of
    #: an in-flight chunk after a pool death).
    retries: int = 0
    #: Bytes re-pickled into retried/replayed task payloads (kept out of
    #: ``task_pickle_bytes`` so first-attempt accounting stays honest).
    retry_pickle_bytes: int = 0
    #: Per-task deadlines that expired (each costs a pool restart).
    timeouts: int = 0
    #: Worker-pool respawns after a crash or hang.
    pool_restarts: int = 0
    #: Map items (or isolated slices of items) quarantined as poisoned.
    quarantined: int = 0
    #: Spill tiles written by the out-of-core data plane.
    tile_writes: int = 0
    #: Bytes written into spill tiles (header + payload, exact file size).
    tile_write_bytes: int = 0
    #: Tile mmap opens (a re-open after eviction counts again).
    tile_reads: int = 0
    #: Bytes mapped by those opens.
    tile_read_bytes: int = 0
    #: Tiles unmapped by the reader's LRU to stay under the memory budget.
    tile_evictions: int = 0

    def add(self, other: "PhaseIpc") -> None:
        for spec in dataclass_fields(self):
            setattr(
                self, spec.name, getattr(self, spec.name) + getattr(other, spec.name)
            )

    def as_dict(self) -> dict[str, int]:
        return {
            spec.name: getattr(self, spec.name) for spec in dataclass_fields(self)
        }


class IpcStats:
    """Per-phase IPC counters owned by one execution backend.

    Operators call :meth:`set_phase` when they start a backend run; every
    subsequent task/configure/segment/broadcast is charged to that phase.
    ``snapshot()`` returns a JSON-able dict that ``run_pipeline`` surfaces
    in :class:`~repro.core.pipeline.RealRunResult` and the wall-clock
    benchmark appends to ``BENCH_wallclock.json``.
    """

    def __init__(self) -> None:
        self._phases: dict[str, PhaseIpc] = {}
        self._phase = "misc"

    def reset(self) -> None:
        self._phases = {}
        self._phase = "misc"

    def set_phase(self, name: str) -> None:
        self._phase = name

    @property
    def phase(self) -> str:
        return self._phase

    def _current(self) -> PhaseIpc:
        bucket = self._phases.get(self._phase)
        if bucket is None:
            bucket = self._phases[self._phase] = PhaseIpc()
        return bucket

    # -- recording hooks (called by backends and segment handles) ---------------

    def record_task(self, pickle_bytes: int) -> None:
        bucket = self._current()
        bucket.tasks += 1
        bucket.task_pickle_bytes += pickle_bytes

    def record_result(self, pickle_bytes: int) -> None:
        self._current().result_pickle_bytes += pickle_bytes

    def record_span_payload(self, pickle_bytes: int) -> None:
        self._current().span_pickle_bytes += pickle_bytes

    def record_configure(self, pickle_bytes: int) -> None:
        bucket = self._current()
        bucket.configures += 1
        bucket.configure_pickle_bytes += pickle_bytes

    def record_segment(self, nbytes: int) -> None:
        bucket = self._current()
        bucket.segments += 1
        bucket.segment_bytes += nbytes

    def record_broadcast(self, buffer_bytes: int) -> None:
        bucket = self._current()
        bucket.broadcasts += 1
        bucket.broadcast_buffer_bytes += buffer_bytes

    def record_retry(self, pickle_bytes: int) -> None:
        bucket = self._current()
        bucket.retries += 1
        bucket.retry_pickle_bytes += pickle_bytes

    def record_timeout(self) -> None:
        self._current().timeouts += 1

    def record_pool_restart(self) -> None:
        self._current().pool_restarts += 1

    def record_quarantined(self, n_items: int = 1) -> None:
        self._current().quarantined += n_items

    def record_tile_write(self, nbytes: int) -> None:
        bucket = self._current()
        bucket.tile_writes += 1
        bucket.tile_write_bytes += nbytes

    def record_tile_read(self, nbytes: int) -> None:
        bucket = self._current()
        bucket.tile_reads += 1
        bucket.tile_read_bytes += nbytes

    def record_tile_eviction(self) -> None:
        self._current().tile_evictions += 1

    # -- reading ---------------------------------------------------------------

    def phase_stats(self, name: str) -> PhaseIpc:
        """Counters for one phase (zeros when the phase never ran)."""
        return self._phases.get(name, PhaseIpc())

    def total(self) -> PhaseIpc:
        combined = PhaseIpc()
        for bucket in self._phases.values():
            combined.add(bucket)
        return combined

    def snapshot(self) -> dict:
        return {
            "phases": {name: b.as_dict() for name, b in self._phases.items()},
            "total": self.total().as_dict(),
        }


# -- in-process (no-op) sharing ----------------------------------------------------


class LocalArrays:
    """Zero-copy array sharing inside one address space.

    The sequential and thread backends' implementation of the shared
    plane: the "descriptor" is the handle itself and ``resolve()`` hands
    back the very arrays that were placed. Nothing is copied, nothing is
    named, nothing can leak.
    """

    def __init__(self, tag: str, arrays: dict[str, np.ndarray]) -> None:
        self.tag = tag
        self._arrays: dict[str, np.ndarray] | None = dict(arrays)
        self.nbytes = int(sum(np.asarray(a).nbytes for a in arrays.values()))

    def descriptor(self) -> "LocalArrays":
        return self

    def resolve(self) -> dict[str, np.ndarray]:
        if self._arrays is None:
            raise ConfigurationError(f"shared arrays {self.tag!r} already closed")
        return self._arrays

    def close(self) -> None:
        self._arrays = None


class LocalBroadcast:
    """In-process broadcast channel: publish stores references.

    ``read(generation)`` verifies the caller asked for the generation
    that is actually current — the same staleness check the
    shared-memory channel performs through its slot header.
    """

    def __init__(self, tag: str, stats: IpcStats | None = None) -> None:
        self.tag = tag
        self._stats = stats
        self._generation = -1
        self._arrays: tuple[np.ndarray, ...] | None = None

    def descriptor(self) -> "LocalBroadcast":
        return self

    @property
    def generation(self) -> int:
        return self._generation

    def publish(self, arrays) -> int:
        self._arrays = tuple(arrays)
        self._generation += 1
        if self._stats is not None:
            # In-process: nothing is copied, the broadcast is free.
            self._stats.record_broadcast(0)
        return self._generation

    def read(self, generation: int) -> tuple[np.ndarray, ...]:
        if self._arrays is None:
            raise ConfigurationError(f"broadcast {self.tag!r} has never published")
        if generation != self._generation:
            raise ConfigurationError(
                f"broadcast {self.tag!r}: generation {generation} requested "
                f"but {self._generation} is current"
            )
        return self._arrays

    def close(self) -> None:
        self._arrays = None


# -- shared-memory segments --------------------------------------------------------


@dataclass(frozen=True)
class _Field:
    """Layout of one array inside a segment (offsets are slot-relative)."""

    key: str
    dtype: str
    shape: tuple[int, ...]
    offset: int


def _aligned(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) & ~(_ALIGN - 1)


def _layout(
    arrays: list[tuple[str, np.ndarray]], base: int = 0
) -> tuple[tuple[_Field, ...], int]:
    """Assign aligned offsets to each array; returns (fields, end offset)."""
    fields = []
    offset = base
    for key, array in arrays:
        array = np.asarray(array)
        fields.append(_Field(key, array.dtype.str, tuple(array.shape), offset))
        offset = _aligned(offset + array.nbytes)
    return tuple(fields), offset


def _view(buf, spec: _Field, base: int = 0) -> np.ndarray:
    return np.ndarray(spec.shape, dtype=spec.dtype, buffer=buf, offset=base + spec.offset)


#: Worker-side cache of attached segments, keyed by segment name. A
#: worker attaches each segment once per pool generation; the mapping
#: dies with the process, the *name* is unlinked by the parent.
_ATTACHED: dict[str, object] = {}


def _attach(name: str):
    segment = _ATTACHED.get(name)
    if segment is None:
        if _shared_memory is None:  # pragma: no cover - guarded by shm_available
            raise ConfigurationError("shared memory is unavailable on this platform")
        segment = _shared_memory.SharedMemory(name=name)
        _ATTACHED[name] = segment
    return segment


def _release_segment(shm) -> None:
    """Unlink + close, tolerating repeats and live exported views."""
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    try:
        shm.close()
    except BufferError:
        # A numpy view over the buffer is still alive somewhere; the
        # mapping is released when it is garbage collected. The *name*
        # is already unlinked, which is what leak checks observe.
        pass


@dataclass(frozen=True)
class ShmArraysDescriptor:
    """Picklable recipe for attaching to a placed-array segment."""

    segment: str
    fields: tuple[_Field, ...]
    nbytes: int

    def resolve(self) -> dict[str, np.ndarray]:
        """Attach (cached) and return zero-copy views, keyed like place()."""
        shm = _attach(self.segment)
        return {spec.key: _view(shm.buf, spec) for spec in self.fields}


class ShmArrays:
    """Parent-side owner of one segment holding named arrays.

    ``place`` semantics: the arrays are copied into the segment **once**
    at construction; every worker that resolves the descriptor reads the
    same physical pages. ``close()`` unlinks the name and is idempotent.
    """

    def __init__(
        self, tag: str, arrays: dict[str, np.ndarray], stats: IpcStats | None = None
    ) -> None:
        if _shared_memory is None:
            raise ConfigurationError("shared memory is unavailable on this platform")
        self.tag = tag
        items = [(key, np.ascontiguousarray(a)) for key, a in arrays.items()]
        fields, total = _layout(items)
        self._shm = _shared_memory.SharedMemory(
            create=True, size=max(1, total), name=_segment_name()
        )
        for (key, array), spec in zip(items, fields):
            _view(self._shm.buf, spec)[...] = array
        self._descriptor = ShmArraysDescriptor(self._shm.name, fields, total)
        if stats is not None:
            stats.record_segment(total)

    @property
    def nbytes(self) -> int:
        return self._descriptor.nbytes

    def descriptor(self) -> ShmArraysDescriptor:
        return self._descriptor

    def resolve(self) -> dict[str, np.ndarray]:
        """Parent-side views over the placed arrays."""
        if self._shm is None:
            raise ConfigurationError(f"shared arrays {self.tag!r} already closed")
        return {spec.key: _view(self._shm.buf, spec) for spec in self._descriptor.fields}

    def close(self) -> None:
        shm, self._shm = self._shm, None
        if shm is not None:
            _release_segment(shm)


@dataclass(frozen=True)
class ShmBroadcastDescriptor:
    """Picklable recipe for reading a double-buffered broadcast channel."""

    segment: str
    fields: tuple[_Field, ...]
    slot_bytes: int

    def read(self, generation: int) -> tuple[np.ndarray, ...]:
        """Views into generation's slot, after verifying its stamp."""
        shm = _attach(self.segment)
        base = (generation % 2) * self.slot_bytes
        stamp = int(np.ndarray((1,), dtype=np.int64, buffer=shm.buf, offset=base)[0])
        if stamp != generation:
            raise ConfigurationError(
                f"broadcast slot holds generation {stamp}, expected {generation}"
            )
        return tuple(_view(shm.buf, spec, base) for spec in self.fields)


class ShmBroadcast:
    """Double-buffered broadcast channel over one shared segment.

    ``publish(arrays)`` copies the iteration's arrays into slot
    ``generation % 2`` and stamps the slot header with the generation, so
    a task token carrying only the generation lets every worker find —
    and sanity-check — the right buffer. Two slots mean a publish never
    writes into the buffer a straggler from the previous, already-merged
    iteration might still be reading.
    """

    def __init__(
        self, tag: str, template, stats: IpcStats | None = None
    ) -> None:
        if _shared_memory is None:
            raise ConfigurationError("shared memory is unavailable on this platform")
        self.tag = tag
        self._stats = stats
        items = [(f"a{i}", np.asarray(a)) for i, a in enumerate(template)]
        fields, slot = _layout(items, base=_HEADER_BYTES)
        slot = _aligned(slot)
        self._payload_bytes = int(sum(a.nbytes for _, a in items))
        self._shm = _shared_memory.SharedMemory(
            create=True, size=max(1, 2 * slot), name=_segment_name()
        )
        self._descriptor = ShmBroadcastDescriptor(self._shm.name, fields, slot)
        self._generation = -1
        # Stamp both slots as "never published".
        for base in (0, slot):
            np.ndarray((1,), dtype=np.int64, buffer=self._shm.buf, offset=base)[0] = -1
        if stats is not None:
            stats.record_segment(2 * slot)

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def nbytes(self) -> int:
        return 2 * self._descriptor.slot_bytes

    def descriptor(self) -> ShmBroadcastDescriptor:
        return self._descriptor

    def publish(self, arrays) -> int:
        if self._shm is None:
            raise ConfigurationError(f"broadcast {self.tag!r} already closed")
        arrays = tuple(arrays)
        if len(arrays) != len(self._descriptor.fields):
            raise ConfigurationError(
                f"broadcast {self.tag!r} expects {len(self._descriptor.fields)} "
                f"arrays, got {len(arrays)}"
            )
        self._generation += 1
        base = (self._generation % 2) * self._descriptor.slot_bytes
        for array, spec in zip(arrays, self._descriptor.fields):
            array = np.asarray(array)
            if tuple(array.shape) != spec.shape or array.dtype.str != spec.dtype:
                raise ConfigurationError(
                    f"broadcast {self.tag!r} field {spec.key}: shape/dtype "
                    f"changed since the channel was opened"
                )
            _view(self._shm.buf, spec, base)[...] = array
        # Stamp last: a reader that raced the copy sees a stale stamp,
        # not a half-written payload passing for the new generation.
        np.ndarray((1,), dtype=np.int64, buffer=self._shm.buf, offset=base)[0] = (
            self._generation
        )
        if self._stats is not None:
            self._stats.record_broadcast(self._payload_bytes)
        return self._generation

    def read(self, generation: int) -> tuple[np.ndarray, ...]:
        if self._shm is None:
            raise ConfigurationError(f"broadcast {self.tag!r} already closed")
        base = (generation % 2) * self._descriptor.slot_bytes
        stamp = int(
            np.ndarray((1,), dtype=np.int64, buffer=self._shm.buf, offset=base)[0]
        )
        if stamp != generation:
            raise ConfigurationError(
                f"broadcast slot holds generation {stamp}, expected {generation}"
            )
        return tuple(
            _view(self._shm.buf, spec, base) for spec in self._descriptor.fields
        )

    def close(self) -> None:
        shm, self._shm = self._shm, None
        if shm is not None:
            _release_segment(shm)


#: Resources whose backing storage must be released if the owning process
#: dies by SIGTERM (or plain interpreter exit) before ``close()`` ran:
#: shm planes, and any other owner of kernel- or disk-backed state that
#: duck-types ``owner_pid``/``close()`` (the tile spill directories of
#: :class:`repro.tiles.store.TileStore` register here too). Weak so a
#: normally-closed, garbage-collected resource does not pin itself here.
_LIVE_PLANES: "weakref.WeakSet" = weakref.WeakSet()

_CLEANUP_INSTALLED = False


def _cleanup_live_planes() -> None:
    """Release every live resource owned by *this* process.

    The pid guard matters under ``fork``: worker processes inherit the
    registry (and the signal handler) copy-on-write, and must never
    unlink segments (or delete spill tiles) the parent is still serving.
    """
    for plane in list(_LIVE_PLANES):
        if plane.owner_pid == os.getpid():
            plane.close()


def register_cleanup_resource(resource) -> None:
    """Arm atexit/SIGTERM cleanup for any ``owner_pid``/``close()`` owner.

    Generalizes the shm plane hook to file-backed resources: a tile spill
    directory leaked by a SIGTERM'd run is the disk-sided twin of a leaked
    ``/dev/shm`` segment, so both ride the same registry and handler.
    """
    _install_plane_cleanup()
    _LIVE_PLANES.add(resource)


def unregister_cleanup_resource(resource) -> None:
    _LIVE_PLANES.discard(resource)


def _install_plane_cleanup() -> None:
    """Arm atexit + SIGTERM cleanup, once, on first plane creation.

    A run killed by SIGTERM mid-pipeline used to leak its ``/dev/shm``
    segments — ``close()`` only runs on orderly unwinding, and SIGTERM's
    default disposition skips Python entirely. The handler unlinks every
    live segment and then re-delivers the signal with the previous
    disposition restored, so exit status and any outer handler behave
    exactly as before. Installed lazily so merely importing this module
    never hijacks a host application's signal handling; skipped silently
    off the main thread, where CPython forbids ``signal.signal``.
    """
    global _CLEANUP_INSTALLED
    if _CLEANUP_INSTALLED:
        return
    _CLEANUP_INSTALLED = True
    atexit.register(_cleanup_live_planes)
    if threading.current_thread() is not threading.main_thread():
        return
    try:
        previous = signal.getsignal(signal.SIGTERM)

        def _on_sigterm(signum, frame):
            _cleanup_live_planes()
            if callable(previous):
                previous(signum, frame)
                return
            # Restore the prior (default/ignore) disposition and
            # re-deliver, so the process still dies "by SIGTERM".
            signal.signal(signum, previous if previous is not None else signal.SIG_DFL)
            os.kill(os.getpid(), signum)

        signal.signal(signal.SIGTERM, _on_sigterm)
    except (ValueError, OSError):  # pragma: no cover - restricted platforms
        pass


class ShmPlane:
    """Every segment one backend created, so close-time cleanup is total.

    Handles are also returned to the operators that placed them (for
    early, per-phase release); the plane's ``close()`` is the backstop
    that runs on ``backend.close()`` — including the ``BrokenProcessPool``
    path — and unlinking twice is safe. Creation also registers the plane
    for atexit/SIGTERM cleanup, so a run killed mid-flight cannot leak
    ``/dev/shm`` entries either.
    """

    def __init__(self, stats: IpcStats | None = None) -> None:
        self._stats = stats
        self._handles: list = []
        self.owner_pid = os.getpid()
        _install_plane_cleanup()
        _LIVE_PLANES.add(self)

    def place(self, tag: str, arrays: dict[str, np.ndarray]) -> ShmArrays:
        handle = ShmArrays(tag, arrays, stats=self._stats)
        self._handles.append(handle)
        return handle

    def open_broadcast(self, tag: str, template) -> ShmBroadcast:
        handle = ShmBroadcast(tag, template, stats=self._stats)
        self._handles.append(handle)
        return handle

    def close(self) -> None:
        handles, self._handles = self._handles, []
        for handle in handles:
            handle.close()
        _LIVE_PLANES.discard(self)
