"""Sparse K-means clustering operator.

The paper's numeric operator (§3.1): Lloyd's algorithm over the documents'
normalized TF/IDF vectors, K=8. The implementation follows the paper's two
stated optimizations —

* **sparse vectors** for the inherently sparse data: assignment costs
  O(nnz · K) per document, not O(|vocabulary| · K);
* **recycled data structures**: centroid and accumulator buffers are
  allocated once and reused every iteration, never reallocated.

Parallel structure per iteration (the source of Figure 1's curves):

1. *assignment* — parallel over documents in fixed-size chunks of
   :data:`KMEANS_GRAIN_DOCS` documents (the loop grain of the original
   implementation); each active worker accumulates into a private
   partial-centroid buffer (Cilk-reducer style, no locks). The fixed grain
   is what Figure 1 measures: Mix's 23 432 documents yield only ~3 chunks
   — a hard ~2.5-3x speedup ceiling — while NSF Abstracts' 101 483
   documents yield ~12 chunks and keep scaling to ~8x, matching the
   paper's observation that "as the number of documents grows, so does the
   parallel scalability";
2. *merge* — the worker-private partials are combined the way a Cilk
   reducer combines its views: a chain of (workers − 1) pairwise merges
   executed serially at the end of the parallel loop, each streaming the
   whole K×V buffer through memory. The chain *grows* with the worker
   count, which is why small data sets (Mix, whose assignment work is
   modest relative to K×V) stop scaling early while NSF Abstracts keeps
   climbing — exactly Figure 1;
3. *finalize* — divide by counts and refresh centroid norms, parallel over
   the K clusters only.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.core.cost_model import (
    DEFAULT_COSTS,
    UNIT_SCALE,
    CostConstants,
    WorkloadScale,
)
from repro.errors import OperatorError
from repro.exec.inline import ExecutionBackend
from repro.exec.machine import MachineSpec
from repro.exec.metrics import Timeline
from repro.exec.scheduler import SimScheduler
from repro.exec.task import TaskCost
from repro.ops import kernels
from repro.sparse.matrix import CsrMatrix

__all__ = ["KMeansResult", "KMeansOperator", "PHASE_KMEANS", "KMEANS_GRAIN_DOCS"]

PHASE_KMEANS = "kmeans"

#: Scheduling grain of the assignment loop, in full-scale documents.
KMEANS_GRAIN_DOCS = 8192


def _block_spans(n_blocks: int, workers: int) -> list[tuple[int, int]]:
    """Group block indices into ≤ ``8·workers`` contiguous spans.

    On the shm path each task covers a *span* of blocks, so the number of
    tasks per iteration — and with constant-size tokens, the pickled bytes
    per iteration — depends only on the worker count, never on how many
    blocks the document count produced. ~8 spans per worker keeps load
    balancing on par with one-task-per-block scheduling.
    """
    n_spans = min(n_blocks, 8 * workers)
    base, extra = divmod(n_blocks, n_spans)
    spans = []
    first = 0
    for at in range(n_spans):
        size = base + (1 if at < extra else 0)
        spans.append((first, first + size))
        first += size
    return spans


@dataclass
class KMeansResult:
    """Clustering produced by :class:`KMeansOperator`."""

    #: Cluster id per document.
    assignments: list[int]
    #: Final centroids, shape (K, V).
    centroids: np.ndarray
    #: Iterations actually executed.
    n_iters: int
    #: Sum of squared distances of documents to their centroid.
    inertia: float
    #: True when assignments stabilised before the iteration cap.
    converged: bool
    #: Virtual-time record (empty for functional runs).
    timeline: Timeline = field(default_factory=Timeline)
    #: Inertia after each iteration (length ``n_iters``).
    inertia_history: list[float] = field(default_factory=list)

    @property
    def n_clusters(self) -> int:
        return int(self.centroids.shape[0])

    def cluster_sizes(self) -> list[int]:
        """Documents per cluster."""
        sizes = [0] * self.n_clusters
        for assignment in self.assignments:
            sizes[assignment] += 1
        return sizes


class _Prepared:
    """Per-document numpy views precomputed once (recycled across iters)."""

    __slots__ = ("indices", "values", "sq_norms", "n_docs")

    def __init__(self, matrix: CsrMatrix) -> None:
        self.indices: list[np.ndarray] = []
        self.values: list[np.ndarray] = []
        self.sq_norms: list[float] = []
        for row in matrix.iter_rows():
            idx = np.asarray(row.indices, dtype=np.intp)
            val = np.asarray(row.values, dtype=np.float64)
            self.indices.append(idx)
            self.values.append(val)
            self.sq_norms.append(float(val @ val))
        self.n_docs = matrix.n_rows


class KMeansOperator:
    """Sparse Lloyd's K-means with simulated-parallel execution."""

    def __init__(
        self,
        n_clusters: int = 8,
        max_iters: int = 10,
        seed: int = 0,
        costs: CostConstants = DEFAULT_COSTS,
        scale: WorkloadScale = UNIT_SCALE,
        grain_docs: int = KMEANS_GRAIN_DOCS,
        init: str = "spread",
    ) -> None:
        if n_clusters < 1:
            raise OperatorError(f"n_clusters must be >= 1, got {n_clusters}")
        if max_iters < 1:
            raise OperatorError(f"max_iters must be >= 1, got {max_iters}")
        if grain_docs < 1:
            raise OperatorError(f"grain_docs must be >= 1, got {grain_docs}")
        if init not in ("spread", "kmeans++"):
            raise OperatorError(
                f"init must be 'spread' or 'kmeans++', got {init!r}"
            )
        self.n_clusters = n_clusters
        self.max_iters = max_iters
        self.seed = seed
        self.costs = costs
        self.scale = scale
        self.grain_docs = grain_docs
        self.init = init

    # -- pieces -------------------------------------------------------------------

    def _init_centroids(self, matrix: CsrMatrix, prepared: _Prepared) -> np.ndarray:
        """Deterministic seeding, either evenly spread or k-means++.

        ``spread`` mirrors the paper-era practice of seeding from K
        documents spread through the input; ``kmeans++`` picks each next
        seed with probability proportional to its squared distance from
        the chosen ones, which is far more robust on clumpy data.
        """
        K = self.n_clusters
        if matrix.n_rows < K:
            raise OperatorError(
                f"need at least {K} documents, got {matrix.n_rows}"
            )
        if self.init == "spread":
            seeds = []
            stride = matrix.n_rows // K
            offset = self.seed % max(1, stride)
            for k in range(K):
                seeds.append(min(matrix.n_rows - 1, offset + k * stride))
        else:
            seeds = self._kmeanspp_seeds(matrix, prepared)
        centroids = np.zeros((K, matrix.n_cols), dtype=np.float64)
        for k, doc in enumerate(seeds):
            centroids[k, prepared.indices[doc]] = prepared.values[doc]
        return centroids

    def _kmeanspp_seeds(self, matrix: CsrMatrix, prepared: _Prepared) -> list[int]:
        """Deterministic k-means++ seeding (Arthur & Vassilvitskii 2007)."""
        rng = random.Random(self.seed)
        n_docs = matrix.n_rows
        seeds = [rng.randrange(n_docs)]
        # Squared distance of every document to its nearest chosen seed.
        nearest = np.full(n_docs, np.inf)
        for _ in range(1, self.n_clusters):
            last = seeds[-1]
            last_dense = np.zeros(matrix.n_cols)
            last_dense[prepared.indices[last]] = prepared.values[last]
            last_sq = prepared.sq_norms[last]
            for doc in range(n_docs):
                idx, val = prepared.indices[doc], prepared.values[doc]
                dot = float(last_dense[idx] @ val) if len(idx) else 0.0
                dist = max(0.0, prepared.sq_norms[doc] - 2.0 * dot + last_sq)
                if dist < nearest[doc]:
                    nearest[doc] = dist
            total = float(nearest.sum())
            if total <= 0.0:
                seeds.append(rng.randrange(n_docs))
                continue
            target = rng.random() * total
            cumulative = 0.0
            chosen = n_docs - 1
            for doc in range(n_docs):
                cumulative += float(nearest[doc])
                if cumulative >= target:
                    chosen = doc
                    break
            seeds.append(chosen)
        return seeds

    def _assign_block(
        self,
        prepared: _Prepared,
        doc_ids: range | list[int],
        centroids: np.ndarray,
        centroid_sq_norms: np.ndarray,
        partial: np.ndarray,
        counts: np.ndarray,
        assignments: list[int],
        cost: TaskCost,
    ) -> float:
        """Assign a block of documents; accumulate into worker partials.

        Returns the block's contribution to inertia and meters the block's
        virtual cost: ``nnz·K`` gather-FMA pairs plus the accumulate.
        """
        K = self.n_clusters
        inertia = 0.0
        nnz_total = 0
        for doc in doc_ids:
            idx = prepared.indices[doc]
            val = prepared.values[doc]
            nnz_total += len(idx)
            if len(idx):
                dots = centroids[:, idx] @ val
            else:
                dots = np.zeros(K)
            distances = prepared.sq_norms[doc] - 2.0 * dots + centroid_sq_norms
            best = int(np.argmin(distances))
            assignments[doc] = best
            inertia += float(max(0.0, distances[best]))
            partial[best, idx] += val
            counts[best] += 1
        cost.cpu_s += nnz_total * K * self.costs.kmeans_flop_ns * 1e-9
        cost.mem_bytes += nnz_total * K * self.costs.kmeans_flop_bytes
        cost.cpu_s += nnz_total * self.costs.centroid_accumulate_ns * 1e-9
        cost.mem_bytes += nnz_total * 16
        return inertia

    # -- simulated execution --------------------------------------------------------

    def run_simulated(
        self,
        scheduler: SimScheduler,
        matrix: CsrMatrix,
        workers: int | None = None,
        phase_name: str = PHASE_KMEANS,
    ) -> KMeansResult:
        """Cluster ``matrix`` rows, accounting virtual time per iteration."""
        machine: MachineSpec = scheduler.machine
        T = machine.effective_workers(workers)
        K = self.n_clusters
        V = matrix.n_cols
        timeline = Timeline()

        prepared = _Prepared(matrix)
        centroids = self._init_centroids(matrix, prepared)
        centroid_sq_norms = np.einsum("ij,ij->i", centroids, centroids)
        if self.init == "kmeans++":
            # Seeding makes K serial passes over all documents.
            total_nnz = sum(len(idx) for idx in prepared.indices)
            timeline.add(
                scheduler.serial_phase(
                    TaskCost(
                        cpu_s=K * total_nnz * self.costs.kmeans_flop_ns * 1e-9,
                        mem_bytes=K * total_nnz * self.costs.kmeans_flop_bytes,
                    ).scaled(self.scale.doc_factor),
                    name=phase_name,
                )
            )

        # Chunk the document loop at the operator's fixed grain. The grain
        # is defined in full-scale documents, so a scaled-down corpus is
        # chunked proportionally (same chunk count as the full corpus).
        actual_grain = max(1, round(self.grain_docs / self.scale.doc_factor))
        blocks = [
            list(range(start, min(start + actual_grain, prepared.n_docs)))
            for start in range(0, prepared.n_docs, actual_grain)
        ]
        n_views = min(T, len(blocks))

        # Recycled buffers: one partial per active reducer view.
        partials = [np.zeros((K, V), dtype=np.float64) for _ in range(n_views)]
        counts = [np.zeros(K, dtype=np.int64) for _ in range(n_views)]
        assignments = [-1] * prepared.n_docs
        previous = list(assignments)

        inertia = 0.0
        converged = False
        n_iters = 0
        inertia_history: list[float] = []
        for _ in range(self.max_iters):
            n_iters += 1
            for partial, count in zip(partials, counts):
                partial.fill(0.0)
                count.fill(0)

            # 1. Parallel assignment: one scheduled task per chunk,
            # accumulating into the owning view's partial buffer.
            assign_costs = [TaskCost() for _ in range(len(blocks))]
            inertia = 0.0
            for chunk_id, block in enumerate(blocks):
                inertia += self._assign_block(
                    prepared,
                    block,
                    centroids,
                    centroid_sq_norms,
                    partials[chunk_id % n_views],
                    counts[chunk_id % n_views],
                    assignments,
                    assign_costs[chunk_id],
                )
            inertia_history.append(inertia)
            timeline.add(
                scheduler.simulate_phase(
                    [c.scaled(self.scale.doc_factor) for c in assign_costs],
                    workers=T,
                    name=phase_name,
                )
            )

            # 2. Reducer combine: a serial chain of (views - 1) pairwise
            # merges, as a Cilk reducer performs at the sync point. The
            # chain grows with the number of active views — K-means'
            # Amdahl term.
            for view in range(1, n_views):
                partials[0] += partials[view]
                counts[0] += counts[view]
            if n_views > 1:
                merge_chain = TaskCost(
                    cpu_s=(n_views - 1) * K * V * self.costs.centroid_merge_ns * 1e-9,
                    mem_bytes=(n_views - 1) * K * V * self.costs.centroid_merge_bytes,
                ).scaled(self.scale.vocab_factor)
                timeline.add(scheduler.serial_phase(merge_chain, name=phase_name))

            # 3. Finalize centroids (parallel over the K clusters only).
            merged, merged_counts = partials[0], counts[0]
            finalize_costs = []
            for k in range(K):
                if merged_counts[k] > 0:
                    centroids[k] = merged[k] / merged_counts[k]
                # Empty cluster: previous centroid is kept (recycled buffer).
                finalize_costs.append(
                    TaskCost(
                        cpu_s=V * self.costs.centroid_finalize_ns * 1e-9,
                        mem_bytes=V * 16,
                    )
                )
            centroid_sq_norms = np.einsum("ij,ij->i", centroids, centroids)
            timeline.add(
                scheduler.simulate_phase(
                    [c.scaled(self.scale.vocab_factor) for c in finalize_costs],
                    workers=min(T, K),
                    name=phase_name,
                )
            )

            if assignments == previous:
                converged = True
                break
            previous = list(assignments)

        return KMeansResult(
            assignments=assignments,
            centroids=centroids,
            n_iters=n_iters,
            inertia=inertia,
            converged=converged,
            timeline=timeline,
            inertia_history=inertia_history,
        )

    # -- functional execution ---------------------------------------------------------

    def fit(
        self, matrix: CsrMatrix, backend: ExecutionBackend | None = None
    ) -> KMeansResult:
        """Cluster without caring about timings (single simulated core).

        With a ``backend``, Lloyd's iterations run for real on it (wall
        clock, no virtual-time accounting): the assignment loop is split
        into fixed blocks whose partial centroid accumulators are merged
        in block order, so assignments and centroids are bit-identical
        across backends and worker counts.

        A :class:`~repro.tiles.matrix.TiledCsrMatrix` dispatches to the
        streaming path automatically — the matrix form, not the plan,
        decides how the data is read.
        """
        from repro.tiles.matrix import TiledCsrMatrix

        if isinstance(matrix, TiledCsrMatrix):
            return self._fit_tiled(matrix, backend)
        if backend is not None:
            return self._fit_backend(matrix, backend)
        scheduler = SimScheduler(MachineSpec(cores=1, name="functional"))
        return self.run_simulated(scheduler, matrix, workers=1)

    def _fit_backend(
        self, matrix: CsrMatrix, backend: ExecutionBackend
    ) -> KMeansResult:
        backend.begin_phase(PHASE_KMEANS)
        prepared = _Prepared(matrix)
        centroids = self._init_centroids(matrix, prepared)
        centroid_sq_norms = np.einsum("ij,ij->i", centroids, centroids)

        # Block bounds depend only on the document count (not on the
        # backend's worker count): floating-point accumulation order is
        # fixed, which is what makes the output backend-invariant. At
        # most 64 blocks keeps the per-task centroid shipping bounded.
        n_docs = prepared.n_docs
        grain = max(32, -(-n_docs // 64))
        bounds = [
            (start, min(start + grain, n_docs))
            for start in range(0, n_docs, grain)
        ]

        if backend.uses_shm:
            return self._fit_shm(
                matrix, backend, prepared, centroids, centroid_sq_norms, bounds
            )

        backend.configure(
            kernels.init_kmeans_worker,
            (prepared.indices, prepared.values, prepared.sq_norms),
        )

        def run_iteration(centroids, centroid_sq_norms):
            # The dense K×V centroid array rides inside every block task —
            # the per-iteration IPC the shm path eliminates.
            tasks = [
                (start, stop, centroids, centroid_sq_norms)
                for start, stop in bounds
            ]
            return backend.map(kernels.assign_chunk, tasks, grain=1)

        return self._lloyd(bounds, centroids, centroid_sq_norms, run_iteration)

    def _fit_tiled(
        self, matrix, backend: ExecutionBackend | None
    ) -> KMeansResult:
        """Lloyd's streaming spilled tiles: peak memory O(tile + centroids).

        Nothing about the arithmetic changes — the block bounds formula,
        the per-block assignment kernel, and the fixed block-order merge
        are exactly the in-memory path's; only the block *fetch* differs
        (mapped tile views instead of a resident ``_Prepared``, with the
        squared norms read from the tiles where they were precomputed at
        write time). Workers receive the picklable tile manifest instead
        of matrix bytes, so there is no per-fit matrix IPC at all, and
        the shm plane is unnecessary — the tile files *are* the shared
        plane, whatever the backend.
        """
        if backend is None:
            return self._fit_tiled_inline(matrix)

        centroids = self._init_centroids_tiled(matrix)
        centroid_sq_norms = np.einsum("ij,ij->i", centroids, centroids)

        # Same bounds as _fit_backend: they depend only on the document
        # count, which is what keeps tiled output bit-identical.
        n_docs = matrix.n_rows
        grain = max(32, -(-n_docs // 64))
        bounds = [
            (start, min(start + grain, n_docs))
            for start in range(0, n_docs, grain)
        ]

        backend.begin_phase(PHASE_KMEANS)
        backend.configure(
            kernels.init_kmeans_worker_tiled,
            (matrix.manifest, matrix.memory_budget),
        )

        def run_iteration(centroids, centroid_sq_norms):
            tasks = [
                (start, stop, centroids, centroid_sq_norms)
                for start, stop in bounds
            ]
            return backend.map(kernels.assign_chunk_tiled, tasks, grain=1)

        return self._lloyd(bounds, centroids, centroid_sq_norms, run_iteration)

    def _fit_tiled_inline(self, matrix) -> KMeansResult:
        """Streaming Lloyd's replicating the inline untiled arithmetic.

        The inline (no-backend) untiled fit runs through the simulated
        scheduler at one core: one reducer view, so a *single* partial
        buffer accumulated document-by-document across blocks of
        ``grain_docs`` documents, with inertia summed per block. This
        loop replicates that accumulation order exactly — a running
        buffer/scalar is invariant to how the documents are fetched — so
        streaming small tile chunks still produces output bit-identical
        to the in-memory inline path.
        """
        K = self.n_clusters
        n_docs = matrix.n_rows
        centroids = self._init_centroids_tiled(matrix)
        centroid_sq_norms = np.einsum("ij,ij->i", centroids, centroids)
        actual_grain = max(1, round(self.grain_docs / self.scale.doc_factor))
        blocks = [
            (start, min(start + actual_grain, n_docs))
            for start in range(0, n_docs, actual_grain)
        ]
        stream = 1024

        partial = np.zeros_like(centroids)
        counts = np.zeros(K, dtype=np.int64)
        assignments = [-1] * n_docs
        previous = list(assignments)
        inertia = 0.0
        converged = False
        n_iters = 0
        inertia_history: list[float] = []
        for _ in range(self.max_iters):
            n_iters += 1
            partial.fill(0.0)
            counts.fill(0)
            inertia = 0.0
            for block_start, block_stop in blocks:
                block_inertia = 0.0
                for start in range(block_start, block_stop, stream):
                    stop = min(block_stop, start + stream)
                    doc_idx, doc_val, sq_norms = matrix.block_arrays(start, stop)
                    for local in range(stop - start):
                        idx = doc_idx[local]
                        val = doc_val[local]
                        if len(idx):
                            dots = centroids[:, idx] @ val
                        else:
                            dots = np.zeros(K)
                        distances = (
                            sq_norms[local] - 2.0 * dots + centroid_sq_norms
                        )
                        best = int(np.argmin(distances))
                        assignments[start + local] = best
                        block_inertia += float(max(0.0, distances[best]))
                        partial[best, idx] += val
                        counts[best] += 1
                inertia += block_inertia
            inertia_history.append(inertia)

            for k in range(K):
                if counts[k] > 0:
                    centroids[k] = partial[k] / counts[k]
                # Empty cluster: previous centroid is kept (recycled buffer).
            centroid_sq_norms = np.einsum("ij,ij->i", centroids, centroids)

            if assignments == previous:
                converged = True
                break
            previous = list(assignments)

        return KMeansResult(
            assignments=assignments,
            centroids=centroids,
            n_iters=n_iters,
            inertia=inertia,
            converged=converged,
            inertia_history=inertia_history,
        )

    def _init_centroids_tiled(self, matrix) -> np.ndarray:
        """:meth:`_init_centroids` reading seed rows from tiles.

        ``spread`` needs exactly K rows; ``kmeans++`` streams its K
        distance passes block-at-a-time. Seed selection and centroid
        values replicate the in-memory arithmetic double-for-double.
        """
        K = self.n_clusters
        if matrix.n_rows < K:
            raise OperatorError(
                f"need at least {K} documents, got {matrix.n_rows}"
            )
        if self.init == "spread":
            seeds = []
            stride = matrix.n_rows // K
            offset = self.seed % max(1, stride)
            for k in range(K):
                seeds.append(min(matrix.n_rows - 1, offset + k * stride))
        else:
            seeds = self._kmeanspp_seeds_tiled(matrix)
        centroids = np.zeros((K, matrix.n_cols), dtype=np.float64)
        for k, doc in enumerate(seeds):
            row = matrix.row(doc)
            centroids[k, np.asarray(row.indices, dtype=np.intp)] = row.values
        return centroids

    def _kmeanspp_seeds_tiled(self, matrix) -> list[int]:
        """:meth:`_kmeanspp_seeds` with block-streamed distance passes."""
        rng = random.Random(self.seed)
        n_docs = matrix.n_rows
        seeds = [rng.randrange(n_docs)]
        nearest = np.full(n_docs, np.inf)
        block = 1024
        for _ in range(1, self.n_clusters):
            last = seeds[-1]
            row = matrix.row(last)
            last_dense = np.zeros(matrix.n_cols)
            last_dense[np.asarray(row.indices, dtype=np.intp)] = row.values
            last_sq = matrix.sq_norm(last)
            for start in range(0, n_docs, block):
                stop = min(n_docs, start + block)
                doc_idx, doc_val, sq_norms = matrix.block_arrays(start, stop)
                for local in range(stop - start):
                    idx, val = doc_idx[local], doc_val[local]
                    dot = float(last_dense[idx] @ val) if len(idx) else 0.0
                    dist = max(0.0, sq_norms[local] - 2.0 * dot + last_sq)
                    doc = start + local
                    if dist < nearest[doc]:
                        nearest[doc] = dist
            total = float(nearest.sum())
            if total <= 0.0:
                seeds.append(rng.randrange(n_docs))
                continue
            target = rng.random() * total
            cumulative = 0.0
            chosen = n_docs - 1
            for doc in range(n_docs):
                cumulative += float(nearest[doc])
                if cumulative >= target:
                    chosen = doc
                    break
            seeds.append(chosen)
        return seeds

    def _fit_shm(
        self,
        matrix: CsrMatrix,
        backend: ExecutionBackend,
        prepared: _Prepared,
        centroids: np.ndarray,
        centroid_sq_norms: np.ndarray,
        bounds: list[tuple[int, int]],
    ) -> KMeansResult:
        """Lloyd's on the shared-memory data plane.

        The prepared matrix is *placed* once (workers attach zero-copy in
        the initializer instead of receiving a pickled copy), and each
        iteration's centroids are *broadcast* once into a double-buffered
        segment — block tasks shrink to ``(first, last, generation)``
        tokens, so per-iteration pickled bytes are independent of both
        the block count and the K×V centroid size.
        """
        indptr, flat_indices, flat_values = matrix.as_arrays()
        shared = backend.share_arrays(
            "kmeans-matrix",
            {
                "indptr": indptr,
                "indices": flat_indices,
                "values": flat_values,
                "sq_norms": np.asarray(prepared.sq_norms, dtype=np.float64),
            },
        )
        channel = backend.open_broadcast(
            "kmeans-centroids", (centroids, centroid_sq_norms)
        )
        spans = _block_spans(len(bounds), backend.workers)
        try:
            backend.configure(
                kernels.init_kmeans_worker_shm,
                (shared.descriptor(), channel.descriptor(), tuple(bounds)),
            )

            def run_iteration(centroids, centroid_sq_norms):
                generation = backend.broadcast(
                    channel, (centroids, centroid_sq_norms)
                )
                tasks = [(first, last, generation) for first, last in spans]
                span_results = backend.map(
                    kernels.assign_block_span, tasks, grain=1
                )
                # Flatten spans back to per-block results: the merge below
                # must see the exact block sequence of the non-shm path.
                return [block for span in span_results for block in span]

            return self._lloyd(bounds, centroids, centroid_sq_norms, run_iteration)
        finally:
            # The segments outlive the pool generation (configure recycles
            # pools without touching them) but not the fit; the backend's
            # close() would also unlink them as a crash-path backstop.
            channel.close()
            shared.close()

    def _lloyd(
        self,
        bounds: list[tuple[int, int]],
        centroids: np.ndarray,
        centroid_sq_norms: np.ndarray,
        run_iteration,
    ) -> KMeansResult:
        """The iteration loop shared by the shm and pickled-task paths.

        ``run_iteration(centroids, centroid_sq_norms)`` returns one
        result per block, in block order; everything else — the fixed
        block-order merge, finalize, convergence — is identical, which
        is what makes the two paths bit-identical.
        """
        K = self.n_clusters
        n_docs = bounds[-1][1]
        assignments = [-1] * n_docs
        previous = list(assignments)
        inertia = 0.0
        converged = False
        n_iters = 0
        inertia_history: list[float] = []
        for _ in range(self.max_iters):
            n_iters += 1
            block_results = run_iteration(centroids, centroid_sq_norms)

            # Merge in fixed block order (deterministic float grouping).
            merged = np.zeros_like(centroids)
            merged_counts = np.zeros(K, dtype=np.int64)
            inertia = 0.0
            for (start, _), (block_assign, partial, counts, block_inertia) in zip(
                bounds, block_results
            ):
                assignments[start : start + len(block_assign)] = block_assign
                merged += partial
                merged_counts += counts
                inertia += block_inertia
            inertia_history.append(inertia)

            for k in range(K):
                if merged_counts[k] > 0:
                    centroids[k] = merged[k] / merged_counts[k]
                # Empty cluster: previous centroid is kept (recycled buffer).
            centroid_sq_norms = np.einsum("ij,ij->i", centroids, centroids)

            if assignments == previous:
                converged = True
                break
            previous = list(assignments)

        return KMeansResult(
            assignments=assignments,
            centroids=centroids,
            n_iters=n_iters,
            inertia=inertia,
            converged=converged,
            inertia_history=inertia_history,
        )
