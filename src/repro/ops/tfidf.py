"""TF/IDF operator: word count → transform → (optional) ARFF output.

Mirrors the paper's implementation (§3.2):

* **Phase 1 — input+wc** (parallel): per-document term frequencies and the
  global term → document-count dictionary (:mod:`repro.ops.wordcount`).
* **Phase 2a — transform** (parallel with a serial vocabulary/index
  prefix): per-document sparse TF/IDF vectors, sorted by term id and
  L2-normalized.
* **Phase 2b — tfidf-output** (serial): the sparse vectors written as an
  ARFF file. The format forces single-threaded output — the key fact
  behind Figure 3.

The dictionary implementation is pluggable *per phase*: the word-count
phase and the transform/output phases may use different kinds, which is
exactly the optimization opportunity §3.4 describes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.cost_model import (
    DEFAULT_COSTS,
    UNIT_SCALE,
    CostConstants,
    WorkloadScale,
)
from repro.dicts.api import Dictionary
from repro.dicts.cost import profile_for_kind
from repro.dicts.factory import make_dict
from repro.errors import ConfigurationError, OperatorError
from repro.exec.inline import ExecutionBackend
from repro.exec.metrics import Timeline
from repro.exec.parallel import auto_grain
from repro.exec.scheduler import SimScheduler
from repro.exec.task import TaskCost
from repro.ops import kernels
from repro.io.arff import arff_lines
from repro.io.corpus_io import corpus_paths
from repro.io.storage import Storage
from repro.ops.wordcount import FusedWordCount, WordCountResult, WordCountStep
from repro.sparse.matrix import CsrMatrix
from repro.sparse.vector import SparseVector
from repro.text.corpus import Corpus
from repro.text.tokenizer import Tokenizer

__all__ = [
    "TfIdfResult",
    "TfIdfOperator",
    "PHASE_TRANSFORM",
    "PHASE_TFIDF_OUTPUT",
]

PHASE_TRANSFORM = "transform"
PHASE_TFIDF_OUTPUT = "tfidf-output"


@dataclass
class TfIdfResult:
    """Output of the TF/IDF operator."""

    #: Normalized TF/IDF scores, one row per document (sorted term ids).
    matrix: CsrMatrix
    #: Term strings indexed by term id.
    vocabulary: list[str]
    #: Inverse document frequency per term id.
    idf: list[float]
    #: Phase-1 result (kept alive between phases in the fused workflow).
    wordcount: WordCountResult
    #: Virtual-time record of all executed phases.
    timeline: Timeline = field(default_factory=Timeline)

    @property
    def n_docs(self) -> int:
        return self.matrix.n_rows

    def resident_bytes(self) -> int:
        """Memory held while the operator's state is live (Figure 4)."""
        scale = self.wordcount.scale
        vocab_bytes = sum(len(t) + 8 for t in self.vocabulary) + 8 * len(self.idf)
        return int(
            self.wordcount.resident_bytes()
            + self.matrix.resident_bytes() * scale.doc_factor
            + vocab_bytes * scale.vocab_factor
        )


class TfIdfOperator:
    """Configurable TF/IDF operator.

    Parameters
    ----------
    wc_dict_kind / transform_dict_kind:
        Dictionary implementation per phase (``"map"``, ``"unordered_map"``
        or ``"dict"``). ``transform_dict_kind`` defaults to the word-count
        kind.
    reserve:
        Pre-size hint for hash dictionaries (paper: 4K).
    min_df:
        Drop terms that occur in fewer than this many documents. The
        default (1) keeps everything, as the paper's operator does;
        higher values prune hapax terms, which markedly improves
        clustering quality on small corpora.
    """

    def __init__(
        self,
        wc_dict_kind: str = "map",
        transform_dict_kind: str | None = None,
        reserve: int = 4096,
        tokenizer: Tokenizer | None = None,
        costs: CostConstants = DEFAULT_COSTS,
        scale: WorkloadScale = UNIT_SCALE,
        min_df: int = 1,
        parallel_transform: bool = True,
    ) -> None:
        if min_df < 1:
            raise OperatorError(f"min_df must be >= 1, got {min_df}")
        self.wc_dict_kind = wc_dict_kind
        self.transform_dict_kind = transform_dict_kind or wc_dict_kind
        self.reserve = reserve
        self.tokenizer = tokenizer or Tokenizer()
        self.costs = costs
        self.scale = scale
        self.min_df = min_df
        #: §3.2's standalone operator leaves phase 2 serial; the fused
        #: workflow parallelises it (Figure 4 plots its scaling).
        self.parallel_transform = parallel_transform
        self.wordcount = WordCountStep(
            dict_kind=wc_dict_kind,
            reserve=reserve,
            tokenizer=self.tokenizer,
            costs=costs,
            scale=scale,
        )
        self._transform_profile = profile_for_kind(
            make_dict(self.transform_dict_kind, reserve).kind
        )

    # -- vocabulary / transform -------------------------------------------------------

    def build_vocabulary(
        self, wc: WordCountResult, cost: TaskCost
    ) -> tuple[list[str], list[float], Dictionary]:
        """Sorted vocabulary, idf table and a term → id dictionary.

        The serial prefix of the transform phase: iterating the df
        dictionary (sorted for free on the tree, explicitly sorted on the
        hash map) and building the term-id index.
        """
        df_profile = profile_for_kind(wc.df.kind)
        df_before = wc.df.stats.copy()
        entries = wc.df.items_sorted()
        df_delta = wc.df.stats.delta(df_before)
        cost.cpu_s += df_profile.cpu_seconds(df_delta)
        cost.mem_bytes += df_profile.memory_traffic(df_delta)
        if wc.df.kind != "map":
            # Hash iteration order is arbitrary: charge the explicit sort.
            n = max(1, len(entries))
            cost.cpu_s += (
                n * math.log2(n) * self.costs.vocab_sort_ns_per_cmp * 1e-9
            )

        if self.min_df > 1:
            entries = [entry for entry in entries if entry[1] >= self.min_df]

        n_docs = wc.n_docs
        vocabulary = [term for term, _ in entries]
        idf = [math.log(n_docs / count) if count else 0.0 for _, count in entries]
        cost.cpu_s += len(entries) * self.costs.tfidf_score_ns * 1e-9

        index = make_dict(self.transform_dict_kind, reserve=max(self.reserve, 1))
        for term_id, term in enumerate(vocabulary):
            index.put(term, term_id)
        cost.cpu_s += self._transform_profile.cpu_seconds(index.stats)
        cost.mem_bytes += self._transform_profile.memory_traffic(index.stats)
        return vocabulary, idf, index

    def transform_document(
        self,
        tf: Dictionary,
        index: Dictionary,
        idf: list[float],
        cost: TaskCost,
    ) -> SparseVector:
        """One document's normalized TF/IDF vector (the transform kernel)."""
        tf_profile = profile_for_kind(tf.kind)
        tf_before = tf.stats.copy()
        index_before = index.stats.copy()

        pairs: list[tuple[int, float]] = []
        for term, count in tf.items():
            term_id = index.get(term)
            if term_id is None:
                if self.min_df > 1:
                    continue  # pruned below the document-frequency cutoff
                raise OperatorError(f"term {term!r} missing from vocabulary index")
            pairs.append((term_id, count * idf[term_id]))
        pairs.sort()

        for profile, stats, before in (
            (tf_profile, tf.stats, tf_before),
            (self._transform_profile, index.stats, index_before),
        ):
            delta = stats.delta(before)
            cost.cpu_s += profile.cpu_seconds(delta)
            cost.mem_bytes += profile.memory_traffic(delta)
        nnz = len(pairs)
        cost.cpu_s += nnz * (
            self.costs.tfidf_score_ns + self.costs.sparse_build_ns_per_entry
        ) * 1e-9
        cost.mem_bytes += nnz * self.costs.sparse_build_bytes_per_entry

        vector = SparseVector(
            [term_id for term_id, _ in pairs], [score for _, score in pairs]
        )
        return vector.normalized()

    # -- simulated execution --------------------------------------------------------------

    def run_simulated(
        self,
        scheduler: SimScheduler,
        storage: Storage,
        input_prefix: str,
        workers: int | None = None,
        output_path: str | None = None,
    ) -> TfIdfResult:
        """Execute the full operator on the simulated machine.

        When ``output_path`` is given, the serial ARFF output phase runs
        (discrete workflow); otherwise the scores stay in memory (fused
        workflow, paper §3.3).
        """
        T = scheduler.machine.effective_workers(workers)
        timeline = Timeline()

        paths = corpus_paths(storage, input_prefix)
        if not paths:
            raise OperatorError(f"no input documents under {input_prefix!r}")
        wc, wc_timings = self.wordcount.run_simulated(
            scheduler, storage, paths, workers=T
        )
        for timing in wc_timings:
            timeline.add(timing)

        # Serial prefix of the transform: vocabulary, idf, term-id index.
        index_cost = TaskCost()
        vocabulary, idf, index = self.build_vocabulary(wc, index_cost)
        timeline.add(
            scheduler.serial_phase(
                index_cost.scaled(self.scale.vocab_factor), name=PHASE_TRANSFORM
            )
        )

        # Transform over documents: parallel round-robin shards, or one
        # serial task when the operator is configured per §3.2.
        transform_workers = T if self.parallel_transform else 1
        shard_costs = [TaskCost() for _ in range(transform_workers)]
        rows: list[SparseVector] = []
        for doc_index, tf in enumerate(wc.doc_tfs):
            rows.append(
                self.transform_document(
                    tf, index, idf, shard_costs[doc_index % transform_workers]
                )
            )
        timeline.add(
            scheduler.simulate_phase(
                [cost.scaled(self.scale.doc_factor) for cost in shard_costs],
                workers=transform_workers,
                name=PHASE_TRANSFORM,
            )
        )

        matrix = CsrMatrix.from_rows(rows, n_cols=len(vocabulary))
        result = TfIdfResult(
            matrix=matrix,
            vocabulary=vocabulary,
            idf=idf,
            wordcount=wc,
            timeline=timeline,
        )

        if output_path is not None:
            self.write_arff_simulated(scheduler, storage, result, output_path)
        return result

    def write_arff_simulated(
        self,
        scheduler: SimScheduler,
        storage: Storage,
        result: TfIdfResult,
        output_path: str,
        phase_name: str = PHASE_TFIDF_OUTPUT,
    ) -> None:
        """Serial ARFF output phase (the format forbids parallel writing)."""
        cost = TaskCost()
        chunks: list[str] = []
        for line in arff_lines(
            "tfidf", result.vocabulary, result.matrix.iter_rows(), sparse=True
        ):
            chunks.append(line)
        document = "\n".join(chunks) + "\n"
        cost.cpu_s += len(document) * self.costs.arff_serialize_ns_per_byte * 1e-9
        cost.mem_bytes += len(document) * self.costs.arff_bytes_per_byte
        cost.add(storage.write(output_path, document))
        result.timeline.add(
            scheduler.serial_phase(
                cost.scaled(self.scale.doc_factor), name=phase_name
            )
        )

    # -- functional execution ---------------------------------------------------------------

    def fit_transform(
        self, corpus: Corpus, backend: ExecutionBackend | None = None
    ) -> TfIdfResult:
        """Compute TF/IDF for an in-memory or streamed corpus (no simulation).

        ``corpus`` may be a materialized :class:`~repro.text.corpus.Corpus`
        or a lazy :class:`~repro.io.parallel_read.DocumentStream`; with a
        stream, phase 1 consumes documents as reads complete, overlapping
        input with tokenization (paper §3.2). The returned result has an
        empty timeline; use :meth:`run_simulated` for performance studies.
        With a ``backend`` both parallel phases (word count and transform)
        run on it; the output matrix is bit-identical to the inline path
        regardless of backend, worker count, or read-worker count.
        """
        wc = self.wordcount.run(corpus, backend=backend)
        return self.transform_wordcount(wc, backend=backend)

    @staticmethod
    def _share_vocabulary(backend: ExecutionBackend, vocabulary, idf):
        """Snapshot the vocabulary + idf into one shared segment.

        Strings packed as a UTF-8 blob with cumulative end offsets.
        Workers attach zero-copy instead of receiving the whole table
        pickled into their initargs (or, on the fused path, per task).
        """
        encoded = [term.encode("utf-8") for term in vocabulary]
        return backend.share_arrays(
            "transform",
            {
                "vocab_blob": np.frombuffer(
                    b"".join(encoded) or b"\0", dtype=np.uint8
                ),
                "vocab_ends": np.cumsum(
                    [len(raw) for raw in encoded], dtype=np.int64
                ),
                "idf": np.asarray(idf, dtype=np.float64),
            },
        )

    def transform_wordcount(
        self,
        wc: WordCountResult,
        backend: ExecutionBackend | None = None,
        grain: int | None = None,
    ) -> TfIdfResult:
        """Phase 2a over an existing word-count result (no simulation).

        The vocabulary/idf/index build stays serial (it is the phase's
        serial prefix in the paper too); the per-document transform runs
        on the backend in chunks, shipping the vocabulary to each worker
        once via the backend's initializer rather than per task.
        """
        scratch = TaskCost()
        vocabulary, idf, index = self.build_vocabulary(wc, scratch)
        if backend is None:
            rows = [
                self.transform_document(tf, index, idf, scratch)
                for tf in wc.doc_tfs
            ]
        else:
            backend.begin_phase(PHASE_TRANSFORM)
            shared = None
            if backend.uses_shm:
                shared = self._share_vocabulary(backend, vocabulary, idf)
                backend.configure(
                    kernels.init_transform_worker_shm,
                    (shared.descriptor(), self.min_df),
                )
            else:
                backend.configure(
                    kernels.init_transform_worker, (vocabulary, idf, self.min_df)
                )
            entry_lists = [list(tf.items()) for tf in wc.doc_tfs]
            if grain is None:
                grain = auto_grain(len(entry_lists), backend.workers)
            chunks = [
                entry_lists[at : at + grain]
                for at in range(0, len(entry_lists), grain)
            ]
            quarantined_before = len(backend.quarantine.items)
            try:
                # ``bisect_items`` lets quarantine mode isolate a single
                # poisoned document inside a chunk of entry lists.
                rows = [
                    row
                    for chunk_rows in backend.map(
                        kernels.transform_chunk, chunks, grain=1,
                        bisect_items=True,
                    )
                    for row in chunk_rows
                ]
            finally:
                if shared is not None:
                    shared.close()
            # Quarantine coordinates → document indices: map item i is
            # ``chunks[i]``, which starts at document ``i * grain``.
            new_items = backend.quarantine.items[quarantined_before:]
            if new_items:
                backend.quarantine.note_docs(
                    doc
                    for item in new_items
                    for doc in range(
                        item.item_index * grain + item.sub_start,
                        item.item_index * grain + item.sub_start + item.n_units,
                    )
                )
        return TfIdfResult(
            matrix=CsrMatrix.from_rows(rows, n_cols=len(vocabulary)),
            vocabulary=vocabulary,
            idf=idf,
            wordcount=wc,
        )

    def transform_wordcount_tiled(
        self,
        wc: WordCountResult,
        store,
        backend: ExecutionBackend | None = None,
        grain: int | None = None,
        tile_docs: int | None = None,
    ) -> TfIdfResult:
        """Phase 2a emitting spill tiles instead of one in-memory matrix.

        The bounded-memory twin of :meth:`transform_wordcount`: documents
        are transformed ``tile_docs`` at a time, each finished row range
        is written to ``store`` (a :class:`~repro.tiles.store.TileStore`)
        as a binary tile — per-row squared norms precomputed for the
        k-means pass — and the rows are dropped before the next range
        starts, so peak memory is O(tile), not O(matrix). The per-document
        arithmetic is chunking-independent, so every row is bit-identical
        to the monolithic path on the same backend; only the container
        differs. The returned result's ``matrix`` is a
        :class:`~repro.tiles.matrix.TiledCsrMatrix` view owning the store.

        Unlike the monolithic path this one does not translate quarantine
        coordinates: a poisoned document fails the phase (documented in
        ``docs/data_plane.md``).
        """
        from repro.tiles.matrix import TiledCsrMatrix

        # Replays (degrade mode re-runs a phase after a pool death) must
        # not append onto a half-written tile set.
        store.reset()
        scratch = TaskCost()
        vocabulary, idf, index = self.build_vocabulary(wc, scratch)
        n_cols = len(vocabulary)
        n_docs = len(wc.doc_tfs)
        if tile_docs is None or tile_docs < 1:
            tile_docs = max(1, min(n_docs, 4096))
        shared = None
        if backend is not None:
            backend.begin_phase(PHASE_TRANSFORM)
            if backend.uses_shm:
                shared = self._share_vocabulary(backend, vocabulary, idf)
                backend.configure(
                    kernels.init_transform_worker_shm,
                    (shared.descriptor(), self.min_df),
                )
            else:
                backend.configure(
                    kernels.init_transform_worker, (vocabulary, idf, self.min_df)
                )
        try:
            for tile_start in range(0, n_docs, tile_docs):
                tile_stop = min(n_docs, tile_start + tile_docs)
                if backend is None:
                    rows = [
                        self.transform_document(tf, index, idf, scratch)
                        for tf in wc.doc_tfs[tile_start:tile_stop]
                    ]
                else:
                    entry_lists = [
                        list(tf.items())
                        for tf in wc.doc_tfs[tile_start:tile_stop]
                    ]
                    sub_grain = grain or auto_grain(
                        len(entry_lists), backend.workers
                    )
                    chunks = [
                        entry_lists[at : at + sub_grain]
                        for at in range(0, len(entry_lists), sub_grain)
                    ]
                    rows = [
                        row
                        for chunk_rows in backend.map(
                            kernels.transform_chunk, chunks, grain=1
                        )
                        for row in chunk_rows
                    ]
                self._append_tile(store, tile_start, n_cols, rows)
                del rows
        finally:
            if shared is not None:
                shared.close()
        manifest = store.seal(n_cols)
        return TfIdfResult(
            matrix=TiledCsrMatrix(manifest, store=store),
            vocabulary=vocabulary,
            idf=idf,
            wordcount=wc,
        )

    @staticmethod
    def _append_tile(store, row_start: int, n_cols: int, rows) -> None:
        """Pack one row range into tile arrays and append it to the store.

        ``sq_norms`` uses the same ``float64`` cast and dot product the
        k-means operator's in-memory ``_Prepared`` applies, so the stored
        norms are the exact doubles the untiled fit would compute.
        """
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        index_parts: list[np.ndarray] = []
        value_parts: list[np.ndarray] = []
        sq_norms = np.empty(len(rows), dtype=np.float64)
        for at, row in enumerate(rows):
            values = np.asarray(row.values, dtype=np.float64)
            index_parts.append(np.asarray(row.indices, dtype=np.int64))
            value_parts.append(values)
            sq_norms[at] = float(values @ values)
            indptr[at + 1] = indptr[at] + len(values)
        indices = (
            np.concatenate(index_parts)
            if index_parts else np.empty(0, dtype=np.int64)
        )
        data = (
            np.concatenate(value_parts)
            if value_parts else np.empty(0, dtype=np.float64)
        )
        store.append(row_start, n_cols, indptr, indices, data, sq_norms)

    # -- fused execution (worker-resident intermediates) ------------------------------

    def fit_transform_fused(
        self,
        corpus,
        backend: ExecutionBackend,
        *,
        grain: int | None = None,
    ) -> TfIdfResult:
        """Fused wc→transform on one backend (paper optimization #3, real path).

        Output is bit-identical to :meth:`fit_transform` on the same
        backend — same counting, same vocabulary (built from the merged
        document-frequency table, which travels normally), same transform
        arithmetic, same row order — but the per-document TF entries never
        cross the IPC boundary: each worker transforms the chunks it
        counted. On the process backend this eliminates the transform
        phase's corpus-sized task pickles (visible in ``IpcStats``);
        requires the shm plane there, because the vocabulary must reach
        workers without a ``configure`` call (which would recycle the pool
        and with it the resident state).
        """
        fused = self.wordcount.run_fused(
            corpus, backend, min_df=self.min_df, grain=grain
        )
        return self.transform_resident(fused)

    def transform_resident(self, fused: FusedWordCount) -> TfIdfResult:
        """Flush worker-resident chunks through the transform (phase 2a)."""
        backend = fused.backend
        wc = fused.wc
        scratch = TaskCost()
        vocabulary, idf, index = self.build_vocabulary(wc, scratch)
        backend.begin_phase(PHASE_TRANSFORM)
        shared = None
        if backend.configure_recycles_workers:
            # The vocabulary may not travel via ``configure`` here — the
            # process backend recycles its pool on reconfiguration, which
            # would destroy the resident chunks. Instead it goes into a
            # shared segment whose tiny descriptor rides inside each
            # flush task.
            if not backend.uses_shm:
                raise ConfigurationError(
                    "fused wc→transform on the process backend requires "
                    "the shared-memory plane (shm=True): the vocabulary "
                    "cannot travel via configure without recycling the "
                    "pool and losing the worker-resident chunks"
                )
            shared = self._share_vocabulary(backend, vocabulary, idf)
            descriptor = shared.descriptor()
        else:
            # In-process backends share the parent's address space:
            # configure installs the transform state without touching any
            # pool, and the flush tasks carry no descriptor at all.
            backend.configure(
                kernels.init_transform_worker, (vocabulary, idf, self.min_df)
            )
            descriptor = None
        try:
            tasks = [
                (chunk_id, descriptor)
                for chunk_id in range(len(fused.chunk_texts))
            ]
            flushed = backend.map(kernels.transform_flush, tasks, grain=1)
            # Residency misses (flush landed on a worker that did not
            # count the chunk — impossible at workers=1 and in-process,
            # possible above that) fall back to a fresh count+transform
            # from the parent-retained chunk texts.
            misses = [
                chunk_id
                for chunk_id, out in enumerate(flushed)
                if out is None
            ]
            if misses:
                redone = backend.map(
                    kernels.count_transform_chunk,
                    [
                        (fused.chunk_texts[chunk_id], descriptor)
                        for chunk_id in misses
                    ],
                    grain=1,
                )
                for chunk_id, out in zip(misses, redone):
                    flushed[chunk_id] = out
        finally:
            if shared is not None:
                shared.close()
        rows = [row for chunk_rows in flushed for row in chunk_rows]
        return TfIdfResult(
            matrix=CsrMatrix.from_rows(rows, n_cols=len(vocabulary)),
            vocabulary=vocabulary,
            idf=idf,
            wordcount=wc,
        )
