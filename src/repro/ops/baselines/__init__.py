"""Baseline implementations the paper compares against."""

from repro.ops.baselines.weka_kmeans import SimpleKMeansBaseline

__all__ = ["SimpleKMeansBaseline"]
