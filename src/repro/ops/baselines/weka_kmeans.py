"""Dense, object-churning K-means — the WEKA ``SimpleKMeans`` stand-in.

The paper compares its operator against WEKA 3.6.13's single-threaded
``SimpleKMeans`` and aborts the WEKA run after two hours, versus 3.3 s /
40.9 s for its own sequential implementation (§3.1). The two pathologies
behind that gap, which this baseline deliberately reproduces:

* **dense representation** — every document becomes a vector over the full
  vocabulary, so each iteration costs O(D · K · V) instead of
  O(nnz · K);
* **allocation churn** — fresh per-attribute objects are created every
  iteration (WEKA's ``Instance`` copying), charged per element.

The baseline is numerically identical to the sparse operator given the
same seeding, which the integration tests exploit.
"""

from __future__ import annotations

import numpy as np

from repro.core.cost_model import DEFAULT_COSTS, CostConstants
from repro.errors import OperatorError
from repro.exec.metrics import Timeline
from repro.exec.scheduler import SimScheduler
from repro.exec.task import TaskCost
from repro.ops.kmeans import KMeansResult
from repro.sparse.matrix import CsrMatrix

__all__ = ["SimpleKMeansBaseline", "PHASE_BASELINE"]

PHASE_BASELINE = "weka-kmeans"


class SimpleKMeansBaseline:
    """Single-threaded dense K-means with per-iteration allocation."""

    def __init__(
        self,
        n_clusters: int = 8,
        max_iters: int = 10,
        seed: int = 0,
        costs: CostConstants = DEFAULT_COSTS,
    ) -> None:
        if n_clusters < 1:
            raise OperatorError(f"n_clusters must be >= 1, got {n_clusters}")
        self.n_clusters = n_clusters
        self.max_iters = max_iters
        self.seed = seed
        self.costs = costs

    def iteration_seconds(self, n_docs: int, vocabulary: int) -> float:
        """Closed-form virtual cost of one baseline iteration.

        Used to project full-scale runtimes (the ">2 hours" report) without
        materialising a full-scale dense matrix.
        """
        distance_work = n_docs * self.n_clusters * vocabulary
        churn = n_docs * vocabulary
        return (
            distance_work * self.costs.dense_element_ns
            + churn * self.costs.dense_alloc_ns_per_element
        ) * 1e-9

    def projected_seconds(self, n_docs: int, vocabulary: int) -> float:
        """Projected full run: densification plus ``max_iters`` iterations."""
        densify = n_docs * vocabulary * self.costs.dense_alloc_ns_per_element * 1e-9
        return densify + self.max_iters * self.iteration_seconds(n_docs, vocabulary)

    def run_simulated(
        self, scheduler: SimScheduler, matrix: CsrMatrix
    ) -> KMeansResult:
        """Execute the baseline (serially, as WEKA does) on real data."""
        K = self.n_clusters
        D, V = matrix.n_rows, matrix.n_cols
        if D < K:
            raise OperatorError(f"need at least {K} documents, got {D}")
        timeline = Timeline()

        # Densify every document: the representation sin, paid up front.
        dense = np.zeros((D, V), dtype=np.float64)
        for i, row in enumerate(matrix.iter_rows()):
            dense[i, row.indices] = row.values
        timeline.add(
            scheduler.serial_phase(
                TaskCost(
                    cpu_s=D * V * self.costs.dense_alloc_ns_per_element * 1e-9,
                    mem_bytes=D * V * 8,
                ),
                name=PHASE_BASELINE,
            )
        )

        # Same deterministic seeding as the sparse operator.
        stride = D // K
        offset = self.seed % max(1, stride)
        seeds = [min(D - 1, offset + k * stride) for k in range(K)]
        centroids = dense[seeds].copy()

        assignments = np.zeros(D, dtype=np.intp)
        previous = None
        converged = False
        inertia = 0.0
        n_iters = 0
        doc_sq = np.einsum("ij,ij->i", dense, dense)
        for _ in range(self.max_iters):
            n_iters += 1
            c_sq = np.einsum("ij,ij->i", centroids, centroids)
            distances = doc_sq[:, None] - 2.0 * (dense @ centroids.T) + c_sq[None, :]
            assignments = distances.argmin(axis=1)
            inertia = float(
                np.maximum(distances[np.arange(D), assignments], 0.0).sum()
            )
            for k in range(K):
                members = dense[assignments == k]
                if len(members):
                    centroids[k] = members.mean(axis=0)
            timeline.add(
                scheduler.serial_phase(
                    TaskCost(
                        cpu_s=self.iteration_seconds(D, V),
                        mem_bytes=D * V * 8 * 2,
                    ),
                    name=PHASE_BASELINE,
                )
            )
            if previous is not None and np.array_equal(assignments, previous):
                converged = True
                break
            previous = assignments.copy()

        return KMeansResult(
            assignments=[int(a) for a in assignments],
            centroids=centroids,
            n_iters=n_iters,
            inertia=inertia,
            converged=converged,
            timeline=timeline,
        )
