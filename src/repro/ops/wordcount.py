"""Word-count step: per-document term frequencies + document frequencies.

This is phase 1 of the TF/IDF operator (paper §3.2): read each document,
tokenize it, build a per-document term-frequency dictionary, and maintain a
global term → document-count dictionary. The phase parallelises over
documents; the global dictionary is kept contention-free the way a Cilk
reducer would — every worker counts into a private dictionary and the
privates are merged in a reduction tree afterwards.

All dictionary work is performed for real on the configured implementation
(``map``/``unordered_map``), and the operation counts are converted into
simulated time through the dictionary cost profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.cost_model import DEFAULT_COSTS, UNIT_SCALE, CostConstants, WorkloadScale
from repro.dicts.api import Dictionary
from repro.dicts.cost import DictCostProfile, profile_for_kind
from repro.dicts.factory import make_dict
from repro.dicts.snapshot import SnapshotDict
from repro.errors import ConfigurationError
from repro.exec.inline import ExecutionBackend
from repro.exec.parallel import auto_grain
from repro.exec.scheduler import PhaseTiming, SimScheduler
from repro.exec.task import TaskCost
from repro.io.storage import Storage
from repro.ops import kernels
from repro.text.tokenizer import Tokenizer

__all__ = ["WordCountResult", "WordCountStep", "FusedWordCount", "PHASE_INPUT_WC"]

#: Phase label used in Figure 3/4 breakdowns.
PHASE_INPUT_WC = "input+wc"

#: Chunk size for backend runs over a stream whose length is unknown.
_STREAM_GRAIN = 32


def _iter_named(source) -> Iterator[tuple[str | None, str]]:
    """Yield ``(name, text)`` for each item of a heterogeneous source.

    Accepts plain strings (name ``None``), :class:`~repro.text.corpus.Document`
    objects, and anything iterable over either — a materialized
    :class:`~repro.text.corpus.Corpus` or a lazy
    :class:`~repro.io.parallel_read.DocumentStream`.
    """
    for item in source:
        if isinstance(item, str):
            yield None, item
        else:
            yield item.name, item.text


@dataclass
class WordCountResult:
    """Output of the word-count step.

    ``doc_tfs`` is aligned with the input path order; keeping the
    per-document dictionaries alive until the transform step is what makes
    the fused workflow memory-hungry under ``unordered_map`` (Figure 4's
    12.8 GB) and compact under ``map`` (420 MB).
    """

    paths: list[str]
    doc_tfs: list[Dictionary]
    doc_token_counts: list[int]
    df: Dictionary
    dict_kind: str
    input_bytes: int = 0
    total_tokens: int = 0
    #: Extrapolation factors the producing step was configured with.
    scale: WorkloadScale = UNIT_SCALE
    #: Set by the fused path, where ``doc_tfs`` stays empty because the
    #: per-document dictionaries never left the workers.
    counted_docs: int | None = None

    @property
    def n_docs(self) -> int:
        if self.counted_docs is not None:
            return self.counted_docs
        return len(self.doc_tfs)

    @property
    def vocabulary_size(self) -> int:
        return len(self.df)

    def resident_bytes(self) -> int:
        """Modelled memory held by all live dictionaries of this result.

        Extrapolated: the global df dictionary grows with the vocabulary,
        the per-document dictionaries with the document count.
        """
        per_doc = sum(tf.resident_bytes() for tf in self.doc_tfs)
        return int(
            self.df.resident_bytes() * self.scale.vocab_factor
            + per_doc * self.scale.doc_factor
        )


@dataclass
class FusedWordCount:
    """Word-count output whose per-document TF entries stayed worker-resident.

    Produced by :meth:`WordCountStep.run_fused`: ``wc.doc_tfs`` is empty
    (``wc.counted_docs`` carries the document count instead) because each
    worker kept its chunks' entries in :data:`repro.ops.kernels._RESIDENT`,
    waiting for the transform flush. ``chunk_texts`` retains the raw chunk
    texts parent-side so a residency miss (the flush task landing on a
    different pool worker) can fall back to a re-count; ``backend`` is the
    backend that holds the resident state — the flush *must* reuse it,
    without any intervening ``configure`` that would recycle the pool.
    """

    wc: WordCountResult
    chunk_texts: list[list[str]]
    backend: ExecutionBackend


class WordCountStep:
    """Configurable word-count step (dictionary kind, pre-size, tokenizer)."""

    def __init__(
        self,
        dict_kind: str = "map",
        reserve: int = 4096,
        tokenizer: Tokenizer | None = None,
        costs: CostConstants = DEFAULT_COSTS,
        scale: WorkloadScale = UNIT_SCALE,
    ) -> None:
        self.dict_kind = dict_kind
        self.reserve = reserve
        self.tokenizer = tokenizer or Tokenizer()
        self.costs = costs
        self.scale = scale
        self._profile: DictCostProfile = profile_for_kind(
            make_dict(dict_kind, reserve).kind
        )

    # -- per-document kernel ---------------------------------------------------------

    def count_document(
        self, text: str, df: Dictionary, cost: TaskCost
    ) -> tuple[Dictionary, int]:
        """Count one document into a fresh TF dictionary; update ``df``.

        Returns ``(tf_dict, token_count)`` and accumulates the virtual cost
        of tokenization and all dictionary operations into ``cost``.
        """
        tokenized = self.tokenizer.tokenize(text)
        cost.cpu_s += (
            tokenized.bytes_processed * self.costs.tokenize_ns_per_byte
            + tokenized.n_tokens * self.costs.token_fixed_ns
        ) * 1e-9
        cost.mem_bytes += tokenized.bytes_processed * self.costs.tokenize_bytes_per_byte

        tf = make_dict(self.dict_kind, self.reserve)
        for token in tokenized.tokens:
            tf.increment(token)

        df_before = df.stats.copy()
        for term, _ in tf.items():
            df.increment(term)
        # Charge the fresh tf dictionary once: its inserts plus the
        # iteration the df update just performed.
        self._charge(tf, cost)
        df_delta = df.stats.delta(df_before)
        cost.cpu_s += self._profile.cpu_seconds(df_delta)
        cost.mem_bytes += self._profile.memory_traffic(df_delta)
        return tf, tokenized.n_tokens

    def _charge(self, dictionary: Dictionary, cost: TaskCost) -> None:
        """Convert a dictionary's (entire) stats into cost."""
        cost.cpu_s += self._profile.cpu_seconds(dictionary.stats)
        cost.mem_bytes += self._profile.memory_traffic(dictionary.stats)

    # -- merge reduction ---------------------------------------------------------------

    def merge_df_pair(
        self, into: Dictionary, source: Dictionary, cost: TaskCost
    ) -> Dictionary:
        """Merge ``source``'s counts into ``into`` (one reduction-tree node)."""
        into_before = into.stats.copy()
        source_before = source.stats.copy()
        for term, count in source.items():
            into.increment(term, count)
        for stats, before in ((into.stats, into_before), (source.stats, source_before)):
            delta = stats.delta(before)
            cost.cpu_s += self._profile.cpu_seconds(delta)
            cost.mem_bytes += self._profile.memory_traffic(delta)
        return into

    # -- simulated execution --------------------------------------------------------------

    def run_simulated(
        self,
        scheduler: SimScheduler,
        storage: Storage,
        paths: list[str],
        workers: int | None = None,
        phase_name: str = PHASE_INPUT_WC,
    ) -> tuple[WordCountResult, list[PhaseTiming]]:
        """Execute the word-count phase on the simulated machine.

        Documents are dealt round-robin to ``workers`` private shards
        (static scheduling of a balanced loop); each shard is one scheduled
        task whose cost includes its file reads, tokenization and
        dictionary work. Afterwards the private document-frequency
        dictionaries are merged pairwise in parallel reduction levels.
        """
        T = scheduler.machine.effective_workers(workers)
        timings: list[PhaseTiming] = []

        shard_costs = [TaskCost() for _ in range(T)]
        shard_dfs = [make_dict(self.dict_kind, self.reserve) for _ in range(T)]
        doc_tfs: list[Dictionary | None] = [None] * len(paths)
        doc_tokens = [0] * len(paths)
        input_bytes = 0

        for index, path in enumerate(paths):
            worker = index % T
            cost = shard_costs[worker]
            text, read_cost = storage.read(path)
            cost.add(read_cost)
            input_bytes += len(text)
            tf, n_tokens = self.count_document(text, shard_dfs[worker], cost)
            doc_tfs[index] = tf
            doc_tokens[index] = n_tokens

        timings.append(
            scheduler.simulate_phase(
                [cost.scaled(self.scale.doc_factor) for cost in shard_costs],
                workers=T,
                name=phase_name,
            )
        )

        # Reduction tree over the worker-private df dictionaries.
        level = shard_dfs
        while len(level) > 1:
            next_level: list[Dictionary] = []
            merge_costs: list[TaskCost] = []
            for at in range(0, len(level) - 1, 2):
                cost = TaskCost()
                next_level.append(self.merge_df_pair(level[at], level[at + 1], cost))
                merge_costs.append(cost)
            if len(level) % 2:
                next_level.append(level[-1])
            timings.append(
                scheduler.simulate_phase(
                    [cost.scaled(self.scale.vocab_factor) for cost in merge_costs],
                    workers=T,
                    name=phase_name,
                )
            )
            level = next_level

        result = WordCountResult(
            paths=list(paths),
            doc_tfs=[tf for tf in doc_tfs if tf is not None],
            doc_token_counts=doc_tokens,
            df=level[0],
            dict_kind=self.dict_kind,
            input_bytes=input_bytes,
            total_tokens=sum(doc_tokens),
            scale=self.scale,
        )
        return result, timings

    # -- functional execution ---------------------------------------------------------------

    def run(
        self,
        texts,
        backend: ExecutionBackend | None = None,
        grain: int | None = None,
    ) -> WordCountResult:
        """Count an in-memory or streamed document source (no simulation).

        ``texts`` may be a list of strings, a
        :class:`~repro.text.corpus.Corpus`, or a lazy
        :class:`~repro.io.parallel_read.DocumentStream` — with a stream,
        counting document *i* overlaps the read of document *i+k* (the
        paper's parallel input, §3.2). With a ``backend``, the
        per-document counting runs on it in Cilk-grain chunks (real
        parallelism on :class:`~repro.exec.process.ProcessBackend`); term
        and document frequencies are identical to the inline path, but the
        returned dictionaries are uninstrumented
        :class:`~repro.dicts.snapshot.SnapshotDict` views — use the
        simulated path when op stats matter.
        """
        if backend is not None:
            return self._run_backend(texts, backend, grain=grain)
        df = make_dict(self.dict_kind, self.reserve)
        doc_tfs: list[Dictionary] = []
        doc_tokens: list[int] = []
        paths: list[str] = []
        input_bytes = 0
        scratch = TaskCost()
        for name, text in _iter_named(texts):
            tf, n_tokens = self.count_document(text, df, scratch)
            doc_tfs.append(tf)
            doc_tokens.append(n_tokens)
            paths.append(name if name is not None else f"mem-{len(paths)}")
            input_bytes += len(text)
        return WordCountResult(
            paths=paths,
            doc_tfs=doc_tfs,
            doc_token_counts=doc_tokens,
            df=df,
            dict_kind=self.dict_kind,
            input_bytes=input_bytes,
            total_tokens=sum(doc_tokens),
            scale=self.scale,
        )

    def _run_backend(
        self, texts, backend: ExecutionBackend, grain: int | None = None
    ) -> WordCountResult:
        """Chunked word count on a real backend (phase-1 parallel loop).

        Each chunk is one task: the worker tokenizes and counts its
        documents and pre-aggregates a partial document-frequency table,
        so the parent only merges one small table per chunk (plain integer
        adds — order-independent) instead of re-counting per document.
        Chunks are submitted as the source yields (``map_stream``), so a
        prefetching reader keeps the pool busy while later files are
        still in flight.
        """
        backend.begin_phase(PHASE_INPUT_WC)
        backend.configure(kernels.init_wordcount_worker, (self.tokenizer,))
        if grain is None:
            try:
                n_hint = len(texts)
            except TypeError:
                n_hint = None
            grain = (
                auto_grain(n_hint, backend.workers) if n_hint else _STREAM_GRAIN
            )
        paths: list[str] = []
        input_bytes = 0
        chunk_starts: list[int] = []

        def chunked():
            nonlocal input_bytes
            chunk: list[str] = []
            for name, text in _iter_named(texts):
                paths.append(name if name is not None else f"mem-{len(paths)}")
                input_bytes += len(text)
                chunk.append(text)
                if len(chunk) >= grain:
                    chunk_starts.append(len(paths) - len(chunk))
                    yield chunk
                    chunk = []
            if chunk:
                chunk_starts.append(len(paths) - len(chunk))
                yield chunk

        # Items are already grain-sized chunks — grain=1 stops the process
        # backend's stream micro-batching from batching them again.
        # ``bisect_items`` lets quarantine mode split *inside* a chunk, so
        # one poisoned document is isolated, not its whole chunk.
        quarantined_before = len(backend.quarantine.items)
        parts = backend.map_stream(
            kernels.count_chunk, chunked(), grain=1, bisect_items=True
        )

        # Translate quarantine coordinates (chunk ordinal + offset inside
        # the chunk) into document indices, and drop those documents from
        # the path list so it stays aligned with the surviving TFs.
        new_items = backend.quarantine.items[quarantined_before:]
        if new_items:
            dropped: list[int] = []
            for item in new_items:
                base = chunk_starts[item.item_index] + item.sub_start
                dropped.extend(range(base, base + item.n_units))
            backend.quarantine.note_docs(dropped)
            dropped_set = set(dropped)
            paths = [p for i, p in enumerate(paths) if i not in dropped_set]

        doc_tfs: list[Dictionary] = []
        doc_tokens: list[int] = []
        df_total: dict[str, int] = {}
        for doc_entries, token_counts, df_entries in parts:
            for entries in doc_entries:
                doc_tfs.append(SnapshotDict(entries, kind=self.dict_kind))
            doc_tokens.extend(token_counts)
            for term, count in df_entries:
                df_total[term] = df_total.get(term, 0) + count
        df = SnapshotDict(sorted(df_total.items()), kind=self.dict_kind)
        return WordCountResult(
            paths=paths,
            doc_tfs=doc_tfs,
            doc_token_counts=doc_tokens,
            df=df,
            dict_kind=self.dict_kind,
            input_bytes=input_bytes,
            total_tokens=sum(doc_tokens),
            scale=self.scale,
        )

    def run_fused(
        self,
        texts,
        backend: ExecutionBackend,
        *,
        min_df: int = 1,
        grain: int | None = None,
    ) -> FusedWordCount:
        """Count chunks, leaving per-document TF entries worker-resident.

        First half of the fused wc→transform pipeline (paper optimization
        #3 on the real path): counting arithmetic is identical to
        :meth:`run`, but each task returns only its token counts and
        partial document-frequency table — the corpus-sized per-document
        entries stay in the worker that counted them, keyed by chunk id,
        until :meth:`repro.ops.tfidf.TfIdfOperator.transform_resident`
        flushes them. Incompatible with retry/quarantine policies (a
        retried task would double-install resident state on a different
        worker), so resilient backends are rejected.
        """
        if getattr(backend, "_resilient", False):
            raise ConfigurationError(
                "fused wc→transform is incompatible with retry/quarantine "
                "policies; run unfused or drop the resilience policy"
            )
        backend.begin_phase(PHASE_INPUT_WC)
        backend.configure(kernels.init_fused_worker, (self.tokenizer, min_df))
        if grain is None:
            try:
                n_hint = len(texts)
            except TypeError:
                n_hint = None
            grain = (
                auto_grain(n_hint, backend.workers) if n_hint else _STREAM_GRAIN
            )
        paths: list[str] = []
        input_bytes = 0
        chunk_texts: list[list[str]] = []

        def chunked():
            nonlocal input_bytes
            chunk: list[str] = []
            for name, text in _iter_named(texts):
                paths.append(name if name is not None else f"mem-{len(paths)}")
                input_bytes += len(text)
                chunk.append(text)
                if len(chunk) >= grain:
                    chunk_texts.append(chunk)
                    yield (len(chunk_texts) - 1, chunk)
                    chunk = []
            if chunk:
                chunk_texts.append(chunk)
                yield (len(chunk_texts) - 1, chunk)

        parts = backend.map_stream(
            kernels.count_chunk_resident, chunked(), grain=1
        )

        doc_tokens: list[int] = []
        df_total: dict[str, int] = {}
        for _chunk_id, token_counts, df_entries in parts:
            doc_tokens.extend(token_counts)
            for term, count in df_entries:
                df_total[term] = df_total.get(term, 0) + count
        df = SnapshotDict(sorted(df_total.items()), kind=self.dict_kind)
        wc = WordCountResult(
            paths=paths,
            doc_tfs=[],
            doc_token_counts=doc_tokens,
            df=df,
            dict_kind=self.dict_kind,
            input_bytes=input_bytes,
            total_tokens=sum(doc_tokens),
            scale=self.scale,
            counted_docs=len(paths),
        )
        return FusedWordCount(wc=wc, chunk_texts=chunk_texts, backend=backend)
