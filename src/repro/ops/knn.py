"""k-nearest-neighbour text classifier over TF/IDF vectors.

Another "diverse operator" (paper §1) built on the same substrates: given
labelled documents as normalized TF/IDF rows, classify new documents by
cosine similarity against the training set. Since the vectors are
unit-norm, cosine similarity is just the sparse dot product, so
prediction costs O(n_train · nnz) merge-joins per query — exactly the
kind of sparse kernel whose data-structure and parallelism choices the
paper studies.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.cost_model import DEFAULT_COSTS, CostConstants
from repro.errors import OperatorError
from repro.exec.scheduler import SimScheduler
from repro.exec.task import TaskCost
from repro.sparse.matrix import CsrMatrix
from repro.sparse.vector import SparseVector

__all__ = ["KnnClassifier", "Neighbor"]


@dataclass(frozen=True)
class Neighbor:
    """One retrieved neighbour."""

    doc_id: int
    similarity: float
    label: str


class KnnClassifier:
    """Cosine k-NN over sparse unit vectors.

    Parameters
    ----------
    k:
        Number of neighbours consulted per prediction.
    """

    def __init__(self, k: int = 5, costs: CostConstants = DEFAULT_COSTS) -> None:
        if k < 1:
            raise OperatorError(f"k must be >= 1, got {k}")
        self.k = k
        self.costs = costs
        self._matrix: CsrMatrix | None = None
        self._labels: list[str] = []

    def fit(self, matrix: CsrMatrix, labels: list[str]) -> "KnnClassifier":
        """Index the training documents (rows must be L2-normalized)."""
        if matrix.n_rows != len(labels):
            raise OperatorError(
                f"{matrix.n_rows} rows but {len(labels)} labels"
            )
        if matrix.n_rows == 0:
            raise OperatorError("cannot fit on an empty matrix")
        self._matrix = matrix
        self._labels = list(labels)
        return self

    @property
    def is_fitted(self) -> bool:
        return self._matrix is not None

    def neighbors(
        self, query: SparseVector, cost: TaskCost | None = None
    ) -> list[Neighbor]:
        """The k most cosine-similar training documents, best first."""
        if self._matrix is None:
            raise OperatorError("classifier is not fitted")
        scored = []
        nnz_touched = 0
        for doc_id in range(self._matrix.n_rows):
            row = self._matrix.row(doc_id)
            nnz_touched += row.nnz + query.nnz
            scored.append((query.dot(row), -doc_id))
        scored.sort(reverse=True)
        if cost is not None:
            cost.cpu_s += nnz_touched * 2.0 * 1e-9  # merge-join step cost
            cost.mem_bytes += nnz_touched * 12
        return [
            Neighbor(doc_id=-neg_id, similarity=sim, label=self._labels[-neg_id])
            for sim, neg_id in scored[: self.k]
        ]

    def predict(self, query: SparseVector, cost: TaskCost | None = None) -> str:
        """Majority label among the k nearest neighbours.

        Ties break toward the higher total similarity, then
        lexicographically — fully deterministic.
        """
        votes = Counter()
        similarity_mass: dict[str, float] = {}
        for neighbor in self.neighbors(query, cost):
            votes[neighbor.label] += 1
            similarity_mass[neighbor.label] = (
                similarity_mass.get(neighbor.label, 0.0) + neighbor.similarity
            )
        return max(
            votes,
            key=lambda label: (votes[label], similarity_mass[label], label),
        )

    def predict_many(
        self,
        queries: CsrMatrix,
        scheduler: SimScheduler | None = None,
        workers: int | None = None,
    ) -> list[str]:
        """Classify every row; optionally simulate the parallel loop.

        Prediction is embarrassingly parallel over queries (the same
        doc-loop structure as the paper's operators), so when a scheduler
        is supplied each query is a metered task.
        """
        predictions = []
        costs = []
        for row_id in range(queries.n_rows):
            cost = TaskCost()
            predictions.append(self.predict(queries.row(row_id), cost))
            costs.append(cost)
        if scheduler is not None:
            scheduler.simulate_phase(costs, workers=workers, name="knn")
        return predictions
