"""MinHash near-duplicate detection operator.

Big-data corpora are full of near-duplicates (mirrors, boilerplate,
reposts); deduplication is a standard pre-processing operator for the
paper's pipeline. This implementation follows Broder's scheme: each
document's token-shingle set is summarised by ``num_hashes`` minimum hash
values; the estimated Jaccard similarity of two documents is the fraction
of agreeing signature positions. Candidate pairs are found by LSH
banding, so the operator never compares all O(n²) pairs.

Everything is deterministic: the hash family is seeded, and the paper's
per-document parallel-loop structure applies (signatures are computed per
document, independently).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost_model import DEFAULT_COSTS, CostConstants
from repro.errors import OperatorError
from repro.exec.scheduler import SimScheduler
from repro.exec.task import TaskCost

__all__ = ["MinHasher", "DuplicatePair", "shingles"]

_MERSENNE = (1 << 61) - 1


def shingles(tokens: list[str], width: int = 3) -> set[str]:
    """Contiguous token n-grams of the given width (the whole document
    when shorter)."""
    if width < 1:
        raise OperatorError(f"shingle width must be >= 1, got {width}")
    if len(tokens) < width:
        return {" ".join(tokens)} if tokens else set()
    return {
        " ".join(tokens[i : i + width]) for i in range(len(tokens) - width + 1)
    }


@dataclass(frozen=True)
class DuplicatePair:
    """A candidate near-duplicate pair with its estimated similarity."""

    left: int
    right: int
    similarity: float


class MinHasher:
    """MinHash signatures + LSH banding for near-duplicate detection.

    Parameters
    ----------
    num_hashes:
        Signature length; must be divisible by ``bands``.
    bands:
        LSH bands; ``rows = num_hashes / bands`` tunes the similarity
        threshold (~``(1/bands)**(1/rows)``).
    """

    def __init__(
        self,
        num_hashes: int = 64,
        bands: int = 16,
        shingle_width: int = 3,
        seed: int = 0,
        costs: CostConstants = DEFAULT_COSTS,
    ) -> None:
        if num_hashes < 1:
            raise OperatorError(f"num_hashes must be >= 1, got {num_hashes}")
        if bands < 1 or num_hashes % bands:
            raise OperatorError(
                f"bands ({bands}) must divide num_hashes ({num_hashes})"
            )
        self.num_hashes = num_hashes
        self.bands = bands
        self.rows = num_hashes // bands
        self.shingle_width = shingle_width
        self.costs = costs
        # A seeded affine hash family over a Mersenne prime.
        import random

        rng = random.Random(seed)
        self._a = [rng.randrange(1, _MERSENNE) for _ in range(num_hashes)]
        self._b = [rng.randrange(0, _MERSENNE) for _ in range(num_hashes)]

    def signature(
        self, tokens: list[str], cost: TaskCost | None = None
    ) -> tuple[int, ...]:
        """MinHash signature of one document's token stream."""
        doc_shingles = shingles(tokens, self.shingle_width)
        if not doc_shingles:
            return tuple([_MERSENNE] * self.num_hashes)
        hashed = [hash(s) & 0x7FFFFFFFFFFFFFFF for s in doc_shingles]
        minima = []
        for a, b in zip(self._a, self._b):
            minima.append(min((a * h + b) % _MERSENNE for h in hashed))
        if cost is not None:
            work = len(hashed) * self.num_hashes
            cost.cpu_s += work * 1.5e-9
            cost.mem_bytes += work * 8
        return tuple(minima)

    @staticmethod
    def estimate_similarity(
        sig_a: tuple[int, ...], sig_b: tuple[int, ...]
    ) -> float:
        """Fraction of agreeing positions ≈ Jaccard similarity."""
        if len(sig_a) != len(sig_b):
            raise OperatorError("signatures have different lengths")
        agree = sum(1 for x, y in zip(sig_a, sig_b) if x == y)
        return agree / len(sig_a)

    def find_duplicates(
        self,
        token_streams: list[list[str]],
        threshold: float = 0.5,
        scheduler: SimScheduler | None = None,
        workers: int | None = None,
    ) -> list[DuplicatePair]:
        """Near-duplicate pairs above ``threshold`` estimated similarity.

        Signatures are computed per document (a parallel loop when a
        scheduler is supplied); candidates come from LSH banding, then the
        full signatures verify each candidate pair.
        """
        if not 0.0 <= threshold <= 1.0:
            raise OperatorError(f"threshold must be in [0, 1]: {threshold}")
        costs = []
        signatures = []
        for tokens in token_streams:
            cost = TaskCost()
            signatures.append(self.signature(tokens, cost))
            costs.append(cost)
        if scheduler is not None:
            scheduler.simulate_phase(costs, workers=workers, name="minhash")

        buckets: dict[tuple[int, tuple[int, ...]], list[int]] = {}
        for doc_id, signature in enumerate(signatures):
            for band in range(self.bands):
                key = (band, signature[band * self.rows : (band + 1) * self.rows])
                buckets.setdefault(key, []).append(doc_id)

        candidates = set()
        for members in buckets.values():
            for i, left in enumerate(members):
                for right in members[i + 1 :]:
                    candidates.add((left, right))

        pairs = []
        for left, right in sorted(candidates):
            similarity = self.estimate_similarity(
                signatures[left], signatures[right]
            )
            if similarity >= threshold:
                pairs.append(DuplicatePair(left, right, similarity))
        pairs.sort(key=lambda p: (-p.similarity, p.left, p.right))
        return pairs
