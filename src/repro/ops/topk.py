"""Top-K frequent-terms operator.

A small text-analytics operator in the spirit of the paper's §1 ("the
operators are diverse ... any algorithm to transform, classify or
structure the data"): find the K most frequent terms of a corpus, by
collection frequency or document frequency. It reuses the word-count
step's dictionaries and demonstrates a second consumer hanging off the
same workflow stage (the engine supports fan-out).

Selection uses a bounded min-heap, so the pass over the dictionary is
O(V log K) rather than a full sort.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any

from repro.core.cost_model import DEFAULT_COSTS, CostConstants
from repro.core.ports import ScoreMatrix, WorkflowContext, WorkflowOp
from repro.dicts.api import Dictionary
from repro.dicts.cost import profile_for_kind
from repro.errors import OperatorError
from repro.exec.scheduler import SimScheduler
from repro.exec.task import TaskCost
from repro.ops.wordcount import WordCountResult

__all__ = ["TermCount", "top_k_terms", "TopTermsOp", "PHASE_TOPK"]

PHASE_TOPK = "topk"


@dataclass(frozen=True)
class TermCount:
    """One ranked term."""

    term: str
    count: int


def top_k_terms(
    dictionary: Dictionary,
    k: int,
    cost: TaskCost | None = None,
    costs: CostConstants = DEFAULT_COSTS,
) -> list[TermCount]:
    """The K highest-count entries of a term → count dictionary.

    Ties resolve lexicographically (stable, deterministic). When ``cost``
    is given, the iteration and heap work are metered.
    """
    if k < 1:
        raise OperatorError(f"k must be >= 1, got {k}")
    before = dictionary.stats.copy()
    heap: list[tuple[int, _ReverseStr]] = []
    for term, count in dictionary.items():
        entry = (count, _ReverseStr(term))
        if len(heap) < k:
            heapq.heappush(heap, entry)
        elif entry > heap[0]:
            heapq.heapreplace(heap, entry)
    ranked = sorted(heap, reverse=True)
    if cost is not None:
        profile = profile_for_kind(dictionary.kind)
        delta = dictionary.stats.delta(before)
        cost.cpu_s += profile.cpu_seconds(delta)
        cost.mem_bytes += profile.memory_traffic(delta)
        # Heap maintenance: ~log2(k) comparisons per considered entry.
        n = max(1, delta.iterations)
        cost.cpu_s += n * max(1, k.bit_length()) * costs.vocab_sort_ns_per_cmp * 1e-9
    return [TermCount(term=str(entry[1].value), count=entry[0]) for entry in ranked]


class _ReverseStr:
    """Orders strings descending so the min-heap keeps lexicographically
    smallest terms on count ties."""

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        self.value = value

    def __lt__(self, other: "_ReverseStr") -> bool:
        return self.value > other.value

    def __gt__(self, other: "_ReverseStr") -> bool:
        return self.value < other.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _ReverseStr) and self.value == other.value


class TopTermsOp(WorkflowOp):
    """Workflow node: document-frequency ranking from a TF/IDF sibling.

    Consumes the same ``scores`` payload the K-means node does (fan-out),
    ranking terms by how many documents they appear in.
    """

    inputs = ("scores",)
    outputs = ("top_terms",)

    def __init__(
        self,
        name: str = "topk",
        k: int = 20,
        costs: CostConstants = DEFAULT_COSTS,
    ) -> None:
        if k < 1:
            raise OperatorError(f"k must be >= 1, got {k}")
        self.name = name
        self.k = k
        self.costs = costs

    def execute(
        self, ctx: WorkflowContext, inputs: dict[str, Any]
    ) -> dict[str, Any]:
        scores: ScoreMatrix = self._require(inputs, "scores")
        matrix = scores.matrix
        document_frequency = [0] * matrix.n_cols
        for row_id in range(matrix.n_rows):
            row = matrix.row(row_id)
            for term_id in row.indices:
                document_frequency[term_id] += 1
        heap: list[tuple[int, _ReverseStr]] = []
        for term_id, count in enumerate(document_frequency):
            if count == 0:
                continue
            entry = (count, _ReverseStr(scores.vocabulary[term_id]))
            if len(heap) < self.k:
                heapq.heappush(heap, entry)
            elif entry > heap[0]:
                heapq.heapreplace(heap, entry)
        ranked = [
            TermCount(term=entry[1].value, count=entry[0])
            for entry in sorted(heap, reverse=True)
        ]
        cost = TaskCost(
            cpu_s=(matrix.nnz * 4.0 + matrix.n_cols * 10.0) * 1e-9,
            mem_bytes=matrix.nnz * 8 + matrix.n_cols * 8,
        )
        ctx.timeline.add(ctx.scheduler.serial_phase(cost, name=PHASE_TOPK))
        return {"top_terms": ranked}


def top_terms_from_wordcount(
    wc: WordCountResult,
    k: int,
    scheduler: SimScheduler | None = None,
) -> list[TermCount]:
    """Rank the word-count step's global df dictionary (functional API)."""
    return top_k_terms(wc.df, k)
