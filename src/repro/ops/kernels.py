"""Picklable chunk kernels for the real execution backends.

Every function here is module-level so a :class:`~repro.exec.process.ProcessBackend`
can ship it to worker processes by reference. Phase-constant state
(tokenizer, vocabulary, prepared matrix) is installed once per worker by
the ``init_*`` functions — dispatched through
:meth:`~repro.exec.inline.ExecutionBackend.configure` — and read back from
a module-level slot by the chunk kernels, so each submitted task carries
only its chunk of data. In-process backends (sequential, threads) run the
same initializers and kernels against the parent's copy of the slot, which
keeps a single code path across all backends.

The kernels use plain builtin dicts and numpy internally (instrumented
dictionaries would only be pickling dead weight across the IPC boundary)
but replicate the legacy operators' arithmetic exactly — same term
counts, same ``count * idf`` products, same sort orders, same centroid
accumulation grouping — so operator output is byte-identical across
backends and against the inline reference path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OperatorError
from repro.sparse.vector import SparseVector
from repro.text.tokenizer import Tokenizer

__all__ = [
    "init_wordcount_worker",
    "count_chunk",
    "init_transform_worker",
    "init_transform_worker_shm",
    "transform_chunk",
    "init_fused_worker",
    "count_chunk_resident",
    "transform_flush",
    "count_transform_chunk",
    "init_kmeans_worker",
    "init_kmeans_worker_shm",
    "init_kmeans_worker_tiled",
    "assign_chunk",
    "assign_chunk_tiled",
    "assign_block_span",
]

#: Per-worker state installed by the ``init_*`` functions. Keyed by phase
#: so a backend reconfigured mid-workflow cannot read stale state of a
#: different kernel family.
_STATE: dict[str, tuple] = {}


# -- word count (TF/IDF phase 1) ------------------------------------------------------


def init_wordcount_worker(tokenizer: Tokenizer) -> None:
    """Install the tokenizer (with its stopword/length config) once."""
    _STATE["wordcount"] = (tokenizer,)


def count_chunk(
    texts: list[str],
) -> tuple[list[list[tuple[str, int]]], list[int], list[tuple[str, int]]]:
    """Count one chunk of documents.

    Returns per-document sorted term-frequency entries, per-document token
    counts, and the chunk's partial document-frequency table (sorted
    entries) — one pickle for the whole chunk on the way back.
    """
    (tokenizer,) = _STATE["wordcount"]
    doc_entries: list[list[tuple[str, int]]] = []
    token_counts: list[int] = []
    df: dict[str, int] = {}
    for text in texts:
        tokens = tokenizer.tokenize(text).tokens
        tf: dict[str, int] = {}
        for token in tokens:
            tf[token] = tf.get(token, 0) + 1
        doc_entries.append(sorted(tf.items()))
        token_counts.append(len(tokens))
        for term in tf:
            df[term] = df.get(term, 0) + 1
    return doc_entries, token_counts, sorted(df.items())


# -- TF/IDF transform (phase 2a) ------------------------------------------------------


def init_transform_worker(
    vocabulary: list[str], idf: list[float], min_df: int
) -> None:
    """Build the term → id index once per worker from the vocabulary."""
    index = {term: term_id for term_id, term in enumerate(vocabulary)}
    _STATE["transform"] = (index, idf, min_df)


def init_transform_worker_shm(descriptor, min_df: int) -> None:
    """Rebuild the vocabulary/idf snapshot from a shared segment.

    ``descriptor`` resolves (zero-copy) to the vocabulary packed as one
    UTF-8 blob with cumulative end offsets plus the idf table; the strings
    and Python floats are reconstructed locally — identical values to the
    pickled initargs they replace — and handed to
    :func:`init_transform_worker`, so :func:`transform_chunk` is untouched.
    """
    arrays = descriptor.resolve()
    raw = arrays["vocab_blob"].tobytes()
    vocabulary: list[str] = []
    start = 0
    for end in arrays["vocab_ends"]:
        end = int(end)
        vocabulary.append(raw[start:end].decode("utf-8"))
        start = end
    init_transform_worker(vocabulary, arrays["idf"].tolist(), min_df)


def transform_chunk(
    chunk: list[list[tuple[str, int]]]
) -> list[SparseVector]:
    """Normalized TF/IDF vectors for one chunk of TF entry lists.

    Mirrors :meth:`repro.ops.tfidf.TfIdfOperator.transform_document`
    term-for-term: same ``count * idf`` products, same sort, same
    normalization — the output is bit-identical to the inline path.
    """
    index, idf, min_df = _STATE["transform"]
    vectors: list[SparseVector] = []
    for entries in chunk:
        pairs: list[tuple[int, float]] = []
        for term, count in entries:
            term_id = index.get(term)
            if term_id is None:
                if min_df > 1:
                    continue  # pruned below the document-frequency cutoff
                raise OperatorError(f"term {term!r} missing from vocabulary index")
            pairs.append((term_id, count * idf[term_id]))
        pairs.sort()
        vector = SparseVector(
            [term_id for term_id, _ in pairs], [score for _, score in pairs]
        )
        vectors.append(vector.normalized())
    return vectors


# -- fused wc→transform (worker-resident intermediates) -------------------------------

#: Per-worker store of counted-but-not-yet-transformed chunks, keyed by
#: chunk id. Filled by :func:`count_chunk_resident` during the fused
#: word-count phase and drained by :func:`transform_flush` — the per-doc
#: term-frequency entries never cross the IPC boundary.
_RESIDENT: dict[int, list[list[tuple[str, int]]]] = {}

#: Decoded vocabulary state per shared segment, so a worker that flushes
#: many chunks decodes the vocab blob exactly once.
_FUSED_VOCAB: dict[str, tuple] = {}


def init_fused_worker(tokenizer: Tokenizer, min_df: int) -> None:
    """Install tokenizer + min_df and reset the resident store (per run)."""
    _STATE["fused"] = (tokenizer, min_df)
    _STATE["wordcount"] = (tokenizer,)
    _RESIDENT.clear()
    _FUSED_VOCAB.clear()


def count_chunk_resident(
    task: tuple[int, list[str]]
) -> tuple[int, list[int], list[tuple[str, int]]]:
    """Count one chunk, keeping the per-doc TF entries worker-resident.

    Identical counting arithmetic to :func:`count_chunk`, but the
    corpus-sized ``doc_entries`` stay in :data:`_RESIDENT` under the chunk
    id instead of being pickled back: only the (much smaller) token counts
    and partial document-frequency table return to the parent, which is
    all it needs to build the vocabulary.
    """
    chunk_id, texts = task
    doc_entries, token_counts, df_entries = count_chunk(texts)
    _RESIDENT[chunk_id] = doc_entries
    return chunk_id, token_counts, df_entries


def _install_fused_vocab(descriptor) -> None:
    """Point ``_STATE['transform']`` at the vocabulary for this flush.

    ``descriptor`` is ``None`` on in-process backends (the parent already
    configured the transform state directly); on the process backend it is
    the tiny shm descriptor riding inside each flush task — shipping it
    per task instead of via ``configure`` is what keeps the worker pool
    (and with it the resident store) alive between the two fused phases.
    """
    if descriptor is None:
        if "transform" not in _STATE:
            raise OperatorError("fused flush before transform state installed")
        return
    cached = _FUSED_VOCAB.get(descriptor.segment)
    if cached is None:
        _, min_df = _STATE["fused"]
        init_transform_worker_shm(descriptor, min_df)
        _FUSED_VOCAB[descriptor.segment] = _STATE["transform"]
    else:
        _STATE["transform"] = cached


def transform_flush(task: tuple[int, object]) -> list[SparseVector] | None:
    """Transform a chunk counted earlier by this worker, if resident.

    Returns ``None`` when the chunk is not resident here (a different
    pool worker counted it — possible at ``workers > 1`` because the
    executor has no task affinity); the parent then falls back to
    :func:`count_transform_chunk` from its retained chunk texts. At one
    worker, and on in-process backends, every chunk hits.
    """
    chunk_id, descriptor = task
    entries = _RESIDENT.pop(chunk_id, None)
    if entries is None:
        return None
    _install_fused_vocab(descriptor)
    return transform_chunk(entries)


def count_transform_chunk(
    task: tuple[list[str], object]
) -> list[SparseVector]:
    """Residency-miss fallback: re-count then transform in one task."""
    texts, descriptor = task
    doc_entries, _token_counts, _df = count_chunk(texts)
    _install_fused_vocab(descriptor)
    return transform_chunk(doc_entries)


# -- K-means assignment ----------------------------------------------------------------


def init_kmeans_worker(
    indices: list[np.ndarray], values: list[np.ndarray], sq_norms: list[float]
) -> None:
    """Install the prepared document views once per worker (per fit)."""
    _STATE["kmeans"] = (indices, values, sq_norms)


def init_kmeans_worker_shm(matrix_descriptor, channel_descriptor, bounds) -> None:
    """Attach to the shared matrix instead of receiving a pickled copy.

    ``matrix_descriptor`` resolves to the flat CSR triple plus squared
    norms placed once by the parent; the per-document index/value views
    are sliced out of the attached buffers — the same values
    :func:`init_kmeans_worker` would have received, at zero IPC cost.
    ``channel_descriptor``/``bounds`` equip :func:`assign_block_span` to
    read each iteration's broadcast centroids and walk its blocks.
    """
    from repro.sparse.matrix import CsrMatrix

    arrays = matrix_descriptor.resolve()
    matrix = CsrMatrix.from_arrays(
        arrays["indptr"],
        arrays["indices"],
        arrays["values"],
        n_cols=0,  # column count is irrelevant to the assignment kernel
    )
    indptr = matrix.indptr
    doc_indices: list[np.ndarray] = []
    doc_values: list[np.ndarray] = []
    for doc in range(matrix.n_rows):
        start, end = int(indptr[doc]), int(indptr[doc + 1])
        doc_indices.append(matrix.indices[start:end])
        doc_values.append(matrix.data[start:end])
    _STATE["kmeans"] = (doc_indices, doc_values, arrays["sq_norms"])
    _STATE["kmeans_shm"] = (channel_descriptor, tuple(bounds))


def assign_chunk(
    task: tuple[int, int, np.ndarray, np.ndarray]
) -> tuple[list[int], np.ndarray, np.ndarray, float]:
    """Assign documents ``[start, stop)`` to their nearest centroid.

    ``task`` carries the block bounds plus the iteration's centroids and
    centroid squared norms (the only per-iteration data). Returns the
    block's assignments, its partial centroid accumulator, per-cluster
    counts and inertia contribution. Blocks are worker-independent, and
    the caller merges partials in fixed block order, so the floating-point
    result does not depend on the backend or worker count.
    """
    start, stop, centroids, centroid_sq_norms = task
    indices, values, sq_norms = _STATE["kmeans"]
    return _assign_block(
        start, stop, centroids, centroid_sq_norms, indices, values, sq_norms
    )


def init_kmeans_worker_tiled(manifest, memory_budget) -> None:
    """Map the spilled tile manifest instead of receiving matrix bytes.

    The file-backed twin of :func:`init_kmeans_worker_shm`: ``manifest``
    is a tiny picklable :class:`~repro.tiles.store.TileManifest`, and the
    worker mmaps the parent's tile files directly — zero matrix IPC, with
    the worker's own mapped bytes bounded by ``memory_budget`` through
    the reader's LRU. In-process backends run this too (a second reader
    over the same files; the page cache deduplicates), keeping one code
    path across all backends.
    """
    from repro.tiles.matrix import TiledCsrMatrix

    matrix = TiledCsrMatrix.from_manifest(manifest, memory_budget=memory_budget)
    _STATE["kmeans_tiled"] = (matrix,)


def assign_chunk_tiled(
    task: tuple[int, int, np.ndarray, np.ndarray]
) -> tuple[list[int], np.ndarray, np.ndarray, float]:
    """Tile-streaming :func:`assign_chunk`: fetch the block, then assign.

    The block's per-document index/value views and precomputed squared
    norms come straight out of the mapped tiles (local indexing), and the
    arithmetic is :func:`_assign_block` verbatim — same doubles in the
    same order as the in-memory path, so the per-block results (and the
    caller's fixed-order merge) are bit-identical.
    """
    start, stop, centroids, centroid_sq_norms = task
    (matrix,) = _STATE["kmeans_tiled"]
    indices, values, sq_norms = matrix.block_arrays(start, stop)
    return _assign_block(
        0, stop - start, centroids, centroid_sq_norms, indices, values, sq_norms
    )


def assign_block_span(
    task: tuple[int, int, int]
) -> list[tuple[list[int], np.ndarray, np.ndarray, float]]:
    """Assign a span of blocks against broadcast centroids (shm path).

    ``task`` is a constant-size token ``(first_block, last_block,
    generation)``: the centroids travel through the broadcast channel,
    not the task pickle, so per-iteration task bytes are independent of
    the block count. The span returns one result *per block* — blocks
    are never merged worker-side, which keeps the parent's fixed
    block-order merge (and therefore the floating-point grouping)
    identical to the non-shm path.
    """
    first, last, generation = task
    indices, values, sq_norms = _STATE["kmeans"]
    channel, bounds = _STATE["kmeans_shm"]
    centroids, centroid_sq_norms = channel.read(generation)
    return [
        _assign_block(
            start, stop, centroids, centroid_sq_norms, indices, values, sq_norms
        )
        for start, stop in bounds[first:last]
    ]


def _assign_block(
    start: int,
    stop: int,
    centroids: np.ndarray,
    centroid_sq_norms: np.ndarray,
    indices,
    values,
    sq_norms,
) -> tuple[list[int], np.ndarray, np.ndarray, float]:
    K = centroids.shape[0]
    partial = np.zeros_like(centroids)
    counts = np.zeros(K, dtype=np.int64)
    assignments: list[int] = []
    inertia = 0.0
    for doc in range(start, stop):
        idx = indices[doc]
        val = values[doc]
        if len(idx):
            dots = centroids[:, idx] @ val
        else:
            dots = np.zeros(K)
        distances = sq_norms[doc] - 2.0 * dots + centroid_sq_norms
        best = int(np.argmin(distances))
        assignments.append(best)
        inertia += float(max(0.0, distances[best]))
        partial[best, idx] += val
        counts[best] += 1
    return assignments, partial, counts, inertia
