"""Analytics operators: TF/IDF, K-means and the baselines."""

from repro.ops.baselines import SimpleKMeansBaseline
from repro.ops.kmeans import PHASE_KMEANS, KMeansOperator, KMeansResult
from repro.ops.knn import KnnClassifier, Neighbor
from repro.ops.minhash import DuplicatePair, MinHasher, shingles
from repro.ops.topk import TermCount, TopTermsOp, top_k_terms
from repro.ops.tfidf import (
    PHASE_TFIDF_OUTPUT,
    PHASE_TRANSFORM,
    TfIdfOperator,
    TfIdfResult,
)
from repro.ops.wordcount import PHASE_INPUT_WC, WordCountResult, WordCountStep

__all__ = [
    "WordCountStep",
    "WordCountResult",
    "TfIdfOperator",
    "TfIdfResult",
    "KMeansOperator",
    "KMeansResult",
    "SimpleKMeansBaseline",
    "KnnClassifier",
    "Neighbor",
    "MinHasher",
    "DuplicatePair",
    "shingles",
    "TermCount",
    "TopTermsOp",
    "top_k_terms",
    "PHASE_INPUT_WC",
    "PHASE_TRANSFORM",
    "PHASE_TFIDF_OUTPUT",
    "PHASE_KMEANS",
]
