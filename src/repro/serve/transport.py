"""Filesystem transport between serve clients and the daemon.

No sockets, no new dependencies: the state directory *is* the wire.

::

    <state dir>/
      journal.jsonl       # durable job journal (repro.serve.journal)
      heartbeat.json      # {pid, ts, seq, state} — liveness beacon
      daemon.lock         # {pid, started} — single-daemon guard
      inbox/<job>.json    # one atomic file per submission
      results/<job>.json  # one atomic file per completed job
      control/drain       # marker: drain in-flight work, then exit
      ledger/             # per-phase RunLedger records of every job run

Every file a client or the daemon publishes is written to a temp name
and ``os.replace``\\ d into place, so the other side can never observe a
half-written submission or result. Submissions are idempotent by
``job_id``: the daemon deletes the inbox file only *after* the durable
``submitted`` journal append, and a resubmitted or crash-surviving inbox
file for a known job id is dropped as a duplicate.
"""

from __future__ import annotations

import json
import os
import time

from repro.errors import ConfigurationError
from repro.io.atomic import atomic_write_json
from repro.serve.journal import JobView, read_journal, replay

__all__ = [
    "INBOX_DIR",
    "RESULTS_DIR",
    "CONTROL_DIR",
    "HEARTBEAT_FILE",
    "LOCK_FILE",
    "new_job_id",
    "submit_job",
    "read_result",
    "job_status",
    "request_drain",
    "drain_requested",
    "write_heartbeat",
    "read_heartbeat",
]

INBOX_DIR = "inbox"
RESULTS_DIR = "results"
CONTROL_DIR = "control"
HEARTBEAT_FILE = "heartbeat.json"
LOCK_FILE = "daemon.lock"
DRAIN_MARKER = "drain"

_COUNTER = [0]


def new_job_id() -> str:
    """Collision-resistant id: wall ms + pid + counter + random suffix."""
    _COUNTER[0] += 1
    return (
        f"job-{int(time.time() * 1e3):013d}-{os.getpid()}-"
        f"{_COUNTER[0]}-{os.urandom(3).hex()}"
    )


def _check_job_id(job_id: str) -> str:
    if not job_id or os.sep in job_id or job_id.startswith("."):
        raise ConfigurationError(f"invalid job id {job_id!r}")
    return job_id


def inbox_path(state_dir: str, job_id: str) -> str:
    return os.path.join(state_dir, INBOX_DIR, _check_job_id(job_id) + ".json")


def result_path(state_dir: str, job_id: str) -> str:
    return os.path.join(state_dir, RESULTS_DIR, _check_job_id(job_id) + ".json")


def submit_job(state_dir: str, spec: dict) -> str:
    """Publish one job submission; returns its ``job_id``.

    ``spec`` needs at least ``input`` (a corpus directory). The file
    lands atomically in the inbox; the daemon journals ``submitted``
    before deleting it, so a submission can never be lost to a crash —
    at worst it is re-read and deduplicated by id.
    """
    if not isinstance(spec, dict) or not spec.get("input"):
        raise ConfigurationError(
            "job spec must be an object with an 'input' corpus directory"
        )
    spec = dict(spec)
    job_id = _check_job_id(str(spec.get("job_id") or new_job_id()))
    spec["job_id"] = job_id
    os.makedirs(os.path.join(state_dir, INBOX_DIR), exist_ok=True)
    atomic_write_json(inbox_path(state_dir, job_id), spec)
    return job_id


def read_result(state_dir: str, job_id: str) -> dict | None:
    """The completed job's result payload, or ``None`` if not (yet) there."""
    try:
        with open(result_path(state_dir, job_id), "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def job_status(
    state_dir: str, job_id: str | None = None
) -> dict[str, JobView] | JobView | None:
    """Replay the journal: all jobs, or one job's view (``None`` if unknown)."""
    records, _problems = read_journal(state_dir)
    jobs = replay(records)
    if job_id is None:
        return jobs
    return jobs.get(job_id)


def request_drain(state_dir: str) -> str:
    """Ask a running daemon to drain in-flight jobs and exit."""
    control = os.path.join(state_dir, CONTROL_DIR)
    os.makedirs(control, exist_ok=True)
    marker = os.path.join(control, DRAIN_MARKER)
    with open(marker, "w", encoding="utf-8") as handle:
        handle.write(f"{time.time()}\n")
    return marker


def drain_requested(state_dir: str) -> bool:
    return os.path.exists(os.path.join(state_dir, CONTROL_DIR, DRAIN_MARKER))


def clear_drain(state_dir: str) -> None:
    try:
        os.unlink(os.path.join(state_dir, CONTROL_DIR, DRAIN_MARKER))
    except OSError:
        pass


def write_heartbeat(state_dir: str, state: str, seq: int) -> None:
    """Atomically refresh the liveness beacon (wall-clock stamped)."""
    atomic_write_json(
        os.path.join(state_dir, HEARTBEAT_FILE),
        {"pid": os.getpid(), "ts": time.time(), "seq": seq, "state": state},
    )


def read_heartbeat(state_dir: str) -> dict | None:
    try:
        path = os.path.join(state_dir, HEARTBEAT_FILE)
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict):
            return None
        return payload
    except (OSError, ValueError):
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


def heartbeat_stale(state_dir: str, stale_after_s: float) -> bool:
    """True when no live daemon owns this state dir.

    A daemon is live when its heartbeat is fresh *and* its pid exists;
    everything else — no heartbeat, stopped state, dead pid, or a beacon
    older than ``stale_after_s`` — reads as stale, which is what lets a
    restart take over after SIGKILL.
    """
    beat = read_heartbeat(state_dir)
    if beat is None or beat.get("state") == "stopped":
        return True
    pid = beat.get("pid")
    if not isinstance(pid, int) or not _pid_alive(pid):
        return True
    ts = beat.get("ts")
    if not isinstance(ts, (int, float)):
        return True
    return (time.time() - ts) > stale_after_s
