"""Resilient pipeline-as-a-service: durable queue, admission, recovery.

``repro.serve`` turns the one-shot pipeline into a long-lived service:
a daemon (:class:`~repro.serve.daemon.ServeDaemon`) watches a state
directory for job submissions, multiplexes them over shared warm worker
pools, and records every lifecycle transition in a durable journal
(:class:`~repro.serve.journal.JobJournal`) so a killed daemon restarted
over the same state directory recovers queued and orphaned jobs exactly
once. See ``docs/serving.md`` for the state machine, the admission /
backpressure policy, and the crash-recovery proof.
"""

from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.serve.journal import (
    JOURNAL_FILE,
    JOURNAL_SCHEMA,
    JobJournal,
    JobView,
    JournalCorruptionWarning,
    read_journal,
    replay,
)
from repro.serve.transport import (
    job_status,
    read_heartbeat,
    read_result,
    request_drain,
    submit_job,
)

__all__ = [
    "JOURNAL_FILE",
    "JOURNAL_SCHEMA",
    "JobJournal",
    "JobView",
    "JournalCorruptionWarning",
    "ServeConfig",
    "ServeDaemon",
    "job_status",
    "read_heartbeat",
    "read_result",
    "read_journal",
    "replay",
    "request_drain",
    "submit_job",
]
