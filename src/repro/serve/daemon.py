"""The serve daemon: admission control, warm pools, crash recovery.

One :class:`ServeDaemon` owns a state directory
(:mod:`repro.serve.transport` layout). Its main loop scans the inbox,
journals and admits (or sheds) each submission, and a small crew of
executor threads runs admitted jobs over *warm* execution backends that
persist across jobs — the pool-spawn cost is paid once per breaker
replacement, not once per run. Every completed job feeds the persistent
run ledger and :meth:`~repro.plan.CalibrationStore.observe_run`, so the
planner's constants sharpen under live traffic.

Reliability stance (proved by the crash-matrix test and the CI smoke):

* **exactly-once** — the durable ``done`` append is the commit point;
  recovery replays the journal and re-runs only jobs without a terminal
  record, and deterministic pipelines make the re-run bit-identical;
* **backpressure** — a bounded queue sheds with a recorded reason once
  depth or (when calibration exists) predicted cost exceeds budget;
* **isolation** — a poisoned or crashing job fails alone: its error is
  journaled, its broken pool is replaced, and a circuit breaker trips
  the daemon into drain mode only after repeated pool losses;
* **graceful lifecycle** — SIGTERM (or a drain marker) stops admission,
  lets in-flight jobs finish under a deadline, journals ``shutdown``,
  and re-delivers the signal (the ShmPlane handler idiom); queued jobs
  stay ``admitted`` in the journal and are recovered on the next start.

``REPRO_SERVE_KILL_AT={queued,admitted,running,completing}`` arms a
deterministic ``os._exit`` immediately after the corresponding journal
append (once per state dir, marker-guarded) — the hook the crash matrix
drives, in the spirit of :mod:`repro.exec.faultinject`.
"""

from __future__ import annotations

import json
import os
import queue
import signal
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, ReproError
from repro.exec.process import BrokenProcessPool, make_backend
from repro.exec.resilience import ResilienceConfig, RetryPolicy
from repro.io.atomic import atomic_write_json
from repro.io.corpus_io import load_corpus
from repro.io.storage import FsStorage
from repro.obs.ledger import RunLedger
from repro.ops.kmeans import KMeansOperator
from repro.ops.tfidf import TfIdfOperator
from repro.plan.calibration import CalibrationStore
from repro.plan.planner import AdaptivePlanner
from repro.serve import transport
from repro.serve.journal import JobJournal, JobView, read_journal, replay

__all__ = ["ServeConfig", "ServeDaemon", "CRASH_EXIT_CODE", "KILL_STAGES"]

#: Exit code of an armed crash (mirrors ``repro.exec.faultinject``).
CRASH_EXIT_CODE = 86

#: Lifecycle stages at which ``REPRO_SERVE_KILL_AT`` can fire: right
#: after the matching journal append (``completing`` = result file
#: written, ``done`` not yet appended — the nastiest window).
KILL_STAGES = ("queued", "admitted", "running", "completing")

_KILL_ENV = "REPRO_SERVE_KILL_AT"
_KILLPOINTS_DIR = "killpoints"


@dataclass
class ServeConfig:
    """Policy knobs for one daemon. Defaults favor small test rigs."""

    state: str
    backend: str = "threads"
    workers: int = 2
    executors: int = 1
    #: Admission: queue depth budget (queued, not yet running).
    max_depth: int = 8
    #: Admission: total predicted seconds of queued work tolerated; only
    #: enforced when a calibration store can actually price a job.
    cost_budget_s: float | None = None
    #: Per-job deadline, enforced phase-granularly via the resilient
    #: backend's ``phase_timeout_s``; ``None`` waits forever.
    job_timeout_s: float | None = None
    #: Run attempts per job (first try + recoveries) before ``failed``.
    max_attempts: int = 3
    #: Pool losses tolerated before the circuit breaker trips to drain.
    max_pool_losses: int = 3
    drain_deadline_s: float = 10.0
    heartbeat_s: float = 0.5
    #: Heartbeat age beyond which a daemon is presumed dead (orphan
    #: detection and lock takeover both key off this).
    stale_after_s: float = 5.0
    poll_s: float = 0.05
    #: Exit once inbox + queue + executors have been idle this long
    #: (``None`` = run until drained/signalled). Test/CI convenience.
    idle_exit_s: float | None = None
    #: Calibration store path — loaded when present, observed into as
    #: jobs complete, saved on shutdown. Default lives in the state dir.
    calibration: str | None = None
    ledger: str | None = None
    #: ``"retry"`` re-runs orphans (attempt budget permitting);
    #: ``"fail"`` marks them failed on recovery.
    orphan_policy: str = "retry"

    def __post_init__(self) -> None:
        if not self.state:
            raise ConfigurationError("serve state directory must be non-empty")
        if self.max_depth < 1:
            raise ConfigurationError("max_depth must be >= 1")
        if self.executors < 1:
            raise ConfigurationError("executors must be >= 1")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.orphan_policy not in ("retry", "fail"):
            raise ConfigurationError(
                f"orphan_policy must be 'retry' or 'fail', "
                f"got {self.orphan_policy!r}"
            )

    @property
    def calibration_path(self) -> str:
        return self.calibration or os.path.join(self.state, "calibration.json")

    @property
    def ledger_path(self) -> str:
        return self.ledger or os.path.join(self.state, "ledger")


@dataclass
class _QueuedJob:
    job_id: str
    spec: dict
    attempt: int = 0
    cost_s: float | None = None


@dataclass
class ServeStats:
    done: int = 0
    failed: int = 0
    shed: int = 0
    recovered: int = 0
    pool_losses: int = 0

    def as_dict(self) -> dict:
        return {
            "done": self.done,
            "failed": self.failed,
            "shed": self.shed,
            "recovered": self.recovered,
            "pool_losses": self.pool_losses,
        }


class ServeDaemon:
    """Run loop + policy around one serve state directory."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.state_dir = config.state
        os.makedirs(os.path.join(self.state_dir, transport.INBOX_DIR),
                    exist_ok=True)
        os.makedirs(os.path.join(self.state_dir, transport.RESULTS_DIR),
                    exist_ok=True)
        os.makedirs(os.path.join(self.state_dir, _KILLPOINTS_DIR),
                    exist_ok=True)
        self.journal = JobJournal(self.state_dir)
        self.ledger = RunLedger(config.ledger_path)
        self.stats = ServeStats()
        self._queue: queue.Queue[_QueuedJob] = queue.Queue()
        self._known: set[str] = set()
        self._state_lock = threading.Lock()
        self._queued_cost = 0.0
        self._queued_depth = 0
        self._inflight = 0
        self._draining = False
        self._drain_reason: str | None = None
        self._stop = threading.Event()
        #: Set on SIGTERM / client drain: executors finish their current
        #: job but pick up nothing new (queued work stays ``admitted`` in
        #: the journal for the next daemon). Breaker drain does *not* set
        #: it — the backlog was already accepted and still runs.
        self._halt_new = threading.Event()
        self._term_signum: int | None = None
        self._prev_handlers: dict[int, object] = {}
        self._beat_seq = 0
        self._last_beat = 0.0
        self._last_activity = time.monotonic()
        self._calib_lock = threading.Lock()
        self._calib: CalibrationStore | None = None
        if os.path.isfile(config.calibration_path):
            try:
                self._calib = CalibrationStore.load(config.calibration_path)
            except ConfigurationError:
                # A corrupt store must not keep the service down; pricing
                # is simply unavailable until jobs rebuild it.
                self._calib = None

    # -- crash hook ---------------------------------------------------------------

    def _maybe_kill(self, stage: str) -> None:
        """Deterministic SIGKILL-equivalent for the crash matrix.

        Fires once per (state dir, stage): the marker file is created
        and fsynced *before* ``os._exit``, so a restarted daemon with
        the same environment sails past the stage it already died at.
        """
        if os.environ.get(_KILL_ENV) != stage:
            return
        marker = os.path.join(self.state_dir, _KILLPOINTS_DIR, stage)
        if os.path.exists(marker):
            return
        fd = os.open(marker, os.O_WRONLY | os.O_CREAT, 0o644)
        try:
            os.write(fd, f"{os.getpid()}\n".encode("ascii"))
            os.fsync(fd)
        finally:
            os.close(fd)
        os._exit(CRASH_EXIT_CODE)

    # -- admission ----------------------------------------------------------------

    def _estimate_cost_s(self, spec: dict) -> float | None:
        """Predicted job seconds from live calibration; ``None`` = unpriced."""
        store = self._calib
        if store is None or self.config.cost_budget_s is None:
            return None
        try:
            names = [
                name for name in os.listdir(spec["input"])
                if not name.startswith(".")
            ]
            if not names:
                return None
            plan = AdaptivePlanner(store).plan(
                n_docs=len(names),
                kmeans_iters=int(spec.get("iters", 10)),
            )
            return plan.predicted_total_s
        except (ReproError, OSError, ValueError, TypeError):
            return None

    def _shed(self, job_id: str, reason: str) -> None:
        self.journal.job_event(job_id, "shed", reason=reason)
        self.stats.shed += 1

    def _admit(self, job: _QueuedJob, *, journal: bool = True) -> bool:
        """Admission control: journal ``admitted`` (or ``shed``) + enqueue.

        ``journal=False`` re-enqueues recovered work that is already
        ``admitted``/``requeued`` in the journal — recovery must not
        re-shed a job the previous daemon already accepted.
        """
        if journal:
            if self._draining:
                self._shed(job.job_id, f"draining ({self._drain_reason})")
                return False
            if self._queued_depth >= self.config.max_depth:
                self._shed(
                    job.job_id,
                    f"queue-full (depth {self._queued_depth} >= "
                    f"{self.config.max_depth})",
                )
                return False
            job.cost_s = self._estimate_cost_s(job.spec)
            budget = self.config.cost_budget_s
            if (
                job.cost_s is not None
                and budget is not None
                and self._queued_cost + job.cost_s > budget
            ):
                self._shed(
                    job.job_id,
                    f"over-budget (queued {self._queued_cost:.3f}s + "
                    f"predicted {job.cost_s:.3f}s > {budget:.3f}s)",
                )
                return False
            self.journal.job_event(
                job.job_id, "admitted", cost_s=job.cost_s, attempt=job.attempt
            )
            self._maybe_kill("admitted")
        with self._state_lock:
            self._queued_depth += 1
            self._queued_cost += job.cost_s or 0.0
        self._queue.put(job)
        self._last_activity = time.monotonic()
        return True

    def _scan_inbox(self) -> None:
        inbox = os.path.join(self.state_dir, transport.INBOX_DIR)
        try:
            names = sorted(os.listdir(inbox))
        except OSError:
            return
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(inbox, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    spec = json.load(handle)
                if not isinstance(spec, dict) or not spec.get("input"):
                    raise ValueError("spec must be an object with 'input'")
            except (OSError, ValueError) as exc:
                # Unreadable submission: quarantine the file so the scan
                # does not spin on it, and leave a diagnostic breadcrumb.
                try:
                    os.replace(path, path + ".bad")
                except OSError:
                    pass
                job_id = name[: -len(".json")]
                self.journal.job_event(
                    job_id, "submitted", spec={"invalid": True}
                )
                self.journal.job_event(
                    job_id, "shed", reason=f"unreadable submission: {exc}"
                )
                self.stats.shed += 1
                continue
            job_id = str(spec.get("job_id") or name[: -len(".json")])
            if job_id in self._known:
                # Duplicate or crash-survivor: already journaled.
                try:
                    os.unlink(path)
                except OSError:
                    pass
                continue
            self._known.add(job_id)
            self.journal.job_event(job_id, "submitted", spec=spec)
            self._maybe_kill("queued")
            # The submitted append is durable — now the inbox copy is
            # redundant and may go (dedupe handles a crash in between).
            try:
                os.unlink(path)
            except OSError:
                pass
            self._admit(_QueuedJob(job_id=job_id, spec=spec))

    # -- recovery -----------------------------------------------------------------

    def recover(self) -> dict:
        """Replay the journal and re-own every non-terminal job.

        Queued jobs (``submitted``/``admitted``/``requeued``) re-enter
        the in-memory queue without new records — their journal state is
        still accurate. ``running`` jobs are orphans (their daemon died
        mid-run: the stale heartbeat that let this process take the lock
        proves it) and are ``requeued`` or ``failed`` per policy.
        """
        records, problems = read_journal(self.state_dir)
        jobs = replay(records)
        queued = orphaned = failed = 0
        for view in sorted(jobs.values(), key=lambda v: v.submitted_ts):
            self._known.add(view.job_id)
            if view.terminal:
                continue
            if view.state == "running":
                orphaned += 1
                next_attempt = view.attempt  # re-run reuses the attempt slot
                if (
                    self.config.orphan_policy == "fail"
                    or view.attempt >= self.config.max_attempts
                ):
                    self.journal.job_event(
                        view.job_id, "failed", attempt=view.attempt,
                        error=(
                            "orphaned mid-run (stale heartbeat) and "
                            f"{'policy=fail' if self.config.orphan_policy == 'fail' else 'attempt budget spent'}"
                        ),
                    )
                    self.stats.failed += 1
                    failed += 1
                    continue
                self.journal.job_event(
                    view.job_id, "requeued", attempt=next_attempt,
                    reason="orphaned mid-run (stale heartbeat)",
                )
                self._admit(
                    _QueuedJob(view.job_id, view.spec, attempt=next_attempt),
                    journal=False,
                )
            elif view.state == "submitted":
                # Crashed between the submitted append and admission:
                # run admission now (it was never decided).
                queued += 1
                self._admit(_QueuedJob(view.job_id, view.spec))
            else:  # admitted / requeued — still queued, decision stands
                queued += 1
                self._admit(
                    _QueuedJob(view.job_id, view.spec, attempt=view.attempt),
                    journal=False,
                )
        recovered = queued + orphaned
        self.stats.recovered += recovered
        if recovered or failed or problems:
            self.journal.daemon_event(
                "recovered", queued=queued, orphaned=orphaned,
                failed=failed, journal_problems=len(problems),
            )
        return {
            "queued": queued, "orphaned": orphaned,
            "failed": failed, "problems": problems,
        }

    # -- execution ----------------------------------------------------------------

    def _resilience(self, spec: dict) -> ResilienceConfig:
        timeout = spec.get("timeout_s", self.config.job_timeout_s)
        return ResilienceConfig(
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.0),
            phase_timeout_s=float(timeout) if timeout else None,
            on_poison="quarantine",
        )

    def _warm_backend(self, cache: dict, spec: dict):
        name = str(spec.get("backend") or self.config.backend)
        workers = int(spec.get("workers") or self.config.workers)
        timeout = spec.get("timeout_s", self.config.job_timeout_s)
        key = (name, workers, timeout)
        backend = cache.get(key)
        if backend is None:
            backend = make_backend(name, workers,
                                   resilience=self._resilience(spec))
            cache[key] = backend
        return key, backend

    def _run_job(self, job: _QueuedJob, backend) -> dict:
        spec = job.spec
        corpus = load_corpus(
            FsStorage(str(spec["input"])), "", name=job.job_id
        )
        if len(corpus) == 0:
            raise ConfigurationError(f"empty corpus at {spec['input']!r}")
        tfidf = TfIdfOperator(min_df=int(spec.get("min_df", 1)))
        kmeans = KMeansOperator(
            n_clusters=int(spec.get("clusters", 8)),
            max_iters=int(spec.get("iters", 10)),
            seed=int(spec.get("seed", 0)),
        )
        from repro.bench.oocore_child import output_digest
        from repro.core.pipeline import run_pipeline

        result = run_pipeline(
            corpus, backend=backend, tfidf=tfidf, kmeans=kmeans,
            trace=True, ledger=self.ledger,
        )
        digest = output_digest(result)
        record = result.to_record()
        payload = {
            "job_id": job.job_id,
            "attempt": job.attempt + 1,
            "digest": digest,
            "n_docs": len(corpus),
            "total_s": record["total_s"],
            "phases": record["phases"],
            "backend": record["backend"],
            "quarantine": record["quarantine"],
            "downgrades": record["downgrades"],
        }
        with self._calib_lock:
            store = self._calib
            if store is None:
                store = self._calib = CalibrationStore()
            store.observe_run(result, n_docs=len(corpus))
        return payload

    def _executor_loop(self, index: int) -> None:
        warm: dict[tuple, object] = {}
        try:
            while not self._stop.is_set():
                if self._halt_new.is_set():
                    break
                try:
                    job = self._queue.get(timeout=self.config.poll_s)
                except queue.Empty:
                    continue
                with self._state_lock:
                    self._queued_depth -= 1
                    self._queued_cost = max(
                        0.0, self._queued_cost - (job.cost_s or 0.0)
                    )
                    self._inflight += 1
                try:
                    self._execute(job, warm)
                finally:
                    with self._state_lock:
                        self._inflight -= 1
                    self._last_activity = time.monotonic()
        finally:
            for backend in warm.values():
                try:
                    backend.close()
                except Exception:
                    pass

    def _execute(self, job: _QueuedJob, warm: dict) -> None:
        attempt = job.attempt + 1
        job.attempt = attempt
        self.journal.job_event(job.job_id, "running", attempt=attempt)
        self._maybe_kill("running")
        key = None
        try:
            key, backend = self._warm_backend(warm, job.spec)
            payload = self._run_job(job, backend)
        except BrokenProcessPool as exc:
            # The warm pool died under this job. Replace the pool, bill
            # a loss toward the breaker, and retry the job if budget
            # remains — one crashing job must not take the service down.
            if key is not None:
                broken = warm.pop(key, None)
                if broken is not None:
                    try:
                        broken.close()
                    except Exception:
                        pass
            self.stats.pool_losses += 1
            if self.stats.pool_losses >= self.config.max_pool_losses:
                self._trip_breaker(str(exc))
            if attempt < self.config.max_attempts:
                self.journal.job_event(
                    job.job_id, "requeued", attempt=attempt,
                    reason=f"pool loss: {exc}",
                )
                self._admit(job, journal=False)
            else:
                self.journal.job_event(
                    job.job_id, "failed", attempt=attempt,
                    error=f"pool loss: {exc}",
                )
                self.stats.failed += 1
            return
        except Exception as exc:  # per-job isolation: journal and move on
            self.journal.job_event(
                job.job_id, "failed", attempt=attempt,
                error=f"{type(exc).__name__}: {exc}",
            )
            self.stats.failed += 1
            return
        atomic_write_json(
            transport.result_path(self.state_dir, job.job_id), payload
        )
        self._maybe_kill("completing")
        quarantine = payload.get("quarantine") or {}
        self.journal.job_event(
            job.job_id, "done", attempt=attempt,
            digest=payload["digest"], total_s=payload["total_s"],
            quarantined=len(quarantine.get("doc_ids", ())),
        )
        self.stats.done += 1

    def _trip_breaker(self, reason: str) -> None:
        if self._draining:
            return
        self._draining = True
        self._drain_reason = f"circuit breaker: {reason}"
        self.journal.daemon_event(
            "breaker-open", reason=reason,
            pool_losses=self.stats.pool_losses,
        )

    # -- lifecycle ----------------------------------------------------------------

    def _acquire_lock(self) -> None:
        lock_path = os.path.join(self.state_dir, transport.LOCK_FILE)
        if os.path.exists(lock_path) and not transport.heartbeat_stale(
            self.state_dir, self.config.stale_after_s
        ):
            beat = transport.read_heartbeat(self.state_dir) or {}
            raise ConfigurationError(
                f"another daemon (pid {beat.get('pid')}) is live on "
                f"{self.state_dir}; stop it or wait for its heartbeat "
                f"to go stale"
            )
        atomic_write_json(
            lock_path, {"pid": os.getpid(), "started": time.time()}
        )

    def _release_lock(self) -> None:
        try:
            os.unlink(os.path.join(self.state_dir, transport.LOCK_FILE))
        except OSError:
            pass

    def _on_term(self, signum, frame) -> None:
        self._term_signum = signum
        if not self._draining:
            self._draining = True
            self._drain_reason = f"signal {signum}"
        self._halt_new.set()

    def _install_signal_handlers(self) -> None:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._prev_handlers[signum] = signal.signal(
                    signum, self._on_term
                )
            except (ValueError, OSError):  # non-main thread / platform
                pass

    def _restore_signal_handlers(self) -> None:
        for signum, prev in self._prev_handlers.items():
            try:
                signal.signal(signum, prev)  # type: ignore[arg-type]
            except (ValueError, OSError, TypeError):
                pass

    def _beat(self, state: str, *, force: bool = False) -> None:
        now = time.monotonic()
        if force or now - self._last_beat >= self.config.heartbeat_s:
            self._beat_seq += 1
            transport.write_heartbeat(self.state_dir, state, self._beat_seq)
            self._last_beat = now

    def _idle(self) -> bool:
        with self._state_lock:
            busy = self._queued_depth > 0 or self._inflight > 0
        if busy:
            return False
        inbox = os.path.join(self.state_dir, transport.INBOX_DIR)
        try:
            if any(n.endswith(".json") for n in os.listdir(inbox)):
                return False
        except OSError:
            pass
        return True

    def run(self) -> int:
        """Main loop; returns an exit code. Blocks until drained/signalled."""
        self._acquire_lock()
        self._install_signal_handlers()
        exit_code = 0
        try:
            self._beat("starting", force=True)
            recovery = self.recover()
            self.journal.daemon_event(
                "start",
                backend=self.config.backend,
                workers=self.config.workers,
                executors=self.config.executors,
                max_depth=self.config.max_depth,
                cost_budget_s=self.config.cost_budget_s,
                recovered=recovery["queued"] + recovery["orphaned"],
            )
            threads = [
                threading.Thread(
                    target=self._executor_loop, args=(i,),
                    name=f"serve-exec-{i}", daemon=True,
                )
                for i in range(self.config.executors)
            ]
            for thread in threads:
                thread.start()

            while True:
                if transport.drain_requested(self.state_dir):
                    if not self._draining:
                        self._draining = True
                        self._drain_reason = "drain requested"
                    self._halt_new.set()
                    break
                if self._term_signum is not None:
                    break
                if not self._draining:
                    self._scan_inbox()
                elif self._idle():
                    break  # breaker-drain finished its backlog
                self._beat("draining" if self._draining else "serving")
                if (
                    self.config.idle_exit_s is not None
                    and self._idle()
                    and time.monotonic() - self._last_activity
                    >= self.config.idle_exit_s
                ):
                    self._drain_reason = self._drain_reason or "idle"
                    break
                time.sleep(self.config.poll_s)

            # Drain: no new admissions; in-flight jobs get the deadline.
            self.journal.daemon_event(
                "drain", reason=self._drain_reason or "stop",
                deadline_s=self.config.drain_deadline_s,
            )
            deadline = time.monotonic() + self.config.drain_deadline_s
            while time.monotonic() < deadline:
                with self._state_lock:
                    if self._inflight == 0:
                        break
                self._beat("draining")
                time.sleep(self.config.poll_s)
            self._stop.set()
            for thread in threads:
                thread.join(timeout=max(0.0, deadline - time.monotonic()) + 1.0)
            with self._calib_lock:
                if self._calib is not None and self._calib.samples > 0:
                    try:
                        self._calib.save(self.config.calibration_path)
                    except OSError:
                        pass
            with self._state_lock:
                left_inflight = self._inflight
            self.journal.daemon_event(
                "shutdown", reason=self._drain_reason or "stop",
                stats=self.stats.as_dict(), inflight_abandoned=left_inflight,
            )
            transport.clear_drain(self.state_dir)
            self._beat("stopped", force=True)
        finally:
            self._release_lock()
            self._restore_signal_handlers()
        if self._term_signum is not None:
            # Re-deliver with the original disposition restored, so the
            # process reports the honest signal exit (ShmPlane idiom).
            os.kill(os.getpid(), self._term_signum)
        return exit_code
