"""Durable job journal: the service's single source of truth.

Every lifecycle transition of every job — ``submitted`` → ``admitted``
(or ``shed``) → ``running`` → ``done``/``failed``, plus ``requeued`` for
recovered work — is one JSONL record appended to
``<state dir>/journal.jsonl`` with a single ``O_APPEND`` write followed
by ``fsync``, the same durability discipline as
:class:`repro.obs.ledger.RunLedger`: concurrent writers never interleave
mid-record, and a crash can at worst tear the final line, which
:func:`read_journal` skips *loudly* without failing replay.

The ``done`` append is the commit point for exactly-once completion: a
restarted daemon re-runs only jobs without a terminal record, and
because pipeline runs are deterministic, a re-run after a crash between
"result written" and "done appended" reproduces the result bit for bit.
:func:`replay` folds the records into per-job current state; the strict
CI stance (every transition legal, exactly one terminal record) lives in
``tools/validate_journal.py``.
"""

from __future__ import annotations

import json
import os
import threading
import time
import warnings
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.obs.ledger import WallAnchor

__all__ = [
    "JOURNAL_SCHEMA",
    "JOURNAL_FILE",
    "JOB_EVENTS",
    "DAEMON_EVENTS",
    "TERMINAL_EVENTS",
    "LEGAL_TRANSITIONS",
    "JournalCorruptionWarning",
    "JobJournal",
    "JobView",
    "read_journal",
    "replay",
]

#: Version stamped on every record; readers skip newer schemas loudly.
JOURNAL_SCHEMA = 1

#: The append-only journal file inside a serve state directory.
JOURNAL_FILE = "journal.jsonl"

#: Job lifecycle events (``kind: "job"`` records).
JOB_EVENTS = (
    "submitted",   # accepted from the inbox; spec recorded
    "admitted",    # passed admission control into the bounded queue
    "shed",        # rejected by admission control (terminal), with reason
    "running",     # an executor picked the job up (attempt recorded)
    "requeued",    # recovered orphan / pool loss sent back to the queue
    "done",        # completed; digest + timings recorded (terminal)
    "failed",      # raised / timed out / orphan budget spent (terminal)
)

#: Daemon lifecycle events (``kind: "daemon"`` records) — bookkeeping
#: for operators; replay ignores them.
DAEMON_EVENTS = ("start", "recovered", "breaker-open", "drain", "shutdown")

#: Events after which a job must never run again.
TERMINAL_EVENTS = frozenset({"shed", "done", "failed"})

#: state -> events legally appendable from it (``None`` = no prior
#: record). ``validate_journal`` enforces this; ``replay`` tolerates
#: damage because the reader must never die on a torn journal.
LEGAL_TRANSITIONS: dict[str | None, frozenset] = {
    None: frozenset({"submitted"}),
    "submitted": frozenset({"admitted", "shed"}),
    "admitted": frozenset({"running", "requeued", "failed"}),
    "running": frozenset({"done", "failed", "requeued"}),
    "requeued": frozenset({"running", "requeued", "failed"}),
}

#: Minimum gap between consecutive journal timestamps (see
#: ``repro.obs.ledger._TS_STEP`` for the rounding argument).
_TS_STEP = 1e-6

#: Keys every schema-1 journal record must carry.
_REQUIRED_KEYS = ("schema", "kind", "event", "ts", "pid")


class JournalCorruptionWarning(UserWarning):
    """A journal line was skipped (truncated write or foreign content)."""


class JobJournal:
    """Writer for one journal file (created on first append).

    Append methods are thread-safe (executor threads and the admission
    loop share one journal) and each performs exactly one ``O_APPEND``
    write + ``fsync``, so a SIGKILL can only tear the final line.
    Timestamps are wall-anchored and strictly increasing across the
    writer's lifetime — the ordering replay sorts by.
    """

    def __init__(self, root: str) -> None:
        if not root:
            raise ConfigurationError("journal directory must be a non-empty path")
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.anchor = WallAnchor.capture()
        self.last_append_s = 0.0
        self._lock = threading.Lock()
        self._last_ts = 0.0

    @property
    def path(self) -> str:
        return os.path.join(self.root, JOURNAL_FILE)

    # -- writing -----------------------------------------------------------------

    def _stamp(self) -> float:
        ts = max(self.anchor.now(), self._last_ts + _TS_STEP)
        self._last_ts = ts
        return ts

    def _append(self, record: dict) -> dict:
        t0 = time.perf_counter()
        with self._lock:
            record = dict(record)
            record["schema"] = JOURNAL_SCHEMA
            record["ts"] = self._stamp()
            record["pid"] = os.getpid()
            payload = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
            fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(fd, payload)
                os.fsync(fd)
            finally:
                os.close(fd)
        self.last_append_s = time.perf_counter() - t0
        return record

    def job_event(self, job_id: str, event: str, **fields) -> dict:
        """Append one job transition; returns the record as written."""
        if event not in JOB_EVENTS:
            raise ConfigurationError(
                f"unknown job event {event!r}; expected one of {JOB_EVENTS}"
            )
        if not job_id:
            raise ConfigurationError("job_id must be a non-empty string")
        record = {"kind": "job", "job_id": job_id, "event": event}
        record.update(fields)
        return self._append(record)

    def daemon_event(self, event: str, **fields) -> dict:
        """Append one daemon lifecycle record (start/recovered/…)."""
        if event not in DAEMON_EVENTS:
            raise ConfigurationError(
                f"unknown daemon event {event!r}; expected one of {DAEMON_EVENTS}"
            )
        record = {"kind": "daemon", "event": event}
        record.update(fields)
        return self._append(record)


# -- reading ---------------------------------------------------------------------


@dataclass
class JobView:
    """Current state of one job, folded from its journal records."""

    job_id: str
    state: str = "submitted"
    spec: dict = field(default_factory=dict)
    attempt: int = 0
    submitted_ts: float = 0.0
    updated_ts: float = 0.0
    error: str | None = None
    reason: str | None = None
    digest: str | None = None
    total_s: float | None = None
    events: list[str] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_EVENTS


def _loud(problems: list[str], message: str) -> None:
    problems.append(message)
    warnings.warn(message, JournalCorruptionWarning, stacklevel=3)


def read_journal(root: str) -> tuple[list[dict], list[str]]:
    """Load every journal record under a state directory.

    Returns ``(records, problems)``: records sorted by ``ts``; problems
    describing every line skipped *loudly* — corrupt/truncated (a torn
    final append), newer-schema, or missing required keys. A missing
    directory or file is an empty history. Mirrors
    :func:`repro.obs.ledger.read_ledger`.
    """
    records: list[dict] = []
    problems: list[str] = []
    path = os.path.join(root, JOURNAL_FILE)
    if not os.path.isfile(path):
        return records, problems
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as exc:
        _loud(problems, f"{path}: unreadable journal file skipped: {exc}")
        return records, problems
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            _loud(
                problems,
                f"{path}:{lineno}: skipping corrupt journal line "
                f"(truncated append? delete the damaged tail to silence "
                f"this warning)",
            )
            continue
        if not isinstance(record, dict):
            _loud(problems, f"{path}:{lineno}: skipping non-object journal line")
            continue
        schema = record.get("schema")
        if not isinstance(schema, int) or schema < 1:
            _loud(
                problems,
                f"{path}:{lineno}: skipping record without an integer "
                f"'schema' (not a journal record?)",
            )
            continue
        if schema > JOURNAL_SCHEMA:
            _loud(
                problems,
                f"{path}:{lineno}: skipping schema-{schema} record written "
                f"by a newer version (this reader understands schema <= "
                f"{JOURNAL_SCHEMA})",
            )
            continue
        missing = [key for key in _REQUIRED_KEYS if key not in record]
        if missing:
            _loud(
                problems,
                f"{path}:{lineno}: skipping record lacking required "
                f"key(s) {', '.join(missing)}",
            )
            continue
        records.append(record)
    records.sort(key=lambda r: r["ts"])
    return records, problems


def replay(records: list[dict]) -> dict[str, JobView]:
    """Fold journal records into per-job current state.

    Tolerant by design (the strict stance lives in
    ``tools/validate_journal.py``): an out-of-order or repeated event
    still moves the job to that event's state — after a crash the
    journal is the only truth, and the daemon must be able to recover
    from whatever survived. A terminal state is sticky: once ``done``,
    ``failed``, or ``shed`` is seen, later records cannot resurrect the
    job, which is what makes replay the exactly-once gate.
    """
    jobs: dict[str, JobView] = {}
    for record in records:
        if record.get("kind") != "job":
            continue
        event = record.get("event")
        job_id = record.get("job_id")
        if event not in JOB_EVENTS or not isinstance(job_id, str) or not job_id:
            continue
        view = jobs.get(job_id)
        if view is None:
            view = jobs[job_id] = JobView(
                job_id=job_id, submitted_ts=record["ts"]
            )
        view.events.append(event)
        if view.terminal:
            continue  # terminal is forever
        view.state = event
        view.updated_ts = record["ts"]
        view.attempt = max(view.attempt, int(record.get("attempt", 0) or 0))
        if event == "submitted" and isinstance(record.get("spec"), dict):
            view.spec = record["spec"]
            view.submitted_ts = record["ts"]
        if event == "failed":
            view.error = str(record.get("error", ""))
        if event in ("shed", "requeued"):
            view.reason = str(record.get("reason", ""))
        if event == "done":
            view.digest = record.get("digest")
            total = record.get("total_s")
            view.total_s = float(total) if total is not None else None
    return jobs
