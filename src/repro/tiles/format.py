"""Binary on-disk tile format for CSR row ranges.

A *tile* is one contiguous row range ``[row_start, row_start + n_rows)``
of a CSR matrix, stored as a single binary file that can be mapped
read-only and viewed as numpy arrays without a copy — the intermediate
format that replaces ARFF text for spilled matrices (the paper's Figure 3
singles ARFF materialization out as the dominant workflow cost; a tile
is written once, byte-exact, and read by ``mmap`` instead of a parser).

Layout::

    header   48 bytes, little-endian, see HEADER below
    indptr   int64[n_rows + 1]   tile-local (indptr[0] == 0)
    indices  int64[nnz]          16-byte aligned
    data     float64[nnz]        16-byte aligned
    sq_norms float64[n_rows]     16-byte aligned

``sq_norms[i]`` is ``float(v @ v)`` of row ``i``'s value vector, computed
at write time with the exact arithmetic :class:`repro.ops.kmeans` uses
for its in-memory ``_Prepared`` copies — so a streaming k-means pass
reads per-row norms from the tile instead of re-deriving them each
iteration, and gets bit-identical doubles.

The header carries a CRC-32 of the payload region; :func:`open_tile`
verifies it on demand (``verify=True``) and raises
:class:`~repro.errors.TileError` on any mismatch, truncation, or
malformed field. Writes are atomic (same-directory temp file +
``os.replace``), so a crash never leaves a half-written tile under a
valid name.
"""

from __future__ import annotations

import mmap
import os
import struct
import tempfile
import zlib

import numpy as np

from repro.errors import TileError

__all__ = [
    "TILE_MAGIC",
    "TILE_VERSION",
    "HEADER",
    "TileHeader",
    "TileView",
    "tile_nbytes",
    "write_tile",
    "open_tile",
    "read_header",
]

TILE_MAGIC = b"RTIL"
TILE_VERSION = 1

#: Array dtypes, fixed by the format: indptr/indices int64 ("q"),
#: data/sq_norms float64 ("d"). Stored in the header so a reader can
#: reject tiles written by a future incompatible revision.
_DTYPE_CODES = b"qqdd"

#: magic, version, dtype codes, row_start, n_rows, n_cols, nnz, crc32, pad.
HEADER = struct.Struct("<4sH4sqqqqI2x")

_ALIGN = 16


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _layout(n_rows: int, nnz: int) -> tuple[list[tuple[str, str, int, int]], int]:
    """(name, dtype, offset, count) per array, plus total file size."""
    fields = []
    offset = _aligned(HEADER.size)
    end = offset
    for name, dtype, count in (
        ("indptr", "<i8", n_rows + 1),
        ("indices", "<i8", nnz),
        ("data", "<f8", nnz),
        ("sq_norms", "<f8", n_rows),
    ):
        fields.append((name, dtype, offset, count))
        end = offset + count * 8
        offset = _aligned(end)
    # No padding after the last array: the file ends where the data ends.
    return fields, end


def tile_nbytes(n_rows: int, nnz: int) -> int:
    """Exact on-disk size of a tile with the given shape."""
    return _layout(n_rows, nnz)[1]


class TileHeader:
    """Parsed header fields of one tile file."""

    __slots__ = ("row_start", "n_rows", "n_cols", "nnz", "checksum", "nbytes")

    def __init__(self, row_start, n_rows, n_cols, nnz, checksum):
        self.row_start = row_start
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.nnz = nnz
        self.checksum = checksum
        self.nbytes = tile_nbytes(n_rows, nnz)


def _parse_header(buf: bytes, label: str) -> TileHeader:
    if len(buf) < HEADER.size:
        raise TileError(f"{label}: truncated header ({len(buf)} bytes)")
    magic, version, codes, row_start, n_rows, n_cols, nnz, checksum = (
        HEADER.unpack_from(buf)
    )
    if magic != TILE_MAGIC:
        raise TileError(f"{label}: bad magic {magic!r}")
    if version != TILE_VERSION:
        raise TileError(f"{label}: unsupported tile version {version}")
    if codes != _DTYPE_CODES:
        raise TileError(f"{label}: unsupported dtype codes {codes!r}")
    if n_rows < 0 or nnz < 0 or n_cols < 0 or row_start < 0:
        raise TileError(f"{label}: negative shape field in header")
    return TileHeader(row_start, n_rows, n_cols, nnz, checksum)


def read_header(path: str) -> TileHeader:
    """Parse and validate just the header of ``path``."""
    try:
        with open(path, "rb") as handle:
            buf = handle.read(HEADER.size)
    except OSError as exc:
        raise TileError(f"cannot read tile {path!r}: {exc}") from exc
    return _parse_header(buf, path)


def write_tile(
    path: str,
    row_start: int,
    n_cols: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    sq_norms: np.ndarray,
) -> TileHeader:
    """Atomically write one tile; returns its parsed header.

    Arrays are coerced to the format's fixed dtypes (a no-op copy when
    already int64/float64 contiguous). ``indptr`` must be tile-local:
    ``indptr[0] == 0`` and ``indptr[-1] == len(indices)``.
    """
    indptr = np.ascontiguousarray(indptr, dtype=np.int64)
    indices = np.ascontiguousarray(indices, dtype=np.int64)
    data = np.ascontiguousarray(data, dtype=np.float64)
    sq_norms = np.ascontiguousarray(sq_norms, dtype=np.float64)
    n_rows = len(indptr) - 1
    nnz = len(indices)
    if len(indptr) == 0 or int(indptr[0]) != 0:
        raise TileError(f"tile {path!r}: indptr must be tile-local")
    if int(indptr[-1]) != nnz or len(data) != nnz or len(sq_norms) != n_rows:
        raise TileError(
            f"tile {path!r}: inconsistent arrays "
            f"(indptr[-1]={int(indptr[-1])}, nnz={nnz}, "
            f"data={len(data)}, sq_norms={len(sq_norms)}, rows={n_rows})"
        )

    fields, total = _layout(n_rows, nnz)
    arrays = {"indptr": indptr, "indices": indices,
              "data": data, "sq_norms": sq_norms}
    # CRC over the payload region exactly as laid out on disk, inter-array
    # padding included (it is written as zeros below).
    crc = 0
    cursor = _aligned(HEADER.size)
    for name, _dtype, offset, _count in fields:
        if offset > cursor:
            crc = zlib.crc32(b"\x00" * (offset - cursor), crc)
        blob = arrays[name].tobytes()
        crc = zlib.crc32(blob, crc)
        cursor = offset + len(blob)
    header = HEADER.pack(
        TILE_MAGIC, TILE_VERSION, _DTYPE_CODES,
        row_start, n_rows, n_cols, nnz, crc & 0xFFFFFFFF,
    )

    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(header)
            cursor = HEADER.size
            for name, _dtype, offset, _count in fields:
                if offset > cursor:
                    handle.write(b"\x00" * (offset - cursor))
                blob = arrays[name].tobytes()
                handle.write(blob)
                cursor = offset + len(blob)
            handle.flush()
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    meta = TileHeader(row_start, n_rows, n_cols, nnz, crc & 0xFFFFFFFF)
    assert meta.nbytes == total
    return meta


class TileView:
    """A read-only mmap of one tile file, exposing numpy array views.

    The arrays alias the mapping — zero copies, pages faulted in on
    first touch. ``close()`` drops the views and unmaps; exported views
    that escaped keep the mapping alive until they are garbage collected
    (``BufferError`` from an eager unmap is tolerated, mirroring the shm
    segment release path).
    """

    __slots__ = (
        "header", "indptr", "indices", "data", "sq_norms", "_mmap", "_closed"
    )

    def __init__(self, path: str, verify: bool = False) -> None:
        try:
            with open(path, "rb") as handle:
                size = os.fstat(handle.fileno()).st_size
                if size < HEADER.size:
                    raise TileError(
                        f"{path}: truncated tile ({size} bytes)"
                    )
                mapped = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
        except OSError as exc:
            raise TileError(f"cannot map tile {path!r}: {exc}") from exc
        try:
            header = _parse_header(mapped[: HEADER.size], path)
            if size != header.nbytes:
                raise TileError(
                    f"{path}: size {size} != expected {header.nbytes} "
                    f"for {header.n_rows} rows / {header.nnz} nnz"
                )
            if verify:
                payload_start = _aligned(HEADER.size)
                crc = zlib.crc32(
                    memoryview(mapped)[payload_start:]
                ) & 0xFFFFFFFF
                if crc != header.checksum:
                    raise TileError(
                        f"{path}: checksum mismatch "
                        f"(stored {header.checksum:#010x}, "
                        f"computed {crc:#010x}) — corrupt tile"
                    )
            fields, _total = _layout(header.n_rows, header.nnz)
            views = {}
            for name, dtype, offset, count in fields:
                views[name] = np.frombuffer(
                    mapped, dtype=dtype, count=count, offset=offset
                )
        except BaseException:
            mapped.close()
            raise
        self.header = header
        self.indptr = views["indptr"]
        self.indices = views["indices"]
        self.data = views["data"]
        self.sq_norms = views["sq_norms"]
        self._mmap = mapped
        self._closed = False

    @property
    def nbytes(self) -> int:
        return self.header.nbytes

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.indptr = self.indices = self.data = self.sq_norms = None
        mapped, self._mmap = self._mmap, None
        if mapped is not None:
            try:
                mapped.close()
            except BufferError:
                # A caller still holds an array view; the mapping is
                # released when the last view is garbage collected.
                pass


def open_tile(path: str, verify: bool = False) -> TileView:
    """Map ``path`` read-only; ``verify=True`` checks the payload CRC."""
    return TileView(path, verify=verify)
