"""A CSR matrix view over on-disk tiles, duck-typing ``CsrMatrix``.

:class:`TiledCsrMatrix` exposes the read API operators already use —
``n_rows``/``n_cols``/``nnz``, ``row()``, ``row_nnz()``, ``iter_rows()``,
``resident_bytes()`` — but backs it with an LRU-budgeted
:class:`~repro.tiles.store.TileReader` instead of in-memory arrays, so
at most ``memory_budget`` bytes of matrix are mapped at any time.

Two extra methods serve the streaming k-means path:

* :meth:`block_arrays` assembles one row block ``[start, stop)`` as the
  exact ``(indices, values, sq_norms)`` triple
  :func:`repro.ops.kernels._assign_block` consumes — float64/int64 views
  sliced straight out of the tile mmaps, with the per-row squared norms
  precomputed at tile-write time. Feeding the same doubles through the
  same kernel in the same block order is what makes tiled output
  bit-identical to the in-memory path.
* :meth:`from_manifest` rebuilds a read-only view in a worker process
  from the picklable manifest — the file-backed analogue of resolving a
  shm descriptor; no matrix bytes ever ride the task pickles.

``as_arrays()`` still works (ARFF export, ad-hoc analysis) but
materializes the full matrix — it is the documented escape hatch out of
bounded memory, not a fast path.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.vector import SparseVector
from repro.tiles.store import TileManifest, TileReader

__all__ = ["TiledCsrMatrix"]


class TiledCsrMatrix:
    """Chunk-at-a-time CSR matrix over a sealed tile manifest."""

    def __init__(
        self,
        manifest: TileManifest,
        reader: TileReader | None = None,
        store=None,
        memory_budget: int | None = None,
    ) -> None:
        self.manifest = manifest
        self._store = store
        if reader is None:
            if store is not None:
                reader = store.reader(manifest)
            else:
                reader = TileReader(manifest, memory_budget=memory_budget)
        self._reader = reader
        self.memory_budget = (
            store.memory_budget if store is not None else reader.memory_budget
        )

    @classmethod
    def from_manifest(
        cls, manifest: TileManifest, memory_budget: int | None = None
    ) -> "TiledCsrMatrix":
        """Worker-side constructor: map tiles read-only, own no files."""
        return cls(manifest, memory_budget=memory_budget)

    # -- CsrMatrix protocol -------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self.manifest.n_rows

    @property
    def n_cols(self) -> int:
        return self.manifest.n_cols

    @property
    def nnz(self) -> int:
        return self.manifest.nnz

    def row(self, i: int) -> SparseVector:
        index = self._reader.tile_index_for_row(i)
        meta = self.manifest.tiles[index]
        view = self._reader.tile(index)
        local = i - meta.row_start
        lo = int(view.indptr[local])
        hi = int(view.indptr[local + 1])
        vector = SparseVector.__new__(SparseVector)
        vector.indices = view.indices[lo:hi]
        vector.values = view.data[lo:hi]
        return vector

    def row_nnz(self, i: int) -> int:
        index = self._reader.tile_index_for_row(i)
        meta = self.manifest.tiles[index]
        view = self._reader.tile(index)
        local = i - meta.row_start
        return int(view.indptr[local + 1]) - int(view.indptr[local])

    def iter_rows(self):
        for index, meta in enumerate(self.manifest.tiles):
            view = self._reader.tile(index)
            for local in range(meta.n_rows):
                lo = int(view.indptr[local])
                hi = int(view.indptr[local + 1])
                vector = SparseVector.__new__(SparseVector)
                vector.indices = view.indices[lo:hi]
                vector.values = view.data[lo:hi]
                yield vector

    def as_arrays(self):
        """Materialize the full (indptr, indices, data) — O(matrix) memory."""
        n = self.n_rows
        indptr = np.zeros(n + 1, dtype=np.int64)
        indices = np.empty(self.nnz, dtype=np.intp)
        data = np.empty(self.nnz, dtype=np.float64)
        cursor = 0
        for index, meta in enumerate(self.manifest.tiles):
            view = self._reader.tile(index)
            tile_nnz = meta.nnz
            indices[cursor:cursor + tile_nnz] = view.indices
            data[cursor:cursor + tile_nnz] = view.data
            base = meta.row_start
            indptr[base + 1: base + meta.n_rows + 1] = (
                np.asarray(view.indptr[1:], dtype=np.int64) + cursor
            )
            cursor += tile_nnz
        return indptr, indices, data

    def resident_bytes(self) -> int:
        # Same accounting model as CsrMatrix.resident_bytes() — the cost
        # model compares the two forms, so they must use the same ruler.
        return 8 * self.nnz + 4 * self.nnz + 4 * (self.n_rows + 1)

    # -- streaming access ----------------------------------------------------------

    def sq_norm(self, i: int) -> float:
        index = self._reader.tile_index_for_row(i)
        meta = self.manifest.tiles[index]
        view = self._reader.tile(index)
        return float(view.sq_norms[i - meta.row_start])

    def block_arrays(self, start: int, stop: int):
        """Per-row (indices, values) views plus sq_norms for ``[start, stop)``.

        Returns ``(doc_indices, doc_values, sq_norms)`` with local
        indexing — position 0 is row ``start`` — shaped exactly like the
        per-document lists k-means' ``_Prepared`` builds in memory.
        """
        doc_indices: list[np.ndarray] = []
        doc_values: list[np.ndarray] = []
        norms = np.empty(stop - start, dtype=np.float64)
        row = start
        while row < stop:
            index = self._reader.tile_index_for_row(row)
            meta = self.manifest.tiles[index]
            view = self._reader.tile(index)
            local_stop = min(stop, meta.row_start + meta.n_rows)
            for doc in range(row, local_stop):
                local = doc - meta.row_start
                lo = int(view.indptr[local])
                hi = int(view.indptr[local + 1])
                doc_indices.append(view.indices[lo:hi])
                doc_values.append(view.data[lo:hi])
                norms[doc - start] = view.sq_norms[local]
            row = local_stop
        return doc_indices, doc_values, norms

    def spill_stats(self) -> dict:
        stats = self._reader.stats_dict()
        if self._store is not None:
            stats["spill_dir"] = self._store.root
        return stats

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Unmap all tiles; delete the spill directory if this view owns it."""
        self._reader.close()
        if self._store is not None:
            self._store.close()
