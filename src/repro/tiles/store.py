"""Mmap-backed tile spill store with an LRU pinned-byte budget.

The :class:`TileStore` owns a temporary spill directory and the tile
files inside it — the file-backed generalization of the PR-3 shm
descriptor machinery: where :class:`~repro.exec.shm.ShmPlane` places
arrays into ``/dev/shm`` segments that workers attach by descriptor, a
``TileStore`` writes row-range tiles to disk and hands out a picklable
:class:`TileManifest` that any process turns into a read-only
:class:`TileReader`. Workers therefore receive *no matrix bytes over
IPC at all* — they map the same files, and the page cache deduplicates.

Memory is bounded by **LRU pinning**: a reader counts the bytes of the
tiles it currently has mapped ("pinned"), and opening a tile past the
``memory_budget`` unmaps least-recently-used tiles first (always keeping
the tile being served). ``peak_pinned_bytes`` is the deterministic
bounded-memory witness the oocore benchmark and CI smoke assert on —
unlike ``ru_maxrss`` it has no allocator noise in it.

Spill directories are registered with the shm module's atexit/SIGTERM
cleanup registry (:func:`repro.exec.shm.register_cleanup_resource`), so
a run killed mid-flight cannot leak ``$TMPDIR/repro_tiles_*`` any more
than it can leak ``/dev/shm`` segments; a ``weakref.finalize`` backstop
removes the directory when an unclosed store is garbage collected.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import os
import shutil
import tempfile
import weakref
from dataclasses import dataclass

import numpy as np

from repro.errors import TileError
from repro.exec.shm import (
    register_cleanup_resource,
    unregister_cleanup_resource,
)
from repro.tiles import format as tile_format

__all__ = ["SPILL_PREFIX", "TileMeta", "TileManifest", "TileReader", "TileStore"]

#: Every spill directory name starts with this — the conftest leak guard
#: and ops tooling scan ``$TMPDIR`` for it, mirroring ``SEGMENT_PREFIX``
#: scans of ``/dev/shm``.
SPILL_PREFIX = "repro_tiles"

_SEQUENCE = itertools.count()


@dataclass(frozen=True)
class TileMeta:
    """Identity of one tile file within a manifest."""

    name: str
    row_start: int
    n_rows: int
    nnz: int
    nbytes: int
    checksum: int


@dataclass(frozen=True)
class TileManifest:
    """Picklable description of a sealed tile set.

    Carries everything a worker (or the result cache) needs to map and
    verify the tiles: the spill directory, the matrix shape, and per-tile
    row ranges, sizes, and checksums. :meth:`digest` folds the per-tile
    identities into one hash — the content key the pipeline cache stores
    tiled transform entries under.
    """

    root: str
    n_cols: int
    tiles: tuple[TileMeta, ...]

    @property
    def n_rows(self) -> int:
        if not self.tiles:
            return 0
        last = self.tiles[-1]
        return last.row_start + last.n_rows

    @property
    def nnz(self) -> int:
        return sum(meta.nnz for meta in self.tiles)

    @property
    def total_bytes(self) -> int:
        return sum(meta.nbytes for meta in self.tiles)

    def path(self, meta: TileMeta) -> str:
        return os.path.join(self.root, meta.name)

    def row_starts(self) -> tuple[int, ...]:
        return tuple(meta.row_start for meta in self.tiles)

    def digest(self) -> str:
        """Content digest over shape + per-tile checksums (hex)."""
        h = hashlib.sha256()
        h.update(f"{self.n_cols}:{len(self.tiles)}".encode("ascii"))
        for meta in self.tiles:
            h.update(
                f"{meta.row_start}:{meta.n_rows}:{meta.nnz}:"
                f"{meta.checksum:08x}".encode("ascii")
            )
        return h.hexdigest()


class TileReader:
    """Read-only mapped view over a manifest, LRU-bounded by budget.

    ``memory_budget`` bounds the *pinned* (currently mapped) tile bytes;
    ``None`` means map-and-keep everything. Safe to build in any process
    that can see the spill directory — closing a reader only unmaps, it
    never deletes files.
    """

    def __init__(
        self,
        manifest: TileManifest,
        memory_budget: int | None = None,
        stats=None,
        verify: bool = False,
    ) -> None:
        self.manifest = manifest
        self.memory_budget = memory_budget
        self.verify = verify
        self._stats = stats
        self._row_starts = manifest.row_starts()
        self._open: dict[int, tile_format.TileView] = {}
        self.pinned_bytes = 0
        self.peak_pinned_bytes = 0
        self.evictions = 0
        self.reads = 0
        self.read_bytes = 0

    def tile(self, index: int) -> tile_format.TileView:
        """The mapped view of tile ``index``, opening (and evicting) as needed."""
        view = self._open.get(index)
        if view is not None:
            # Refresh LRU position (dict preserves insertion order).
            del self._open[index]
            self._open[index] = view
            return view
        meta = self.manifest.tiles[index]
        view = tile_format.open_tile(self.manifest.path(meta), verify=self.verify)
        if (
            view.header.row_start != meta.row_start
            or view.header.n_rows != meta.n_rows
            or view.header.nnz != meta.nnz
            or view.header.checksum != meta.checksum
        ):
            view.close()
            raise TileError(
                f"{self.manifest.path(meta)}: header does not match manifest"
            )
        self._open[index] = view
        self.pinned_bytes += meta.nbytes
        self.reads += 1
        self.read_bytes += meta.nbytes
        if self._stats is not None:
            self._stats.record_tile_read(meta.nbytes)
        if self.memory_budget is not None:
            while self.pinned_bytes > self.memory_budget and len(self._open) > 1:
                self._evict_lru(keep=index)
        self.peak_pinned_bytes = max(self.peak_pinned_bytes, self.pinned_bytes)
        return view

    def _evict_lru(self, keep: int) -> None:
        for victim in self._open:
            if victim != keep:
                break
        else:  # pragma: no cover - guarded by len(_open) > 1
            return
        view = self._open.pop(victim)
        self.pinned_bytes -= view.nbytes
        view.close()
        self.evictions += 1
        if self._stats is not None:
            self._stats.record_tile_eviction()

    def tile_index_for_row(self, row: int) -> int:
        index = bisect.bisect_right(self._row_starts, row) - 1
        if index < 0 or row >= self.manifest.n_rows:
            raise TileError(
                f"row {row} outside tiled matrix of {self.manifest.n_rows} rows"
            )
        return index

    def stats_dict(self) -> dict:
        return {
            "tiles": len(self.manifest.tiles),
            "tile_bytes": self.manifest.total_bytes,
            "memory_budget": self.memory_budget,
            "pinned_bytes": self.pinned_bytes,
            "peak_pinned_bytes": self.peak_pinned_bytes,
            "evictions": self.evictions,
            "reads": self.reads,
            "read_bytes": self.read_bytes,
        }

    def close(self) -> None:
        views, self._open = self._open, {}
        for view in views.values():
            view.close()
        self.pinned_bytes = 0


class TileStore:
    """Owner of one spill directory: writes tiles, seals a manifest.

    ``memory_budget`` is inherited by every :meth:`reader` built from
    this store. ``stats`` (an :class:`~repro.exec.shm.IpcStats`) charges
    tile writes/reads to the backend's current phase, so the bench's IPC
    snapshots account spill traffic next to pickle traffic.
    """

    def __init__(
        self,
        memory_budget: int | None = None,
        stats=None,
        root: str | None = None,
    ) -> None:
        self.memory_budget = memory_budget
        self._stats = stats
        self.root = tempfile.mkdtemp(
            prefix=f"{SPILL_PREFIX}_{os.getpid()}_{next(_SEQUENCE)}_",
            dir=root,
        )
        self.owner_pid = os.getpid()
        self._metas: list[TileMeta] = []
        self._readers: list[TileReader] = []
        self._closed = False
        register_cleanup_resource(self)
        # GC backstop: if the owner never calls close(), removing the
        # directory when the store object dies still prevents a leak
        # (live mmaps on unlinked files keep working on POSIX).
        self._finalizer = weakref.finalize(
            self, shutil.rmtree, self.root, True
        )

    # -- writing -----------------------------------------------------------------

    def append(
        self,
        row_start: int,
        n_cols: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        sq_norms: np.ndarray,
    ) -> TileMeta:
        """Write the next tile; row ranges must be appended in order."""
        if self._metas:
            last = self._metas[-1]
            expected = last.row_start + last.n_rows
            if row_start != expected:
                raise TileError(
                    f"tile rows must be contiguous: expected row_start "
                    f"{expected}, got {row_start}"
                )
        elif row_start != 0:
            raise TileError(f"first tile must start at row 0, got {row_start}")
        name = f"tile_{len(self._metas):06d}.rt"
        header = tile_format.write_tile(
            os.path.join(self.root, name),
            row_start, n_cols, indptr, indices, data, sq_norms,
        )
        meta = TileMeta(
            name=name, row_start=row_start, n_rows=header.n_rows,
            nnz=header.nnz, nbytes=header.nbytes, checksum=header.checksum,
        )
        self._metas.append(meta)
        if self._stats is not None:
            self._stats.record_tile_write(meta.nbytes)
        return meta

    def adopt_tile(self, blob: bytes) -> TileMeta:
        """Append a tile from its raw file bytes, verifying the checksum.

        The cache-serve path re-hydrates stored tiles through this; a
        corrupt blob raises :class:`~repro.errors.TileError` (the caller
        treats it as a cache miss), leaving no partial file behind.
        """
        name = f"tile_{len(self._metas):06d}.rt"
        path = os.path.join(self.root, name)
        tmp = path + ".adopt"
        with open(tmp, "wb") as handle:
            handle.write(blob)
        try:
            view = tile_format.open_tile(tmp, verify=True)
            header = view.header
            view.close()
            if self._metas:
                last = self._metas[-1]
                if header.row_start != last.row_start + last.n_rows:
                    raise TileError(
                        f"adopted tile row_start {header.row_start} is not "
                        f"contiguous with previous tiles"
                    )
            elif header.row_start != 0:
                raise TileError(
                    f"first adopted tile must start at row 0, "
                    f"got {header.row_start}"
                )
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        meta = TileMeta(
            name=name, row_start=header.row_start, n_rows=header.n_rows,
            nnz=header.nnz, nbytes=header.nbytes, checksum=header.checksum,
        )
        self._metas.append(meta)
        if self._stats is not None:
            self._stats.record_tile_write(meta.nbytes)
        return meta

    def tile_bytes(self, meta: TileMeta) -> bytes:
        """Raw file bytes of one tile (the cache's storage payload)."""
        with open(os.path.join(self.root, meta.name), "rb") as handle:
            return handle.read()

    def reset(self) -> None:
        """Drop all tiles (degrade-replay restarts a tiled phase cleanly)."""
        for reader in self._readers:
            reader.close()
        self._readers = []
        for meta in self._metas:
            try:
                os.unlink(os.path.join(self.root, meta.name))
            except OSError:
                pass
        self._metas = []

    # -- reading -----------------------------------------------------------------

    @property
    def metas(self) -> tuple[TileMeta, ...]:
        return tuple(self._metas)

    def seal(self, n_cols: int) -> TileManifest:
        return TileManifest(
            root=self.root, n_cols=n_cols, tiles=tuple(self._metas)
        )

    def reader(
        self, manifest: TileManifest | None = None, verify: bool = False
    ) -> TileReader:
        if manifest is None:
            raise TileError("seal() the store and pass the manifest")
        reader = TileReader(
            manifest, memory_budget=self.memory_budget,
            stats=self._stats, verify=verify,
        )
        self._readers.append(reader)
        return reader

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for reader in self._readers:
            reader.close()
        self._readers = []
        self._finalizer.detach()
        shutil.rmtree(self.root, ignore_errors=True)
        unregister_cleanup_resource(self)
