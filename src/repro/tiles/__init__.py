"""Out-of-core tiled data plane: binary CSR tiles + mmap-backed spill.

See :mod:`repro.tiles.format` for the on-disk layout,
:mod:`repro.tiles.store` for the budgeted spill store, and
:mod:`repro.tiles.matrix` for the ``CsrMatrix``-compatible view.
``docs/data_plane.md`` documents the memory-budget contract.
"""

from repro.tiles.format import TileView, open_tile, read_header, write_tile
from repro.tiles.matrix import TiledCsrMatrix
from repro.tiles.store import (
    SPILL_PREFIX,
    TileManifest,
    TileMeta,
    TileReader,
    TileStore,
)

__all__ = [
    "SPILL_PREFIX",
    "TileManifest",
    "TileMeta",
    "TileReader",
    "TileStore",
    "TiledCsrMatrix",
    "TileView",
    "open_tile",
    "read_header",
    "write_tile",
]
