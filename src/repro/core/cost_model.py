"""Cost constants and analytic projections for the simulated machine.

Every operator meters its real work (bytes tokenized, dictionary
operations, floating-point kernel invocations) and converts the counts
into virtual CPU seconds and DRAM traffic through the constants below.
The constants are calibrated — see DESIGN.md §5 — so that full-scale
virtual times land near the paper's anchors (sequential K-means seconds,
Figure 3/4 ratios); the *scaling behaviour* then follows entirely from
the structure of the computation and the machine model, it is never
hard-coded.

This module also provides the closed-form projections used by the
cost-based planner: Amdahl-style phase scaling and roofline caps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exec.machine import MachineSpec

__all__ = [
    "CostConstants",
    "DEFAULT_COSTS",
    "WorkloadScale",
    "UNIT_SCALE",
    "amdahl_speedup",
    "roofline_cap",
]


@dataclass(frozen=True)
class CostConstants:
    """Per-event virtual costs of the operators' non-dictionary work.

    All ``*_ns`` values are virtual nanoseconds on one core of the
    simulated node; ``*_bytes`` values are DRAM traffic per event.
    """

    # -- text / input ----------------------------------------------------------
    #: Scan+fold+split cost per input byte (tokenization).
    tokenize_ns_per_byte: float = 1.6
    #: Fixed per-token overhead in the word-count loop (hashing the string,
    #: string interning).
    token_fixed_ns: float = 18.0
    #: DRAM traffic per input byte during tokenization (read + token write).
    tokenize_bytes_per_byte: float = 2.0

    # -- TF/IDF transform --------------------------------------------------------
    #: Per (document, term) score computation: one log, two multiplies.
    tfidf_score_ns: float = 30.0
    #: Building a sorted sparse row: per-entry append + sort share.
    sparse_build_ns_per_entry: float = 14.0
    #: DRAM traffic per produced sparse entry (12 bytes + working data).
    sparse_build_bytes_per_entry: float = 32.0

    #: Per-comparison cost of sorting the vocabulary (hash dictionaries only;
    #: trees iterate in order for free).
    vocab_sort_ns_per_cmp: float = 20.0

    # -- ARFF serialization -------------------------------------------------------
    #: Formatting cost per output byte (number → text).
    arff_serialize_ns_per_byte: float = 3.0
    #: Parsing cost per input byte (text → number).
    arff_parse_ns_per_byte: float = 5.0
    #: DRAM traffic per ARFF byte processed.
    arff_bytes_per_byte: float = 3.0

    # -- K-means -----------------------------------------------------------------
    #: Per sparse multiply-add in the assignment kernel (one (term, cluster)
    #: pair): a gather from a multi-megabyte centroid array — essentially a
    #: cache miss per access, hence far above a raw FMA.
    kmeans_flop_ns: float = 40.0
    #: DRAM traffic per assignment multiply-add (partial L3 reuse).
    kmeans_flop_bytes: float = 16.0
    #: Per-element cost of accumulating a document into a partial centroid.
    centroid_accumulate_ns: float = 2.5
    #: Per-element cost of merging two partial centroid buffers (reducer
    #: combine; runs in a serial chain at the end of the parallel loop).
    centroid_merge_ns: float = 1.2
    #: DRAM traffic per merged centroid element (read both, write one).
    centroid_merge_bytes: float = 14.0
    #: Per-element cost of the final divide/normalize step.
    centroid_finalize_ns: float = 5.0

    # -- dense (WEKA-style) baseline ----------------------------------------------
    #: Per dense element visited in the baseline's distance loop. High: the
    #: baseline manipulates boxed per-attribute objects through virtual
    #: calls, as WEKA's ``Instance`` API does.
    dense_element_ns: float = 22.0
    #: Allocation churn per dense vector created (fresh objects every
    #: iteration, the anti-pattern the paper calls out).
    dense_alloc_ns_per_element: float = 4.0


#: Library-wide default calibration.
DEFAULT_COSTS = CostConstants()


@dataclass(frozen=True)
class WorkloadScale:
    """Extrapolation factors from a scaled-down corpus to full size.

    Benchmarks run the real computation on a scaled corpus (a few hundred
    documents) and the simulator multiplies the *metered costs* up at
    charge time, so that phase times are directly full-scale. The two
    factors matter separately because workload components scale
    differently: per-document work (tokenization, per-document
    dictionaries, K-means assignment) grows with the document count, while
    vocabulary-proportional work (the global dictionary index, centroid
    buffers, reducer merges) grows only with the Heaps curve — extrapolating
    both by the document ratio would wildly exaggerate the
    vocabulary-bound serial sections.
    """

    #: Multiplier for document-proportional costs.
    doc_factor: float = 1.0
    #: Multiplier for vocabulary-proportional costs.
    vocab_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.doc_factor <= 0 or self.vocab_factor <= 0:
            raise ValueError("scale factors must be positive")

    @classmethod
    def for_corpus(
        cls, full_docs: int, actual_docs: int, full_vocab: int, actual_vocab: int
    ) -> "WorkloadScale":
        """Factors from actual (scaled) corpus statistics to full-scale ones."""
        return cls(
            doc_factor=full_docs / actual_docs,
            vocab_factor=full_vocab / actual_vocab,
        )


#: No extrapolation: costs are charged exactly as metered.
UNIT_SCALE = WorkloadScale()


def amdahl_speedup(serial_fraction: float, workers: int) -> float:
    """Classic Amdahl projection for a phase with the given serial share."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError(f"serial fraction must be in [0, 1]: {serial_fraction}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / workers)


def roofline_cap(
    cpu_seconds: float, mem_bytes: float, machine: MachineSpec
) -> float:
    """Maximum speedup of a phase before it saturates socket bandwidth.

    The phase runs at ``max(cpu/T, mem/mem_bw)``; the cap is the ratio of
    its single-core time to the bandwidth floor.
    """
    single = max(cpu_seconds, mem_bytes / machine.core_mem_bw)
    floor = mem_bytes / machine.mem_bw
    if floor <= 0.0:
        return float("inf")
    return single / floor
