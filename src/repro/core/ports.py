"""Port-level workflow abstractions (no operator dependencies).

These are the pieces both the workflow engine and individual operator
adapters need: the execution context threaded through a run, the
:class:`WorkflowOp` node protocol, the :class:`Materializer` protocol for
file edges, and the :class:`ScoreMatrix` payload that crosses the
TF/IDF → K-means edge. They live below :mod:`repro.ops` so that operator
modules can define their own workflow adapters without import cycles.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.errors import WorkflowError
from repro.exec.metrics import Timeline
from repro.exec.scheduler import SimScheduler
from repro.io.storage import Storage
from repro.sparse.matrix import CsrMatrix

__all__ = ["WorkflowContext", "WorkflowOp", "Materializer", "ScoreMatrix"]


@dataclass
class WorkflowContext:
    """Shared execution state threaded through a workflow run."""

    scheduler: SimScheduler
    storage: Storage
    workers: int
    timeline: Timeline = field(default_factory=Timeline)
    #: Scratch path prefix for materialised intermediates.
    scratch_prefix: str = "tmp/"
    #: High-water mark of modelled resident memory (Figure 4's axis).
    peak_resident_bytes: int = 0
    #: Currently live modelled memory.
    live_resident_bytes: int = 0

    def note_allocation(self, n_bytes: int) -> None:
        """Record modelled memory becoming live."""
        self.live_resident_bytes += n_bytes
        self.peak_resident_bytes = max(
            self.peak_resident_bytes, self.live_resident_bytes
        )

    def note_release(self, n_bytes: int) -> None:
        """Record modelled memory being freed."""
        self.live_resident_bytes = max(0, self.live_resident_bytes - n_bytes)


@dataclass
class ScoreMatrix:
    """A document × term score matrix plus its vocabulary — the payload
    flowing across the TF/IDF → K-means edge."""

    matrix: CsrMatrix
    vocabulary: list[str]

    def resident_bytes(self) -> int:
        return self.matrix.resident_bytes() + sum(
            len(term) + 8 for term in self.vocabulary
        )


class WorkflowOp(ABC):
    """An operator node: named input/output ports plus an execute method."""

    #: Node name (unique within a workflow).
    name: str = "op"
    #: Input port names, in order.
    inputs: tuple[str, ...] = ()
    #: Output port names, in order.
    outputs: tuple[str, ...] = ()

    @abstractmethod
    def execute(
        self, ctx: WorkflowContext, inputs: dict[str, Any]
    ) -> dict[str, Any]:
        """Run the operator, appending its phases to ``ctx.timeline``."""

    def _require(self, inputs: dict[str, Any], port: str) -> Any:
        try:
            return inputs[port]
        except KeyError:
            raise WorkflowError(
                f"operator {self.name!r} missing input port {port!r}"
            ) from None


class Materializer(ABC):
    """Writes/reads one payload type through storage (discrete edges)."""

    @abstractmethod
    def write(self, ctx: WorkflowContext, value: Any, path: str) -> None: ...

    @abstractmethod
    def read(self, ctx: WorkflowContext, path: str) -> Any: ...
