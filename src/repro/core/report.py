"""Textual reports: the tables and stacked breakdowns the paper plots.

These helpers render exactly the series the paper's figures show —
self-relative speedup curves (Figures 1 and 2) and stacked per-phase
execution-time bars (Figures 3 and 4) — as fixed-width text tables, which
is what the benchmark harness prints next to the paper's reference values.
"""

from __future__ import annotations

from repro.exec.metrics import self_relative_speedups

__all__ = [
    "format_speedup_table",
    "format_breakdown_table",
    "format_comparison_rows",
    "series_to_csv",
]


def format_speedup_table(
    series: dict[str, dict[int, float]],
    title: str = "self-relative speedup",
) -> str:
    """Render thread→time maps per data set as a speedup table.

    ``series`` maps a label (e.g. ``"NSF abstracts"``) to its
    thread-count → elapsed-seconds measurements.
    """
    labels = list(series)
    threads = sorted({t for times in series.values() for t in times})
    speedups = {label: self_relative_speedups(series[label]) for label in labels}

    header = f"{'threads':>8} | " + " | ".join(f"{label:>16}" for label in labels)
    rule = "-" * len(header)
    lines = [title, rule, header, rule]
    for t in threads:
        cells = []
        for label in labels:
            value = speedups[label].get(t)
            cells.append(f"{value:16.2f}" if value is not None else " " * 16)
        lines.append(f"{t:>8} | " + " | ".join(cells))
    return "\n".join(lines)


def format_breakdown_table(
    breakdowns: dict[str, dict[str, float]],
    phases: list[str],
    title: str = "execution time breakdown (s)",
) -> str:
    """Render stacked-bar data: one column per configuration, one row per phase.

    ``breakdowns`` maps a configuration label (e.g. ``"discrete/16T"``) to
    its phase → seconds map; ``phases`` fixes the row order (the paper's
    stacking order).
    """
    labels = list(breakdowns)
    width = max(12, max((len(label) for label in labels), default=12) + 1)
    header = f"{'phase':>14} | " + " | ".join(f"{label:>{width}}" for label in labels)
    rule = "-" * len(header)
    lines = [title, rule, header, rule]
    for phase in phases:
        cells = [
            f"{breakdowns[label].get(phase, 0.0):>{width}.2f}" for label in labels
        ]
        lines.append(f"{phase:>14} | " + " | ".join(cells))
    totals = [
        f"{sum(breakdowns[label].values()):>{width}.2f}" for label in labels
    ]
    lines.append(rule)
    lines.append(f"{'total':>14} | " + " | ".join(totals))
    return "\n".join(lines)


def series_to_csv(series: dict[str, dict[int, float]]) -> str:
    """Render thread→value series as CSV (plot-ready: threads,label,...).

    One row per thread count, one column per labelled series; missing
    points render empty. Benchmarks write these next to their text
    reports so the figures can be re-plotted with any tool.
    """
    labels = list(series)
    threads = sorted({t for values in series.values() for t in values})
    lines = ["threads," + ",".join(labels)]
    for t in threads:
        cells = []
        for label in labels:
            value = series[label].get(t)
            cells.append("" if value is None else f"{value:.6g}")
        lines.append(f"{t}," + ",".join(cells))
    return "\n".join(lines)


def format_comparison_rows(
    rows: list[tuple[str, str, str]],
    title: str = "paper vs measured",
) -> str:
    """Render (quantity, paper value, measured value) comparison rows."""
    quantity_width = max((len(row[0]) for row in rows), default=8) + 1
    header = f"{'quantity':<{quantity_width}} | {'paper':>16} | {'measured':>16}"
    rule = "-" * len(header)
    lines = [title, rule, header, rule]
    for quantity, paper, measured in rows:
        lines.append(
            f"{quantity:<{quantity_width}} | {paper:>16} | {measured:>16}"
        )
    return "\n".join(lines)
