"""Core contribution: operator/workflow optimization layer.

Implements the paper's four optimizations as mechanisms:

1. intra-node parallelism — operators execute parallel phases on the
   simulated multicore node (:mod:`repro.exec`);
2. parallel input — per-document file reads ride inside parallel tasks;
3. workflow fusion — :mod:`repro.core.fusion` rewrites file edges of a
   :class:`~repro.core.workflow.Workflow` into in-memory edges;
4. data-structure selection — the planner picks a dictionary
   implementation per phase (:mod:`repro.core.planner`).
"""

from repro.core.cost_model import (
    DEFAULT_COSTS,
    CostConstants,
    amdahl_speedup,
    roofline_cap,
)
from repro.core.fusion import FusionReport, estimate_edge_round_trip, fuse_workflow
from repro.core.operator import (
    ArffScoresMaterializer,
    KMeansOp,
    Materializer,
    ScoreMatrix,
    TfIdfOp,
    WorkflowContext,
    WorkflowOp,
)
from repro.core.planner import Plan, PlanConfig, PlanEstimate, WorkflowPlanner
from repro.core.report import (
    format_breakdown_table,
    format_comparison_rows,
    format_speedup_table,
    series_to_csv,
)
from repro.core.workflow import (
    Edge,
    Workflow,
    WorkflowResult,
    build_tfidf_kmeans_workflow,
)

__all__ = [
    "CostConstants",
    "DEFAULT_COSTS",
    "amdahl_speedup",
    "roofline_cap",
    "Workflow",
    "WorkflowResult",
    "Edge",
    "build_tfidf_kmeans_workflow",
    "WorkflowOp",
    "WorkflowContext",
    "TfIdfOp",
    "KMeansOp",
    "ScoreMatrix",
    "Materializer",
    "ArffScoresMaterializer",
    "fuse_workflow",
    "FusionReport",
    "estimate_edge_round_trip",
    "WorkflowPlanner",
    "Plan",
    "PlanConfig",
    "PlanEstimate",
    "format_speedup_table",
    "format_breakdown_table",
    "series_to_csv",
    "format_comparison_rows",
]
