"""Workflow-level operator abstraction.

A :class:`WorkflowOp` wraps an analytics operator so the workflow engine
can execute it, wire its ports to other operators and materialise its
outputs through storage when a workflow runs in *discrete* mode. The
concrete adapters for the paper's workflow (TF/IDF, K-means, and the ARFF
materialiser that connects them) live here too.
"""

from __future__ import annotations

from typing import Any

from repro.core.cost_model import (
    DEFAULT_COSTS,
    UNIT_SCALE,
    CostConstants,
    WorkloadScale,
)
from repro.core.ports import (
    Materializer,
    ScoreMatrix,
    WorkflowContext,
    WorkflowOp,
)
from repro.errors import WorkflowError
from repro.exec.task import TaskCost
from repro.io.arff import read_sparse_arff, write_sparse_arff
from repro.ops.kmeans import KMeansOperator, KMeansResult
from repro.ops.tfidf import TfIdfOperator, TfIdfResult

__all__ = [
    "WorkflowContext",
    "WorkflowOp",
    "ScoreMatrix",
    "TfIdfOp",
    "KMeansOp",
    "Materializer",
    "ArffScoresMaterializer",
    "PHASE_KMEANS_INPUT",
    "PHASE_OUTPUT",
]

PHASE_KMEANS_INPUT = "kmeans-input"
PHASE_OUTPUT = "output"


class TfIdfOp(WorkflowOp):
    """TF/IDF operator node: corpus prefix in, score matrix out."""

    inputs = ("corpus_prefix",)
    outputs = ("scores",)

    def __init__(
        self,
        name: str = "tfidf",
        wc_dict_kind: str = "map",
        transform_dict_kind: str | None = None,
        reserve: int = 4096,
        costs: CostConstants = DEFAULT_COSTS,
        scale: WorkloadScale = UNIT_SCALE,
    ) -> None:
        self.name = name
        self.operator = TfIdfOperator(
            wc_dict_kind=wc_dict_kind,
            transform_dict_kind=transform_dict_kind,
            reserve=reserve,
            costs=costs,
            scale=scale,
        )
        self.last_result: TfIdfResult | None = None

    def execute(self, ctx: WorkflowContext, inputs: dict[str, Any]) -> dict[str, Any]:
        prefix = self._require(inputs, "corpus_prefix")
        result = self.operator.run_simulated(
            ctx.scheduler, ctx.storage, prefix, workers=ctx.workers
        )
        ctx.timeline.extend(result.timeline)
        ctx.note_allocation(result.resident_bytes())
        self.last_result = result
        return {"scores": ScoreMatrix(result.matrix, result.vocabulary)}

    def release(self, ctx: WorkflowContext) -> None:
        """Free the operator's retained state (dictionaries, matrix)."""
        if self.last_result is not None:
            ctx.note_release(self.last_result.resident_bytes())
            self.last_result = None


class KMeansOp(WorkflowOp):
    """K-means node: score matrix in, clustering out (plus final output)."""

    inputs = ("scores",)
    outputs = ("clusters",)

    def __init__(
        self,
        name: str = "kmeans",
        n_clusters: int = 8,
        max_iters: int = 10,
        seed: int = 0,
        costs: CostConstants = DEFAULT_COSTS,
        output_path: str | None = "clusters.txt",
        scale: WorkloadScale = UNIT_SCALE,
    ) -> None:
        self.name = name
        self.operator = KMeansOperator(
            n_clusters=n_clusters,
            max_iters=max_iters,
            seed=seed,
            costs=costs,
            scale=scale,
        )
        self.costs = costs
        self.output_path = output_path
        self.scale = scale

    def execute(self, ctx: WorkflowContext, inputs: dict[str, Any]) -> dict[str, Any]:
        scores: ScoreMatrix = self._require(inputs, "scores")
        result = self.operator.run_simulated(
            ctx.scheduler, scores.matrix, workers=ctx.workers
        )
        ctx.timeline.extend(result.timeline)
        if self.output_path is not None:
            self._write_output(ctx, result)
        return {"clusters": result}

    def _write_output(self, ctx: WorkflowContext, result: KMeansResult) -> None:
        """Final result output — serial, like every output phase (§3.2)."""
        lines = [
            f"{doc_id}\t{cluster}"
            for doc_id, cluster in enumerate(result.assignments)
        ]
        document = "\n".join(lines) + "\n"
        cost = TaskCost(
            cpu_s=len(document) * self.costs.arff_serialize_ns_per_byte * 1e-9,
            mem_bytes=len(document) * self.costs.arff_bytes_per_byte,
        )
        cost.add(ctx.storage.write(self.output_path, document))
        ctx.timeline.add(
            ctx.scheduler.serial_phase(
                cost.scaled(self.scale.doc_factor), name=PHASE_OUTPUT
            )
        )


class ArffScoresMaterializer(Materializer):
    """Materialises a :class:`ScoreMatrix` as an ARFF file.

    The write side is the paper's *tfidf-output* phase and the read side is
    *kmeans-input*; both are serial because of the file format, which is
    precisely the overhead workflow fusion removes.
    """

    def __init__(
        self,
        costs: CostConstants = DEFAULT_COSTS,
        scale: WorkloadScale = UNIT_SCALE,
    ) -> None:
        self.costs = costs
        self.scale = scale

    def write(self, ctx: WorkflowContext, value: Any, path: str) -> None:
        if not isinstance(value, ScoreMatrix):
            raise WorkflowError(
                f"ARFF materializer got {type(value).__name__}, wants ScoreMatrix"
            )
        document = write_sparse_arff("tfidf", value.vocabulary, value.matrix.iter_rows())
        cost = TaskCost(
            cpu_s=len(document) * self.costs.arff_serialize_ns_per_byte * 1e-9,
            mem_bytes=len(document) * self.costs.arff_bytes_per_byte,
        )
        cost.add(ctx.storage.write(path, document))
        ctx.timeline.add(
            ctx.scheduler.serial_phase(
                cost.scaled(self.scale.doc_factor), name="tfidf-output"
            )
        )

    def read(self, ctx: WorkflowContext, path: str) -> ScoreMatrix:
        document, read_cost = ctx.storage.read(path)
        cost = TaskCost(
            cpu_s=len(document) * self.costs.arff_parse_ns_per_byte * 1e-9,
            mem_bytes=len(document) * self.costs.arff_bytes_per_byte,
        )
        cost.add(read_cost)
        relation = read_sparse_arff(document)
        ctx.timeline.add(
            ctx.scheduler.serial_phase(
                cost.scaled(self.scale.doc_factor), name=PHASE_KMEANS_INPUT
            )
        )
        payload = ScoreMatrix(relation.rows, relation.attributes)
        ctx.note_allocation(int(payload.resident_bytes() * self.scale.doc_factor))
        return payload
