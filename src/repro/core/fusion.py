"""Workflow fusion rewriter (optimization 3).

Fusion turns file edges into memory edges — "creating single binaries that
encapsulate a complex workflow" (paper §1, §3.3) — eliding the
serialize/write/read/parse round trip on each rewritten edge. The
rewriter works on any workflow graph and reports what it changed, so the
planner can weigh the saved I/O against the increased peak memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.workflow import FILE, MEMORY, Edge, Workflow
from repro.exec.machine import MachineSpec

__all__ = ["FusionReport", "fuse_workflow", "estimate_edge_round_trip"]


@dataclass(frozen=True)
class FusionReport:
    """What a fusion pass did."""

    workflow: str
    fused_edges: tuple[str, ...]

    @property
    def n_fused(self) -> int:
        return len(self.fused_edges)


def fuse_workflow(workflow: Workflow, edges: list[Edge] | None = None) -> FusionReport:
    """Rewrite file edges of ``workflow`` to memory edges, in place.

    ``edges`` limits the rewrite to the given edges (they must belong to
    the workflow); by default every file edge is fused.
    """
    targets = edges if edges is not None else workflow.file_edges()
    fused = []
    for edge in targets:
        if edge not in workflow.edges:
            raise ValueError(f"edge {edge.key} does not belong to {workflow.name!r}")
        if edge.materialize == FILE:
            edge.materialize = MEMORY
            fused.append(edge.key)
    return FusionReport(workflow=workflow.name, fused_edges=tuple(fused))


def estimate_edge_round_trip(
    intermediate_bytes: float,
    machine: MachineSpec,
    serialize_ns_per_byte: float,
    parse_ns_per_byte: float,
) -> float:
    """Virtual seconds a file edge costs: serialize + write + read + parse.

    All four parts run serially on one thread (the ARFF format does not
    facilitate parallel I/O), so the estimate is a plain sum — this is the
    quantity fusion saves, and it does *not* shrink with added threads,
    which is why fusion matters more at high thread counts (Figure 3:
    +36.9% at 1 thread but 3.84x at 16).
    """
    cpu = intermediate_bytes * (serialize_ns_per_byte + parse_ns_per_byte) * 1e-9
    io = intermediate_bytes / machine.disk_write_bw + (
        intermediate_bytes / machine.disk_read_bw
    )
    return cpu + io + 2 * machine.disk_latency_s
