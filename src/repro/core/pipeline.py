"""Real (wall-clock) fused pipeline: TF/IDF → K-means on a backend.

The simulated workflow (:mod:`repro.core.workflow`) answers scaling
questions in virtual time; this module is its real-execution twin. It
runs the same fused TF/IDF → K-means composition — scores handed over in
memory, no ARFF round trip — on an actual
:class:`~repro.exec.inline.ExecutionBackend`, timing each phase with the
host's wall clock. It is the engine behind ``python -m repro pipeline``
and the wall-clock benchmark (:mod:`repro.bench.wallclock`).

With ``trace=True`` the backend's :class:`~repro.exec.spans.SpanRecorder`
is armed for the run and the result carries a
:class:`~repro.exec.spans.RunTrace`: one span per executed task, on every
worker, from which per-phase utilization, queue wait, and straggler ratio
are derived. Tracing never changes the computation — outputs are
bit-identical with tracing on or off.
"""

from __future__ import annotations

import sys
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.cache import PipelineCache
from repro.cache.pipeline_cache import RunCacheSession
from repro.errors import ConfigurationError
from repro.exec.inline import ExecutionBackend, SequentialBackend, ThreadBackend
from repro.exec.process import ProcessBackend, make_backend
from repro.exec.resilience import DowngradeEvent, QuarantineReport
from repro.exec.spans import RunTrace, SpanRecorder
from repro.io.parallel_read import DocumentStream
from repro.obs.ledger import RunLedger, WallAnchor
from repro.ops import kernels
from repro.ops.kmeans import PHASE_KMEANS, KMeansOperator, KMeansResult
from repro.ops.tfidf import PHASE_TRANSFORM, TfIdfOperator, TfIdfResult
from repro.ops.wordcount import PHASE_INPUT_WC
from repro.plan import AdaptivePlanner, CalibrationStore, RealPlan
from repro.text.corpus import Corpus

__all__ = ["RealRunResult", "run_pipeline", "PHASE_READ"]


def _downgraded(backend: ExecutionBackend) -> ExecutionBackend | None:
    """The next tier down (processes → threads → sequential), or ``None``."""
    if isinstance(backend, ProcessBackend):
        return ThreadBackend(backend.workers, backend.resilience)
    if isinstance(backend, ThreadBackend):
        return SequentialBackend(backend.resilience)
    return None


def _transplant(old: ExecutionBackend, new: ExecutionBackend) -> None:
    """Carry one run's accounting state onto a downgraded backend.

    IPC counters, span recorder, quarantine report, and task-id counters
    move over so the run's bill stays continuous across the downgrade.
    The fault plan deliberately does *not* move: its directives targeted
    the dead backend's workers (an ``exit`` fault re-fired in-process
    would kill the parent), and the point of degrading is to finish.
    """
    new.ipc = old.ipc
    new.spans = old.spans
    new.quarantine = old.quarantine
    new._task_counters = old._task_counters
    # The shm plane captured a stats reference at construction and hands
    # it to every ShmArrays/ShmBroadcast it creates — rebind it too, or
    # shm traffic on ``new`` would bill a counter nobody reads.
    plane = getattr(new, "_plane", None)
    if plane is not None:
        plane._stats = old.ipc

#: Phase label for time the pipeline spent blocked on input reads. Only
#: reported for streamed input (a :class:`DocumentStream`); a materialized
#: corpus has no read phase.
PHASE_READ = "read"


@dataclass
class RealRunResult:
    """Outcome of one real fused run, with wall-clock phase timings."""

    tfidf: TfIdfResult
    kmeans: KMeansResult
    #: Wall-clock seconds per phase, keyed by the paper's phase names.
    phase_seconds: dict[str, float] = field(default_factory=dict)
    backend_name: str = "sequential"
    #: IPC-accounting snapshot of the run (``{"phases": ..., "total": ...}``,
    #: see :class:`repro.exec.shm.IpcStats`); ``None`` for the inline path.
    ipc: dict | None = None
    #: Per-task span trace (:class:`repro.exec.spans.RunTrace`) when the run
    #: was traced; ``None`` otherwise.
    trace: RunTrace | None = None
    #: Items isolated by ``on_poison="quarantine"`` during this run
    #: (:class:`repro.exec.resilience.QuarantineReport`); ``None`` when
    #: nothing was quarantined (including every fail-fast run).
    quarantine: QuarantineReport | None = None
    #: Backend downgrades performed because ``degrade=True`` absorbed a
    #: dead worker pool, in order.
    downgrades: list[DowngradeEvent] = field(default_factory=list)
    #: The :class:`~repro.plan.RealPlan` this run executed, when it was
    #: launched via ``run_pipeline(plan=...)``; ``None`` for fixed-backend
    #: and inline runs.
    plan: RealPlan | None = None
    #: Seconds spent planning (probe + candidate costing), outside
    #: ``phase_seconds`` — planning is amortized across runs via the
    #: persisted calibration store, so it is billed separately.
    plan_seconds: float = 0.0
    #: Result-cache accounting for the run (hits, misses, shard reuse,
    #: bytes/seconds saved — see
    #: :meth:`repro.cache.pipeline_cache.RunCacheSession.snapshot`);
    #: ``None`` when the run had no cache.
    cache: dict | None = None
    #: Spill accounting when the run went through the tiled data plane
    #: (tile counts/bytes, pinned-byte peak, evictions, spill dir — see
    #: :meth:`repro.tiles.matrix.TiledCsrMatrix.spill_stats`); ``None``
    #: for resident-matrix runs. The matrix on ``tfidf.matrix`` still
    #: maps these tiles — call its ``close()`` when done with the result.
    tiles: dict | None = None
    #: Where this run's ledger append landed (``{"run_id", "dir",
    #: "records", "append_s"}``) when ``run_pipeline(ledger=...)`` was
    #: given; ``None`` for unledgered runs.
    ledger: dict | None = None

    @property
    def total_s(self) -> float:
        return sum(self.phase_seconds.values())

    def to_record(self) -> dict:
        """The run's accounting as one JSON-able dict.

        The single serializer behind every surface that reports a run —
        the CLI summary, benchmark run entries, and the persistent run
        ledger — so the accounting fields cannot drift apart. Carries
        numbers only, never live objects: ``trace`` is the per-phase
        stats summary, ``trace_totals`` the calibration-grade sums
        (``busy_s``/``n_items``/bytes per phase), ``plan`` the planner's
        summary dict.
        """
        return {
            "backend": self.backend_name,
            "phases": dict(self.phase_seconds),
            "total_s": self.total_s,
            "ipc": self.ipc,
            "trace": self.trace.summary_dict() if self.trace else None,
            "trace_totals": self.trace.phase_totals() if self.trace else None,
            "plan": self.plan.summary_dict() if self.plan else None,
            "plan_seconds": self.plan_seconds,
            "cache": self.cache,
            "tiles": self.tiles,
            "downgrades": [event.as_dict() for event in self.downgrades],
            "quarantine": (
                {
                    "slices": len(self.quarantine),
                    "doc_ids": list(self.quarantine.doc_ids),
                }
                if self.quarantine
                else None
            ),
        }


def run_pipeline(
    corpus: Corpus | DocumentStream,
    backend: ExecutionBackend | None = None,
    tfidf: TfIdfOperator | None = None,
    kmeans: KMeansOperator | None = None,
    *,
    trace: bool = False,
    degrade: bool = False,
    plan: RealPlan | str | None = None,
    calibration: CalibrationStore | str | None = None,
    cache: PipelineCache | str | None = None,
    memory_budget: int | None = None,
    ledger: RunLedger | str | None = None,
    observe: bool = True,
) -> RealRunResult:
    """Run the fused workflow for real and time its phases.

    ``corpus`` is either a materialized :class:`Corpus` or a
    :class:`~repro.io.parallel_read.DocumentStream` — with a stream, the
    input files are read concurrently (bounded prefetch) while phase 1
    tokenizes, and the time the pipeline actually spent *blocked* on reads
    is reported as its own ``read`` phase; the remainder of the wall time
    of phase 1 stays under ``input+wc``, so the phase totals still sum to
    end-to-end wall time. ``backend=None`` runs the legacy inline path
    (the reference for the bit-identical-output guarantee). Operators
    default to the paper's configuration (``map`` dictionaries, K=8).

    ``trace=True`` records one span per executed task (including file
    reads for streamed input) and attaches the resulting
    :class:`~repro.exec.spans.RunTrace` to the result; it requires a
    backend. If a phase raises mid-run with streamed input, the stream's
    reader pool is torn down before the error propagates — no reader
    threads are leaked.

    ``degrade=True`` absorbs a dead worker pool (a
    ``BrokenProcessPool`` that survived the backend's own restart
    breaker) by rebuilding the failed phase one backend tier down —
    processes → threads → sequential — with the run's accounting
    transplanted; each step is recorded as a
    :class:`~repro.exec.resilience.DowngradeEvent` on the result. Phase 1
    over *streamed* input cannot be replayed (the stream is partially
    consumed), so there the error still propagates.

    ``plan`` switches to adaptive execution and is mutually exclusive
    with ``backend``: pass ``"auto"`` to let an
    :class:`~repro.plan.AdaptivePlanner` pick each phase's configuration
    from measured cost constants (``calibration`` is then a
    :class:`~repro.plan.CalibrationStore`, a path to one, or ``None`` to
    probe the corpus), or pass a prebuilt :class:`~repro.plan.RealPlan`
    to execute it verbatim. Different phases may run on different
    backends; one IPC/span/quarantine bill spans them all, and the
    executed plan is recorded on the result. Planned outputs are
    bit-identical to every fixed-configuration run.

    ``cache`` (a :class:`~repro.cache.PipelineCache` or a store
    directory) memoizes each phase's result on disk, keyed on corpus
    content × operator config × code version: a warm run serves all
    three phases with zero operator recompute and bit-identical output,
    and a changed corpus recomputes only changed document shards (see
    ``docs/caching.md``). Caching materializes streamed input up front
    (content must be hashed before it can be served) and the run's
    hit/miss/savings accounting lands on ``result.cache``.

    ``memory_budget`` (bytes) switches the matrix phases to the tiled
    data plane: the transform spills binary row-range tiles to disk as
    it produces them and k-means streams them back chunk-at-a-time, so
    peak residency is O(tile + centroids) instead of O(matrix) — with
    bit-identical output (see ``docs/data_plane.md``). On the fixed
    path the budget tiles unconditionally; on the planned path it is
    handed to the planner, which only tiles when the estimated matrix
    exceeds the budget. The tiled transform is fail-fast (no quarantine
    bisection), and ``result.tiles`` carries the spill accounting.

    ``ledger`` (a :class:`~repro.obs.ledger.RunLedger` or a directory
    path) appends one wall-anchored record per executed step to the
    persistent run ledger — including a ``failed`` record for the step
    that raised, when one does — and notes the append on
    ``result.ledger``. See ``docs/ledger.md``.

    ``observe`` (default on) lets a ``plan="auto"`` run feed its
    measured span/IPC totals back into the calibration store when it
    finishes — embedded callers sharpen planning exactly like the CLI
    does. Pass ``observe=False`` for runs that must not move the
    constants (A/B comparisons against a frozen store).
    """
    if plan is not None:
        if backend is not None:
            raise ConfigurationError(
                "pass either backend= or plan=, not both"
            )
        return _run_planned(
            corpus, plan, tfidf=tfidf, kmeans=kmeans,
            trace=trace, degrade=degrade, calibration=calibration,
            cache=cache, memory_budget=memory_budget, ledger=ledger,
            observe=observe,
        )
    if trace and backend is None:
        raise ConfigurationError("tracing requires an execution backend")
    tfidf = tfidf or TfIdfOperator()
    kmeans = kmeans or KMeansOperator()
    seconds: dict[str, float] = {}
    run_ledger = RunLedger.ensure(ledger)
    anchor = WallAnchor.capture() if run_ledger is not None else None
    # The step a raising run bills its failure record to — run_phase
    # keeps it current, so mid-flight errors land on the right step.
    current_step = {"name": PHASE_INPUT_WC}
    streamed = isinstance(corpus, DocumentStream)
    downgrades: list[DowngradeEvent] = []
    created: list[ExecutionBackend] = []
    if backend is not None:
        backend.ipc.reset()  # this run's bill only
        backend.quarantine.clear()
        if trace:
            backend.spans.begin_run()
            if streamed:
                corpus.spans = backend.spans

    source = corpus
    session: RunCacheSession | None = None
    pipeline_cache = PipelineCache.ensure(cache)
    if pipeline_cache is not None:
        if streamed:
            # Content must be hashed before it can be served: drain the
            # stream (reads still overlap via its prefetch pool, and
            # traced reader spans were armed above) and bill the blocked
            # time as the read phase, exactly as the planned path does.
            source = list(corpus)
            seconds[PHASE_READ] = corpus.wait_seconds
            corpus.close()
            streamed = False
        session = pipeline_cache.begin_run(source, tfidf, kmeans)

    def run_phase(phase: str, thunk, *, replayable: bool = True):
        """One phase attempt, degrading through the tiers if allowed."""
        nonlocal backend
        current_step["name"] = phase
        while True:
            try:
                return thunk(backend)
            except BrokenProcessPool as exc:
                if backend is None or not degrade or not replayable:
                    raise
                lower = _downgraded(backend)
                if lower is None:
                    raise
                _transplant(backend, lower)
                created.append(lower)
                downgrades.append(
                    DowngradeEvent(
                        phase=phase,
                        from_backend=backend.name,
                        to_backend=lower.name,
                        reason=str(exc),
                    )
                )
                backend = lower

    try:
        t0 = time.perf_counter()
        if session is not None:
            wc = session.wordcount(
                tfidf.wordcount,
                compute_all=lambda: run_phase(
                    PHASE_INPUT_WC,
                    lambda be: tfidf.wordcount.run(source, backend=be),
                ),
                compute_subset=lambda sub: run_phase(
                    PHASE_INPUT_WC,
                    lambda be: tfidf.wordcount.run(sub, backend=be),
                ),
            )
        else:
            wc = run_phase(
                PHASE_INPUT_WC,
                lambda be: tfidf.wordcount.run(source, backend=be),
                replayable=not streamed,
            )
        t1 = time.perf_counter()
        if streamed:
            read_s = corpus.wait_seconds
            seconds[PHASE_READ] = read_s
            seconds[PHASE_INPUT_WC] = max(0.0, (t1 - t0) - read_s)
        else:
            seconds[PHASE_INPUT_WC] = t1 - t0

        if memory_budget is not None:
            # Tiled data plane: the transform spills row-range tiles as
            # it goes, k-means streams them back. The result's matrix
            # owns the spill store; tiles live until it is closed.
            from repro.tiles.store import TileStore

            tile_store = TileStore(
                memory_budget=memory_budget,
                stats=backend.ipc if backend is not None else None,
            )
            tile_docs = _tile_docs(wc, memory_budget)

            def compute_tiled():
                return run_phase(
                    PHASE_TRANSFORM,
                    lambda be: tfidf.transform_wordcount_tiled(
                        wc, tile_store, backend=be, tile_docs=tile_docs
                    ),
                )

            if session is not None:
                scores = session.transform_tiled(
                    tfidf, wc, tile_store, compute_all=compute_tiled
                )
            else:
                scores = compute_tiled()
        elif session is not None:
            scores = session.transform(
                tfidf,
                wc,
                compute_all=lambda: run_phase(
                    PHASE_TRANSFORM,
                    lambda be: tfidf.transform_wordcount(wc, backend=be),
                ),
                compute_rows=lambda vocabulary, idf, chunks: run_phase(
                    PHASE_TRANSFORM,
                    lambda be: _transform_chunks(
                        be, tfidf, vocabulary, idf, chunks
                    ),
                ),
            )
        else:
            scores = run_phase(
                PHASE_TRANSFORM,
                lambda be: tfidf.transform_wordcount(wc, backend=be),
            )
        t2 = time.perf_counter()
        seconds[PHASE_TRANSFORM] = t2 - t1

        if session is not None:
            clusters = session.kmeans_fit(
                lambda: run_phase(
                    PHASE_KMEANS,
                    lambda be: kmeans.fit(scores.matrix, backend=be),
                )
            )
        else:
            clusters = run_phase(
                PHASE_KMEANS, lambda be: kmeans.fit(scores.matrix, backend=be)
            )
        t3 = time.perf_counter()
        seconds[PHASE_KMEANS] = t3 - t2
    finally:
        # A phase that raised mid-run must not leak the stream's reader
        # threads: closing is idempotent and a no-op after clean exhaustion.
        if streamed:
            corpus.close()
        if trace:
            backend.spans.end_run()
        for lower in created:
            lower.close()
        if session is not None:
            session.finish()
        if run_ledger is not None and sys.exc_info()[1] is not None:
            run_ledger.record_failed_run(
                anchor=anchor,
                phase_seconds=seconds,
                failed_step=current_step["name"],
                error=sys.exc_info()[1],
                backend=backend.name if backend is not None else "inline",
                n_docs=len(source) if hasattr(source, "__len__") else 0,
            )

    run_trace: RunTrace | None = None
    if trace:
        run_trace = RunTrace.from_recorder(
            backend.spans,
            phase_wall_s=dict(seconds),
            backend_name=backend.name,
            workers=backend.workers,
        )

    quarantine = None
    if backend is not None and backend.quarantine:
        quarantine = backend.quarantine

    result = RealRunResult(
        tfidf=scores,
        kmeans=clusters,
        phase_seconds=seconds,
        backend_name=backend.name if backend is not None else "inline",
        ipc=backend.ipc.snapshot() if backend is not None else None,
        trace=run_trace,
        quarantine=quarantine,
        downgrades=downgrades,
        cache=session.snapshot() if session is not None else None,
        tiles=_spill_snapshot(scores),
    )
    if run_ledger is not None:
        result.ledger = run_ledger.record_run(
            result,
            anchor=anchor,
            config={
                "trace": trace,
                "degrade": degrade,
                "cached": session is not None,
                "memory_budget": memory_budget,
            },
        )
    return result


def _spill_snapshot(scores: TfIdfResult) -> dict | None:
    """The matrix's spill accounting, when it went through the tile plane."""
    spill_stats = getattr(scores.matrix, "spill_stats", None)
    return spill_stats() if spill_stats is not None else None


def _must_tile(
    store: CalibrationStore, n_docs: int, memory_budget: int | None
) -> bool:
    """The planner's tiling test, shared so cache routing agrees with it."""
    if memory_budget is None:
        return False
    constants = store.phases.get("transform")
    if constants is None:
        return False
    return int(n_docs * constants.result_bytes_per_doc) > memory_budget


def _tile_docs(wc, memory_budget: int) -> int:
    """Rows per tile under ``memory_budget``, from phase-1 statistics.

    Deliberately an *overestimate* of per-document bytes (every token
    priced as a distinct nonzero), so a tile plus its working copies
    land well inside the budget — the target is a quarter of it.
    """
    n = wc.n_docs
    if n <= 0:
        return 1
    per_doc = 24.0 * (wc.total_tokens / n) + 40.0
    docs = int((memory_budget / 4) // per_doc)
    return max(1, min(n, docs))


def _transform_chunks(backend, tfidf, vocabulary, idf, chunks):
    """Transform pre-extracted entry-list chunks (the cache's changed
    shards) on ``backend``, bit-identically to the full transform."""
    if backend is None:
        kernels.init_transform_worker(vocabulary, idf, tfidf.min_df)
        return [kernels.transform_chunk(chunk) for chunk in chunks]
    backend.begin_phase(PHASE_TRANSFORM)
    backend.configure(
        kernels.init_transform_worker, (vocabulary, idf, tfidf.min_df)
    )
    return backend.map(kernels.transform_chunk, chunks, grain=1)


def _run_planned(
    corpus: Corpus | DocumentStream,
    plan: RealPlan | str,
    *,
    tfidf: TfIdfOperator | None,
    kmeans: KMeansOperator | None,
    trace: bool,
    degrade: bool,
    calibration: CalibrationStore | str | None,
    cache: PipelineCache | str | None = None,
    memory_budget: int | None = None,
    ledger: RunLedger | str | None = None,
    observe: bool = True,
) -> RealRunResult:
    """Execute a :class:`RealPlan`, phase by phase, on its chosen backends."""
    kmeans = kmeans or KMeansOperator()
    run_ledger = RunLedger.ensure(ledger)
    anchor = WallAnchor.capture() if run_ledger is not None else None
    current_step = {"name": PHASE_INPUT_WC}
    plan_t0 = time.perf_counter()
    read_spans: SpanRecorder | None = None
    read_s: float | None = None
    if isinstance(corpus, DocumentStream):
        # The probe and the planner need the document count up front, and
        # a plan may split phase 1 from the read anyway — materialize.
        # Read overlap stays a fixed-backend feature. The reader spans are
        # captured on a standalone recorder (no backend exists yet) that
        # the primary backend adopts below, so traced planned runs keep
        # their ``read`` phase.
        if trace:
            read_spans = SpanRecorder()
            read_spans.begin_run()
            corpus.spans = read_spans
        docs: Corpus | list = list(corpus)
        read_s = corpus.wait_seconds
        corpus.close()
    else:
        docs = corpus

    session: RunCacheSession | None = None
    pipeline_cache = PipelineCache.ensure(cache)
    if pipeline_cache is not None:
        session = pipeline_cache.begin_run(
            docs, tfidf or TfIdfOperator(), kmeans
        )

    observe_store: CalibrationStore | None = None
    if plan == "auto":
        if isinstance(calibration, CalibrationStore):
            store = calibration
        else:
            store = CalibrationStore.load_or_probe(calibration, docs)
        observe_store = store
        plan = AdaptivePlanner(store).plan(
            n_docs=len(docs),
            kmeans_iters=kmeans.max_iters,
            # Phases already cached are pinned to near-zero "cached"
            # plans so the planner routes around skippable work; fusion
            # is suppressed for cache-enabled runs because fused
            # intermediates never materialize parent-side (nothing could
            # be stored, and the cache wins on repeat traffic anyway).
            cached_phases=(
                session.cached_phases(
                    # Mirror the planner's own must-tile test, so the
                    # cache entry checked is the one a budgeted plan
                    # would actually serve.
                    prefer_tiled=_must_tile(store, len(docs), memory_budget)
                )
                if session is not None
                else frozenset()
            ),
            allow_fusion=session is None,
            memory_budget=memory_budget,
        )
    elif not isinstance(plan, RealPlan):
        raise ConfigurationError(
            f'plan must be "auto" or a RealPlan, got {plan!r}'
        )
    for phase in (PHASE_INPUT_WC, PHASE_TRANSFORM, PHASE_KMEANS):
        if phase not in plan.phases:
            raise ConfigurationError(f"plan has no entry for phase {phase!r}")
    wc_plan = plan.phases[PHASE_INPUT_WC]
    tr_plan = plan.phases[PHASE_TRANSFORM]
    km_plan = plan.phases[PHASE_KMEANS]
    if tfidf is None:
        # The dictionary implementation is a planner knob only when the
        # caller didn't pin the operators themselves.
        tfidf = TfIdfOperator(
            wc_dict_kind=wc_plan.dict_kind,
            transform_dict_kind=tr_plan.dict_kind,
        )
    # Input blocking is a read phase, exactly as on the fixed path; only
    # the probing/enumeration remainder is billed to planning.
    plan_seconds = time.perf_counter() - plan_t0
    if read_s is not None:
        plan_seconds = max(0.0, plan_seconds - read_s)

    # One backend instance per distinct (tier, workers, shm) — a fused
    # transform *must* land on the word count's live pool, and equal
    # configurations shouldn't pay two spawns.
    cache: dict[tuple[str, int, bool], ExecutionBackend] = {}
    created: list[ExecutionBackend] = []

    def backend_for(phase_plan) -> ExecutionBackend:
        key = (phase_plan.backend, phase_plan.workers, phase_plan.shm)
        be = cache.get(key)
        if be is None:
            be = make_backend(
                phase_plan.backend,
                phase_plan.workers,
                shm=phase_plan.shm if phase_plan.backend == "processes" else None,
            )
            if created:
                # One bill for the whole run, whichever backend executes.
                _transplant(created[0], be)
            created.append(be)
            cache[key] = be
        return be

    primary = backend_for(wc_plan)
    if trace:
        if read_spans is not None:
            # Adopt the recorder that already holds the reader spans;
            # later backends share it via _transplant from ``created[0]``.
            primary.spans = read_spans
        else:
            primary.spans.begin_run()
    seconds: dict[str, float] = {}
    if read_s is not None:
        seconds[PHASE_READ] = read_s
    downgrades: list[DowngradeEvent] = []

    def run_phase(phase: str, be: ExecutionBackend, thunk, *, replayable=True):
        """One phase attempt on ``be``, degrading through tiers if allowed."""
        current_step["name"] = phase
        while True:
            try:
                return thunk(be)
            except BrokenProcessPool as exc:
                if not degrade or not replayable:
                    raise
                lower = _downgraded(be)
                if lower is None:
                    raise
                _transplant(be, lower)
                created.append(lower)
                downgrades.append(
                    DowngradeEvent(
                        phase=phase,
                        from_backend=be.name,
                        to_backend=lower.name,
                        reason=str(exc),
                    )
                )
                be = lower

    try:
        t0 = time.perf_counter()
        if plan.fused:
            # Fused intermediates stay worker-resident — there is nothing
            # parent-side to serve or store for wc/transform, so a cache
            # session (possible only with a verbatim fused RealPlan) only
            # fronts the k-means phase here.
            fused = run_phase(
                PHASE_INPUT_WC,
                backend_for(wc_plan),
                lambda be: tfidf.wordcount.run_fused(
                    docs, be, min_df=tfidf.min_df, grain=wc_plan.grain
                ),
            )
            t1 = time.perf_counter()
            seconds[PHASE_INPUT_WC] = t1 - t0
            # The flush rides the word count's live workers; a downgrade
            # would discard their resident state, so no replay here.
            scores = run_phase(
                PHASE_TRANSFORM,
                fused.backend,
                lambda be: tfidf.transform_resident(fused),
                replayable=False,
            )
        else:
            def compute_wc(texts):
                return run_phase(
                    PHASE_INPUT_WC,
                    backend_for(wc_plan),
                    lambda be: tfidf.wordcount.run(
                        texts, backend=be, grain=wc_plan.grain
                    ),
                )

            if session is not None:
                wc = session.wordcount(
                    tfidf.wordcount,
                    compute_all=lambda: compute_wc(docs),
                    compute_subset=compute_wc,
                )
            else:
                wc = compute_wc(docs)
            t1 = time.perf_counter()
            seconds[PHASE_INPUT_WC] = t1 - t0

            if tr_plan.tiled:
                from repro.tiles.store import TileStore

                run_budget = (
                    plan.memory_budget
                    if plan.memory_budget is not None
                    else memory_budget
                )
                tile_store = TileStore(
                    memory_budget=run_budget, stats=primary.ipc
                )

                def compute_tr_tiled():
                    tile_docs = (
                        _tile_docs(wc, run_budget)
                        if run_budget is not None
                        else None
                    )
                    return run_phase(
                        PHASE_TRANSFORM,
                        backend_for(tr_plan),
                        lambda be: tfidf.transform_wordcount_tiled(
                            wc, tile_store, backend=be,
                            grain=tr_plan.grain, tile_docs=tile_docs,
                        ),
                    )

                if session is not None:
                    scores = session.transform_tiled(
                        tfidf, wc, tile_store, compute_all=compute_tr_tiled
                    )
                else:
                    scores = compute_tr_tiled()
            else:
                def compute_tr():
                    return run_phase(
                        PHASE_TRANSFORM,
                        backend_for(tr_plan),
                        lambda be: tfidf.transform_wordcount(
                            wc, backend=be, grain=tr_plan.grain
                        ),
                    )

                if session is not None:
                    scores = session.transform(
                        tfidf,
                        wc,
                        compute_all=compute_tr,
                        compute_rows=lambda vocabulary, idf, chunks: (
                            run_phase(
                                PHASE_TRANSFORM,
                                backend_for(tr_plan),
                                lambda be: _transform_chunks(
                                    be, tfidf, vocabulary, idf, chunks
                                ),
                            )
                        ),
                    )
                else:
                    scores = compute_tr()
        t2 = time.perf_counter()
        seconds[PHASE_TRANSFORM] = t2 - t1

        def compute_km():
            return run_phase(
                PHASE_KMEANS,
                backend_for(km_plan),
                lambda be: kmeans.fit(scores.matrix, backend=be),
            )

        if session is not None:
            clusters = session.kmeans_fit(compute_km)
        else:
            clusters = compute_km()
        t3 = time.perf_counter()
        seconds[PHASE_KMEANS] = t3 - t2
    finally:
        if trace:
            primary.spans.end_run()
        for be in created:
            be.close()
        if session is not None:
            session.finish()
        if run_ledger is not None and sys.exc_info()[1] is not None:
            run_ledger.record_failed_run(
                anchor=anchor,
                phase_seconds=seconds,
                failed_step=current_step["name"],
                error=sys.exc_info()[1],
                backend="planned",
                kind="planned",
                n_docs=len(docs),
            )

    run_trace: RunTrace | None = None
    if trace:
        run_trace = RunTrace.from_recorder(
            primary.spans,
            phase_wall_s=dict(seconds),
            backend_name="planned",
            workers=max(be.workers for be in created),
        )

    result = RealRunResult(
        tfidf=scores,
        kmeans=clusters,
        phase_seconds=seconds,
        backend_name="planned",
        ipc=primary.ipc.snapshot(),
        trace=run_trace,
        quarantine=primary.quarantine if primary.quarantine else None,
        downgrades=downgrades,
        plan=plan,
        plan_seconds=plan_seconds,
        cache=session.snapshot() if session is not None else None,
        tiles=_spill_snapshot(scores),
    )
    if run_ledger is not None:
        result.ledger = run_ledger.record_run(
            result,
            anchor=anchor,
            kind="planned",
            config={
                "trace": trace,
                "degrade": degrade,
                "cached": session is not None,
                "memory_budget": memory_budget,
            },
        )
    if observe_store is not None and observe:
        # Keep learning from whatever executed: cached phases ran no
        # tasks (no spans, no IPC bytes), so their constants are left
        # untouched; executed phases sharpen the model for the next plan.
        observe_store.observe_run(result, n_docs=len(docs))
        if isinstance(calibration, str):
            observe_store.save(calibration)
    return result
