"""Real (wall-clock) fused pipeline: TF/IDF → K-means on a backend.

The simulated workflow (:mod:`repro.core.workflow`) answers scaling
questions in virtual time; this module is its real-execution twin. It
runs the same fused TF/IDF → K-means composition — scores handed over in
memory, no ARFF round trip — on an actual
:class:`~repro.exec.inline.ExecutionBackend`, timing each phase with the
host's wall clock. It is the engine behind ``python -m repro pipeline``
and the wall-clock benchmark (:mod:`repro.bench.wallclock`).

With ``trace=True`` the backend's :class:`~repro.exec.spans.SpanRecorder`
is armed for the run and the result carries a
:class:`~repro.exec.spans.RunTrace`: one span per executed task, on every
worker, from which per-phase utilization, queue wait, and straggler ratio
are derived. Tracing never changes the computation — outputs are
bit-identical with tracing on or off.
"""

from __future__ import annotations

import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.exec.inline import ExecutionBackend, SequentialBackend, ThreadBackend
from repro.exec.process import ProcessBackend
from repro.exec.resilience import DowngradeEvent, QuarantineReport
from repro.exec.spans import RunTrace
from repro.io.parallel_read import DocumentStream
from repro.ops.kmeans import PHASE_KMEANS, KMeansOperator, KMeansResult
from repro.ops.tfidf import PHASE_TRANSFORM, TfIdfOperator, TfIdfResult
from repro.ops.wordcount import PHASE_INPUT_WC
from repro.text.corpus import Corpus

__all__ = ["RealRunResult", "run_pipeline", "PHASE_READ"]


def _downgraded(backend: ExecutionBackend) -> ExecutionBackend | None:
    """The next tier down (processes → threads → sequential), or ``None``."""
    if isinstance(backend, ProcessBackend):
        return ThreadBackend(backend.workers, backend.resilience)
    if isinstance(backend, ThreadBackend):
        return SequentialBackend(backend.resilience)
    return None


def _transplant(old: ExecutionBackend, new: ExecutionBackend) -> None:
    """Carry one run's accounting state onto a downgraded backend.

    IPC counters, span recorder, quarantine report, and task-id counters
    move over so the run's bill stays continuous across the downgrade.
    The fault plan deliberately does *not* move: its directives targeted
    the dead backend's workers (an ``exit`` fault re-fired in-process
    would kill the parent), and the point of degrading is to finish.
    """
    new.ipc = old.ipc
    new.spans = old.spans
    new.quarantine = old.quarantine
    new._task_counters = old._task_counters

#: Phase label for time the pipeline spent blocked on input reads. Only
#: reported for streamed input (a :class:`DocumentStream`); a materialized
#: corpus has no read phase.
PHASE_READ = "read"


@dataclass
class RealRunResult:
    """Outcome of one real fused run, with wall-clock phase timings."""

    tfidf: TfIdfResult
    kmeans: KMeansResult
    #: Wall-clock seconds per phase, keyed by the paper's phase names.
    phase_seconds: dict[str, float] = field(default_factory=dict)
    backend_name: str = "sequential"
    #: IPC-accounting snapshot of the run (``{"phases": ..., "total": ...}``,
    #: see :class:`repro.exec.shm.IpcStats`); ``None`` for the inline path.
    ipc: dict | None = None
    #: Per-task span trace (:class:`repro.exec.spans.RunTrace`) when the run
    #: was traced; ``None`` otherwise.
    trace: RunTrace | None = None
    #: Items isolated by ``on_poison="quarantine"`` during this run
    #: (:class:`repro.exec.resilience.QuarantineReport`); ``None`` when
    #: nothing was quarantined (including every fail-fast run).
    quarantine: QuarantineReport | None = None
    #: Backend downgrades performed because ``degrade=True`` absorbed a
    #: dead worker pool, in order.
    downgrades: list[DowngradeEvent] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return sum(self.phase_seconds.values())


def run_pipeline(
    corpus: Corpus | DocumentStream,
    backend: ExecutionBackend | None = None,
    tfidf: TfIdfOperator | None = None,
    kmeans: KMeansOperator | None = None,
    *,
    trace: bool = False,
    degrade: bool = False,
) -> RealRunResult:
    """Run the fused workflow for real and time its phases.

    ``corpus`` is either a materialized :class:`Corpus` or a
    :class:`~repro.io.parallel_read.DocumentStream` — with a stream, the
    input files are read concurrently (bounded prefetch) while phase 1
    tokenizes, and the time the pipeline actually spent *blocked* on reads
    is reported as its own ``read`` phase; the remainder of the wall time
    of phase 1 stays under ``input+wc``, so the phase totals still sum to
    end-to-end wall time. ``backend=None`` runs the legacy inline path
    (the reference for the bit-identical-output guarantee). Operators
    default to the paper's configuration (``map`` dictionaries, K=8).

    ``trace=True`` records one span per executed task (including file
    reads for streamed input) and attaches the resulting
    :class:`~repro.exec.spans.RunTrace` to the result; it requires a
    backend. If a phase raises mid-run with streamed input, the stream's
    reader pool is torn down before the error propagates — no reader
    threads are leaked.

    ``degrade=True`` absorbs a dead worker pool (a
    ``BrokenProcessPool`` that survived the backend's own restart
    breaker) by rebuilding the failed phase one backend tier down —
    processes → threads → sequential — with the run's accounting
    transplanted; each step is recorded as a
    :class:`~repro.exec.resilience.DowngradeEvent` on the result. Phase 1
    over *streamed* input cannot be replayed (the stream is partially
    consumed), so there the error still propagates.
    """
    if trace and backend is None:
        raise ConfigurationError("tracing requires an execution backend")
    tfidf = tfidf or TfIdfOperator()
    kmeans = kmeans or KMeansOperator()
    seconds: dict[str, float] = {}
    streamed = isinstance(corpus, DocumentStream)
    downgrades: list[DowngradeEvent] = []
    created: list[ExecutionBackend] = []
    if backend is not None:
        backend.ipc.reset()  # this run's bill only
        backend.quarantine.clear()
        if trace:
            backend.spans.begin_run()
            if streamed:
                corpus.spans = backend.spans

    def run_phase(phase: str, thunk, *, replayable: bool = True):
        """One phase attempt, degrading through the tiers if allowed."""
        nonlocal backend
        while True:
            try:
                return thunk(backend)
            except BrokenProcessPool as exc:
                if backend is None or not degrade or not replayable:
                    raise
                lower = _downgraded(backend)
                if lower is None:
                    raise
                _transplant(backend, lower)
                created.append(lower)
                downgrades.append(
                    DowngradeEvent(
                        phase=phase,
                        from_backend=backend.name,
                        to_backend=lower.name,
                        reason=str(exc),
                    )
                )
                backend = lower

    try:
        t0 = time.perf_counter()
        wc = run_phase(
            PHASE_INPUT_WC,
            lambda be: tfidf.wordcount.run(corpus, backend=be),
            replayable=not streamed,
        )
        t1 = time.perf_counter()
        if streamed:
            read_s = corpus.wait_seconds
            seconds[PHASE_READ] = read_s
            seconds[PHASE_INPUT_WC] = max(0.0, (t1 - t0) - read_s)
        else:
            seconds[PHASE_INPUT_WC] = t1 - t0

        scores = run_phase(
            PHASE_TRANSFORM,
            lambda be: tfidf.transform_wordcount(wc, backend=be),
        )
        t2 = time.perf_counter()
        seconds[PHASE_TRANSFORM] = t2 - t1

        clusters = run_phase(
            PHASE_KMEANS, lambda be: kmeans.fit(scores.matrix, backend=be)
        )
        t3 = time.perf_counter()
        seconds[PHASE_KMEANS] = t3 - t2
    finally:
        # A phase that raised mid-run must not leak the stream's reader
        # threads: closing is idempotent and a no-op after clean exhaustion.
        if streamed:
            corpus.close()
        if trace:
            backend.spans.end_run()
        for lower in created:
            lower.close()

    run_trace: RunTrace | None = None
    if trace:
        run_trace = RunTrace.from_recorder(
            backend.spans,
            phase_wall_s=dict(seconds),
            backend_name=backend.name,
            workers=backend.workers,
        )

    quarantine = None
    if backend is not None and backend.quarantine:
        quarantine = backend.quarantine

    return RealRunResult(
        tfidf=scores,
        kmeans=clusters,
        phase_seconds=seconds,
        backend_name=backend.name if backend is not None else "inline",
        ipc=backend.ipc.snapshot() if backend is not None else None,
        trace=run_trace,
        quarantine=quarantine,
        downgrades=downgrades,
    )
