"""Real (wall-clock) fused pipeline: TF/IDF → K-means on a backend.

The simulated workflow (:mod:`repro.core.workflow`) answers scaling
questions in virtual time; this module is its real-execution twin. It
runs the same fused TF/IDF → K-means composition — scores handed over in
memory, no ARFF round trip — on an actual
:class:`~repro.exec.inline.ExecutionBackend`, timing each phase with the
host's wall clock. It is the engine behind ``python -m repro pipeline``
and the wall-clock benchmark (:mod:`repro.bench.wallclock`).

With ``trace=True`` the backend's :class:`~repro.exec.spans.SpanRecorder`
is armed for the run and the result carries a
:class:`~repro.exec.spans.RunTrace`: one span per executed task, on every
worker, from which per-phase utilization, queue wait, and straggler ratio
are derived. Tracing never changes the computation — outputs are
bit-identical with tracing on or off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.exec.inline import ExecutionBackend
from repro.exec.spans import RunTrace
from repro.io.parallel_read import DocumentStream
from repro.ops.kmeans import PHASE_KMEANS, KMeansOperator, KMeansResult
from repro.ops.tfidf import PHASE_TRANSFORM, TfIdfOperator, TfIdfResult
from repro.ops.wordcount import PHASE_INPUT_WC
from repro.text.corpus import Corpus

__all__ = ["RealRunResult", "run_pipeline", "PHASE_READ"]

#: Phase label for time the pipeline spent blocked on input reads. Only
#: reported for streamed input (a :class:`DocumentStream`); a materialized
#: corpus has no read phase.
PHASE_READ = "read"


@dataclass
class RealRunResult:
    """Outcome of one real fused run, with wall-clock phase timings."""

    tfidf: TfIdfResult
    kmeans: KMeansResult
    #: Wall-clock seconds per phase, keyed by the paper's phase names.
    phase_seconds: dict[str, float] = field(default_factory=dict)
    backend_name: str = "sequential"
    #: IPC-accounting snapshot of the run (``{"phases": ..., "total": ...}``,
    #: see :class:`repro.exec.shm.IpcStats`); ``None`` for the inline path.
    ipc: dict | None = None
    #: Per-task span trace (:class:`repro.exec.spans.RunTrace`) when the run
    #: was traced; ``None`` otherwise.
    trace: RunTrace | None = None

    @property
    def total_s(self) -> float:
        return sum(self.phase_seconds.values())


def run_pipeline(
    corpus: Corpus | DocumentStream,
    backend: ExecutionBackend | None = None,
    tfidf: TfIdfOperator | None = None,
    kmeans: KMeansOperator | None = None,
    *,
    trace: bool = False,
) -> RealRunResult:
    """Run the fused workflow for real and time its phases.

    ``corpus`` is either a materialized :class:`Corpus` or a
    :class:`~repro.io.parallel_read.DocumentStream` — with a stream, the
    input files are read concurrently (bounded prefetch) while phase 1
    tokenizes, and the time the pipeline actually spent *blocked* on reads
    is reported as its own ``read`` phase; the remainder of the wall time
    of phase 1 stays under ``input+wc``, so the phase totals still sum to
    end-to-end wall time. ``backend=None`` runs the legacy inline path
    (the reference for the bit-identical-output guarantee). Operators
    default to the paper's configuration (``map`` dictionaries, K=8).

    ``trace=True`` records one span per executed task (including file
    reads for streamed input) and attaches the resulting
    :class:`~repro.exec.spans.RunTrace` to the result; it requires a
    backend. If a phase raises mid-run with streamed input, the stream's
    reader pool is torn down before the error propagates — no reader
    threads are leaked.
    """
    if trace and backend is None:
        raise ConfigurationError("tracing requires an execution backend")
    tfidf = tfidf or TfIdfOperator()
    kmeans = kmeans or KMeansOperator()
    seconds: dict[str, float] = {}
    streamed = isinstance(corpus, DocumentStream)
    if backend is not None:
        backend.ipc.reset()  # this run's bill only
        if trace:
            backend.spans.begin_run()
            if streamed:
                corpus.spans = backend.spans

    try:
        t0 = time.perf_counter()
        wc = tfidf.wordcount.run(corpus, backend=backend)
        t1 = time.perf_counter()
        if streamed:
            read_s = corpus.wait_seconds
            seconds[PHASE_READ] = read_s
            seconds[PHASE_INPUT_WC] = max(0.0, (t1 - t0) - read_s)
        else:
            seconds[PHASE_INPUT_WC] = t1 - t0

        scores = tfidf.transform_wordcount(wc, backend=backend)
        t2 = time.perf_counter()
        seconds[PHASE_TRANSFORM] = t2 - t1

        clusters = kmeans.fit(scores.matrix, backend=backend)
        t3 = time.perf_counter()
        seconds[PHASE_KMEANS] = t3 - t2
    finally:
        # A phase that raised mid-run must not leak the stream's reader
        # threads: closing is idempotent and a no-op after clean exhaustion.
        if streamed:
            corpus.close()
        if trace:
            backend.spans.end_run()

    run_trace: RunTrace | None = None
    if trace:
        run_trace = RunTrace.from_recorder(
            backend.spans,
            phase_wall_s=dict(seconds),
            backend_name=backend.name,
            workers=backend.workers,
        )

    return RealRunResult(
        tfidf=scores,
        kmeans=clusters,
        phase_seconds=seconds,
        backend_name=backend.name if backend is not None else "inline",
        ipc=backend.ipc.snapshot() if backend is not None else None,
        trace=run_trace,
    )
