"""Workflow engine: operator DAGs with per-edge materialization.

The paper contrasts two ways of composing operators (§3.3):

* **discrete** — each operator is its own executable; they communicate by
  dumping intermediates to disk (here: ARFF through a
  :class:`~repro.core.operator.Materializer`), paying serialization,
  serial I/O and parsing, but freeing each operator's memory as soon as
  its output is on disk;
* **merged** (fused) — operators share one address space and hand results
  over in memory, skipping the round trip entirely but holding both
  operators' state live at once.

An :class:`Edge` of the workflow graph carries that choice, so the same
graph runs in either mode — or in a mix, edge by edge, which is what the
planner exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.cost_model import (
    DEFAULT_COSTS,
    UNIT_SCALE,
    CostConstants,
    WorkloadScale,
)
from repro.core.operator import (
    ArffScoresMaterializer,
    KMeansOp,
    Materializer,
    TfIdfOp,
    WorkflowContext,
    WorkflowOp,
)
from repro.errors import WorkflowError
from repro.exec.metrics import Timeline
from repro.exec.scheduler import SimScheduler
from repro.io.storage import Storage

__all__ = ["Edge", "Workflow", "WorkflowResult", "build_tfidf_kmeans_workflow"]

MEMORY = "memory"
FILE = "file"


@dataclass
class Edge:
    """A dataflow edge between two operator ports."""

    src: str
    src_port: str
    dst: str
    dst_port: str
    #: ``"memory"`` (fused) or ``"file"`` (discrete).
    materialize: str = MEMORY
    #: Required when ``materialize == "file"``.
    materializer: Materializer | None = None

    def __post_init__(self) -> None:
        if self.materialize not in (MEMORY, FILE):
            raise WorkflowError(
                f"edge materialization must be 'memory' or 'file', "
                f"got {self.materialize!r}"
            )
        if self.materialize == FILE and self.materializer is None:
            raise WorkflowError(
                f"file edge {self.src}.{self.src_port} -> "
                f"{self.dst}.{self.dst_port} needs a materializer"
            )

    @property
    def key(self) -> str:
        return f"{self.src}.{self.src_port}->{self.dst}.{self.dst_port}"


@dataclass
class WorkflowResult:
    """Outcome of one workflow run."""

    #: Output values of every operator, keyed ``"op.port"``.
    outputs: dict[str, Any]
    timeline: Timeline
    #: Modelled peak resident memory during the run.
    peak_resident_bytes: int
    workers: int
    #: Edge keys that were materialised through files.
    file_edges: list[str] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        """Total virtual seconds of the run."""
        return self.timeline.total_s

    def breakdown(self) -> dict[str, float]:
        """Virtual seconds per phase name (the figures' stacking data)."""
        return self.timeline.breakdown()

    def trace(self, width: int = 64, max_phases: int | None = 12) -> str:
        """ASCII Gantt trace of the run's phases (debugging aid)."""
        from repro.exec.trace import render_timeline_trace

        return render_timeline_trace(
            self.timeline, width=width, max_phases=max_phases
        )

    def value(self, ref: str) -> Any:
        """Look up an output by its ``"op.port"`` reference."""
        try:
            return self.outputs[ref]
        except KeyError:
            raise WorkflowError(
                f"no output {ref!r}; available: {sorted(self.outputs)}"
            ) from None


class Workflow:
    """A DAG of :class:`WorkflowOp` nodes."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.ops: dict[str, WorkflowOp] = {}
        self.edges: list[Edge] = []

    # -- construction ---------------------------------------------------------------

    def add(self, op: WorkflowOp) -> WorkflowOp:
        """Register an operator node; names must be unique."""
        if op.name in self.ops:
            raise WorkflowError(f"duplicate operator name {op.name!r}")
        self.ops[op.name] = op
        return op

    def connect(
        self,
        src: str,
        src_port: str,
        dst: str,
        dst_port: str,
        materialize: str = MEMORY,
        materializer: Materializer | None = None,
    ) -> Edge:
        """Wire ``src.src_port`` to ``dst.dst_port``; ports must exist."""
        for end, port, direction in ((src, src_port, "outputs"), (dst, dst_port, "inputs")):
            if end not in self.ops:
                raise WorkflowError(f"unknown operator {end!r}")
            if port not in getattr(self.ops[end], direction):
                raise WorkflowError(
                    f"operator {end!r} has no {direction[:-1]} port {port!r}"
                )
        edge = Edge(src, src_port, dst, dst_port, materialize, materializer)
        self.edges.append(edge)
        return edge

    # -- analysis --------------------------------------------------------------------

    def topological_order(self) -> list[str]:
        """Kahn's algorithm; raises on cycles."""
        incoming = {name: 0 for name in self.ops}
        for edge in self.edges:
            incoming[edge.dst] += 1
        ready = sorted(name for name, count in incoming.items() if count == 0)
        order: list[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for edge in self.edges:
                if edge.src == name:
                    incoming[edge.dst] -= 1
                    if incoming[edge.dst] == 0:
                        ready.append(edge.dst)
            ready.sort()
        if len(order) != len(self.ops):
            raise WorkflowError(f"workflow {self.name!r} contains a cycle")
        return order

    def file_edges(self) -> list[Edge]:
        """Edges currently materialised through storage (discrete)."""
        return [edge for edge in self.edges if edge.materialize == FILE]

    def describe(self) -> str:
        """Human-readable summary: operators in order, then edges."""
        lines = [f"workflow {self.name!r}:"]
        for name in self.topological_order():
            op = self.ops[name]
            lines.append(
                f"  {name} ({type(op).__name__}): "
                f"in={list(op.inputs)} out={list(op.outputs)}"
            )
        for edge in self.edges:
            arrow = "=[file]=>" if edge.materialize == FILE else "->"
            lines.append(
                f"  {edge.src}.{edge.src_port} {arrow} {edge.dst}.{edge.dst_port}"
            )
        return "\n".join(lines)

    def validate(self, bound_inputs: set[str]) -> None:
        """Check every input port is fed by an edge or an external binding."""
        fed = {f"{e.dst}.{e.dst_port}" for e in self.edges} | bound_inputs
        for name, op in self.ops.items():
            for port in op.inputs:
                if f"{name}.{port}" not in fed:
                    raise WorkflowError(
                        f"input port {name}.{port} is not connected or bound"
                    )
        self.topological_order()

    # -- execution ----------------------------------------------------------------------

    def run(
        self,
        scheduler: SimScheduler,
        storage: Storage,
        inputs: dict[str, Any],
        workers: int | None = None,
        scratch_prefix: str = "tmp/",
    ) -> WorkflowResult:
        """Execute the workflow on the simulated machine.

        ``inputs`` binds external values to ports by ``"op.port"`` key.
        File edges write through their materializer as soon as the producer
        finishes and read back immediately before the consumer runs; after
        a producer's outputs are all on disk, its retained state is
        released (discrete operators are separate processes).
        """
        T = scheduler.machine.effective_workers(workers)
        self.validate(set(inputs))
        ctx = WorkflowContext(
            scheduler=scheduler,
            storage=storage,
            workers=T,
            scratch_prefix=scratch_prefix,
        )

        values: dict[str, Any] = dict(inputs)
        staged_paths: dict[str, str] = {}
        order = self.topological_order()
        consumed_by = {
            name: [e for e in self.edges if e.dst == name] for name in order
        }
        produced_by = {
            name: [e for e in self.edges if e.src == name] for name in order
        }

        for name in order:
            op = self.ops[name]
            # Gather inputs, reading any file-materialised edges now.
            op_inputs: dict[str, Any] = {}
            for port in op.inputs:
                ref = f"{name}.{port}"
                if ref in values:
                    op_inputs[port] = values[ref]
                    continue
                edge = next(
                    e for e in consumed_by[name] if e.dst_port == port
                )
                if edge.materialize == FILE:
                    op_inputs[port] = edge.materializer.read(
                        ctx, staged_paths[edge.key]
                    )
                else:
                    op_inputs[port] = values[f"{edge.src}.{edge.src_port}"]

            produced = op.execute(ctx, op_inputs)
            for port in op.outputs:
                if port not in produced:
                    raise WorkflowError(
                        f"operator {name!r} did not produce port {port!r}"
                    )
                values[f"{name}.{port}"] = produced[port]

            # Stage file edges and release the producer (separate binary).
            out_file_edges = [
                e for e in produced_by[name] if e.materialize == FILE
            ]
            for edge in out_file_edges:
                path = f"{scratch_prefix}{edge.src}.{edge.src_port}.arff"
                edge.materializer.write(
                    ctx, values[f"{edge.src}.{edge.src_port}"], path
                )
                staged_paths[edge.key] = path
            if out_file_edges and len(out_file_edges) == len(produced_by[name]):
                release = getattr(op, "release", None)
                if release is not None:
                    release(ctx)

        return WorkflowResult(
            outputs={
                key: value for key, value in values.items() if "." in key
            },
            timeline=ctx.timeline,
            peak_resident_bytes=ctx.peak_resident_bytes,
            workers=T,
            file_edges=[edge.key for edge in self.file_edges()],
        )


def build_tfidf_kmeans_workflow(
    mode: str = "merged",
    wc_dict_kind: str = "map",
    transform_dict_kind: str | None = None,
    n_clusters: int = 8,
    max_iters: int = 10,
    reserve: int = 4096,
    seed: int = 0,
    costs: CostConstants = DEFAULT_COSTS,
    output_path: str | None = "clusters.txt",
    scale: WorkloadScale = UNIT_SCALE,
) -> Workflow:
    """The paper's workflow: TF/IDF feeding K-means.

    ``mode="discrete"`` stores the TF/IDF scores as an ARFF file between
    the operators; ``mode="merged"`` hands them over in memory (§3.3).
    """
    if mode not in ("discrete", "merged"):
        raise WorkflowError(f"mode must be 'discrete' or 'merged', got {mode!r}")
    workflow = Workflow(f"tfidf-kmeans-{mode}")
    workflow.add(
        TfIdfOp(
            wc_dict_kind=wc_dict_kind,
            transform_dict_kind=transform_dict_kind,
            reserve=reserve,
            costs=costs,
            scale=scale,
        )
    )
    workflow.add(
        KMeansOp(
            n_clusters=n_clusters,
            max_iters=max_iters,
            seed=seed,
            costs=costs,
            output_path=output_path,
            scale=scale,
        )
    )
    if mode == "discrete":
        workflow.connect(
            "tfidf",
            "scores",
            "kmeans",
            "scores",
            materialize=FILE,
            materializer=ArffScoresMaterializer(costs, scale=scale),
        )
    else:
        workflow.connect("tfidf", "scores", "kmeans", "scores")
    return workflow
