"""Cost-based workflow planner.

The paper's conclusion: fusion and data-structure choice "are influenced by
the presence and degree of intra-node parallelism … the choice of internal
data structure must be taken judiciously, depending on the overall time
taken by each step of the workflow and also on the extent to which each
phase can be parallelized" (§3.4). This planner makes that judgement
mechanical: it measures a small *pilot* sample of the input under every
candidate configuration — execution mode (fused or discrete), dictionary
implementation per phase, thread count — on the simulated machine,
extrapolates to the full input, and ranks the configurations.

It is a sampling optimizer in the classic database mould: the pilot plays
the role of table statistics, and the simulated machine is the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cost_model import DEFAULT_COSTS, CostConstants
from repro.core.workflow import build_tfidf_kmeans_workflow
from repro.dicts.factory import PLANNER_KINDS, dict_candidate_pairs
from repro.errors import PlannerError
from repro.exec.machine import MachineSpec
from repro.exec.scheduler import SimScheduler
from repro.io.corpus_io import corpus_paths
from repro.io.storage import MemStorage, Storage

__all__ = ["PlanConfig", "PlanEstimate", "Plan", "WorkflowPlanner"]


@dataclass(frozen=True)
class PlanConfig:
    """One point in the planner's search space."""

    mode: str  # "merged" | "discrete"
    wc_dict_kind: str
    transform_dict_kind: str
    workers: int

    def describe(self) -> str:
        """One-line summary used in plan listings."""
        return (
            f"{self.mode}, wc={self.wc_dict_kind}, "
            f"transform={self.transform_dict_kind}, threads={self.workers}"
        )


@dataclass
class PlanEstimate:
    """Predicted full-scale behaviour of one configuration."""

    config: PlanConfig
    #: Predicted total virtual seconds at full input size.
    predicted_s: float
    #: Predicted peak resident memory at full input size.
    predicted_peak_bytes: float
    #: Per-phase seconds (full-scale), for explanation.
    breakdown: dict[str, float] = field(default_factory=dict)


@dataclass
class Plan:
    """Ranked outcome of a planning pass."""

    best: PlanEstimate
    candidates: list[PlanEstimate]
    pilot_docs: int
    full_docs: int

    @property
    def scale_factor(self) -> float:
        """Pilot-to-full extrapolation factor."""
        return self.full_docs / self.pilot_docs

    def explain(self) -> str:
        """Human-readable plan summary (best first)."""
        lines = [
            f"planned over {len(self.candidates)} configurations "
            f"(pilot: {self.pilot_docs} docs, extrapolated to {self.full_docs}):"
        ]
        for rank, estimate in enumerate(self.candidates, start=1):
            marker = "*" if estimate is self.best else " "
            lines.append(
                f" {marker} #{rank} {estimate.config.describe():<58} "
                f"{estimate.predicted_s:9.2f}s  "
                f"{estimate.predicted_peak_bytes / 1e9:6.2f} GB"
            )
        return "\n".join(lines)


class WorkflowPlanner:
    """Plans the TF/IDF → K-means workflow over a given machine."""

    def __init__(
        self,
        machine: MachineSpec,
        costs: CostConstants = DEFAULT_COSTS,
        dict_kinds: tuple[str, ...] = PLANNER_KINDS,
        modes: tuple[str, ...] = ("merged", "discrete"),
        worker_options: tuple[int, ...] | None = None,
        mixed_dicts: bool = True,
    ) -> None:
        self.machine = machine
        self.costs = costs
        self.dict_kinds = dict_kinds
        self.modes = modes
        if worker_options is None:
            worker_options = tuple(
                sorted({1, 4, 8, machine.cores} & set(range(1, machine.cores + 1)))
            ) or (machine.cores,)
        self.worker_options = worker_options
        self.mixed_dicts = mixed_dicts

    def _dict_configs(self) -> list[tuple[str, str]]:
        return dict_candidate_pairs(self.dict_kinds, mixed=self.mixed_dicts)

    def plan(
        self,
        storage: Storage,
        input_prefix: str,
        pilot_docs: int = 64,
        n_clusters: int = 8,
        max_iters: int = 10,
        memory_budget_bytes: float | None = None,
    ) -> Plan:
        """Search the configuration space and return the ranked plan.

        The pilot re-runs the *real* workflow on the first ``pilot_docs``
        documents for every configuration; predictions extrapolate
        per-document phases linearly to the full document count (vocabulary
        growth is sublinear, making the extrapolation mildly conservative).
        """
        paths = corpus_paths(storage, input_prefix)
        if not paths:
            raise PlannerError(f"no input documents under {input_prefix!r}")
        if pilot_docs < n_clusters:
            raise PlannerError(
                f"pilot_docs={pilot_docs} must cover n_clusters={n_clusters}"
            )
        pilot_paths = paths[: min(pilot_docs, len(paths))]
        scale = len(paths) / len(pilot_paths)

        # Copy the pilot sample into a private store so path prefixes match.
        pilot_storage = MemStorage()
        for index, path in enumerate(pilot_paths):
            pilot_storage.write(f"pilot/{index:06d}.txt", storage.read_data(path))

        estimates: list[PlanEstimate] = []
        for mode in self.modes:
            for wc_kind, transform_kind in self._dict_configs():
                for workers in self.worker_options:
                    estimates.append(
                        self._measure(
                            pilot_storage,
                            PlanConfig(mode, wc_kind, transform_kind, workers),
                            scale,
                            n_clusters,
                            max_iters,
                        )
                    )

        feasible = estimates
        if memory_budget_bytes is not None:
            feasible = [
                e for e in estimates if e.predicted_peak_bytes <= memory_budget_bytes
            ]
            if not feasible:
                raise PlannerError(
                    f"no configuration fits the memory budget "
                    f"({memory_budget_bytes / 1e9:.2f} GB)"
                )
        ranked = sorted(feasible, key=lambda e: e.predicted_s)
        return Plan(
            best=ranked[0],
            candidates=ranked,
            pilot_docs=len(pilot_paths),
            full_docs=len(paths),
        )

    def _measure(
        self,
        pilot_storage: Storage,
        config: PlanConfig,
        scale: float,
        n_clusters: int,
        max_iters: int,
    ) -> PlanEstimate:
        workflow = build_tfidf_kmeans_workflow(
            mode=config.mode,
            wc_dict_kind=config.wc_dict_kind,
            transform_dict_kind=config.transform_dict_kind,
            n_clusters=n_clusters,
            max_iters=max_iters,
            costs=self.costs,
            output_path="pilot-out/clusters.txt",
        )
        scheduler = SimScheduler(self.machine)
        result = workflow.run(
            scheduler,
            pilot_storage,
            inputs={"tfidf.corpus_prefix": "pilot/"},
            workers=config.workers,
            scratch_prefix="pilot-tmp/",
        )
        return PlanEstimate(
            config=config,
            predicted_s=result.total_s * scale,
            predicted_peak_bytes=result.peak_resident_bytes * scale,
            breakdown={
                name: seconds * scale
                for name, seconds in result.breakdown().items()
            },
        )
