"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single handler while still
letting programming errors (``TypeError`` and friends) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SchedulerError",
    "StorageError",
    "TileError",
    "ArffFormatError",
    "WorkflowError",
    "PlannerError",
    "OperatorError",
    "CacheError",
    "BenchmarkError",
    "TaskTimeoutError",
    "PhaseTimeoutError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was configured with invalid or inconsistent parameters."""


class SchedulerError(ReproError):
    """The simulated scheduler was driven into an invalid state."""


class StorageError(ReproError):
    """A simulated or real storage operation failed (missing file, etc.)."""


class TileError(StorageError):
    """A binary spill tile is malformed, truncated, or fails its checksum."""


class ArffFormatError(ReproError):
    """An ARFF document could not be parsed or generated."""


class WorkflowError(ReproError):
    """A workflow graph is malformed or was executed incorrectly."""


class PlannerError(ReproError):
    """The cost-based planner could not produce a valid plan."""


class OperatorError(ReproError):
    """An analytics operator was misused or received invalid input."""


class CacheError(ReproError):
    """The result cache was misused (corrupt *entries* are never raised —
    they are deleted and treated as misses; this covers caller errors)."""


class BenchmarkError(ReproError):
    """A wall-clock benchmark run failed; carries the failing configuration."""


class TaskTimeoutError(ReproError):
    """A task exceeded its per-task deadline (and its retry budget)."""


class PhaseTimeoutError(TaskTimeoutError):
    """A pipeline phase exceeded its per-phase deadline."""
