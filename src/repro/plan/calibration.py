"""Measured cost constants for the real-execution planner.

The virtual-time planner costs candidates against hand-tuned constants;
the real planner refuses to guess. A :class:`CalibrationStore` holds the
per-phase and per-host constants the :class:`~repro.plan.cost_model.RealCostModel`
multiplies out — per-document compute nanoseconds, task/result pickle
bytes per document, pickle throughput both ways, pool-spawn and
shm-setup fixed costs, per-task overhead — and two ways to obtain them:

* :meth:`CalibrationStore.probe` — a cheap sequential sample (~2% of the
  corpus, strided) that times the *actual kernels* the backends run
  (:func:`~repro.ops.kernels.count_chunk`,
  :func:`~repro.ops.kernels.transform_chunk`,
  :func:`~repro.ops.kernels._assign_block`) and pickles the actual
  payloads they would ship, so the constants are measured in the same
  units the run will spend them in.
* :meth:`CalibrationStore.observe_run` — feedback from a traced run
  (:meth:`~repro.exec.spans.RunTrace.phase_totals` for worker-side
  compute, :class:`~repro.exec.shm.IpcStats` snapshots for exact byte
  counts), blended into the store so repeated runs sharpen the model.

Stores persist as JSON (:meth:`save`/:meth:`load`); a committed fixture
makes CI planning deterministic across hosts.
"""

from __future__ import annotations

import json
import math
import os
import pickle
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.dicts.factory import PLANNER_KINDS, make_dict
from repro.errors import ConfigurationError
from repro.io.atomic import atomic_write_json

__all__ = ["PhaseConstants", "CalibrationStore", "DEFAULT_PROBE_FRACTION"]

#: Fraction of documents the sequential probe samples.
DEFAULT_PROBE_FRACTION = 0.02

#: Probe floor: fewer documents than this make the timings pure noise
#: (and leave the k-means probe without enough rows for 8 centroids).
_MIN_PROBE_DOCS = 16

#: Defaults for constants the probe does not measure (pool spawn is only
#: measured when ``measure_pool=True`` — it costs a real fork). Values
#: are deliberately conservative for a 1-CPU container; observe_run
#: replaces them with measurements.
_DEFAULT_POOL_SPAWN_S = 0.12
_DEFAULT_SHM_SETUP_S = 0.002
_DEFAULT_TASK_OVERHEAD_S = 2e-4

#: Exponential blending weight for observe_run updates (new measurement
#: gets this share; history keeps the rest).
_BLEND = 0.5


@dataclass
class PhaseConstants:
    """Per-phase cost constants, all *per document* (per document per
    iteration for ``kmeans`` — spans count a document once per pass, so
    fitted values land in the same unit automatically)."""

    compute_ns_per_doc: float = 0.0
    #: Bytes of task pickle shipped per document (chunk payload / docs).
    task_bytes_per_doc: float = 0.0
    #: Bytes of result pickle returned per document.
    result_bytes_per_doc: float = 0.0
    #: Task bytes per document when the phase's bulk state travels via
    #: the shm plane instead of the task pickle (kmeans block tokens,
    #: fused-transform descriptors). 0 = effectively free.
    shm_task_bytes_per_doc: float = 0.0
    #: Parent-side dictionary merge ops per document (wc: df increments).
    merge_ops_per_doc: float = 0.0


@dataclass
class CalibrationStore:
    """Fitted cost constants plus provenance, persisted as JSON."""

    phases: dict[str, PhaseConstants] = field(default_factory=dict)
    pickle_ns_per_byte: float = 0.5
    unpickle_ns_per_byte: float = 0.5
    pool_spawn_s_per_worker: float = _DEFAULT_POOL_SPAWN_S
    shm_setup_s: float = _DEFAULT_SHM_SETUP_S
    task_overhead_s: float = _DEFAULT_TASK_OVERHEAD_S
    #: Measured nanoseconds per increment per dictionary kind — the term
    #: that differentiates dict candidates in the real cost model.
    dict_ns_per_op: dict[str, float] = field(default_factory=dict)
    #: Per-document cost of serving a phase from the result cache
    #: (deserialize + compose) — the near-zero term that lets the planner
    #: route around cached work. Deliberately conservative; cache serves
    #: execute no tasks, so observe_run never pollutes compute constants
    #: with it.
    cache_serve_ns_per_doc: float = 2000.0
    #: Nanoseconds per byte moved through the tiled spill plane (binary
    #: tile write + mmap read-back, measured round trip by the probe).
    #: Prices one matrix pass of a tiled phase; the ~page-cache-speed
    #: default keeps fixture stores usable before any probe runs.
    tile_io_ns_per_byte: float = 0.35
    #: "probe", "observed", "fixture" — where the constants came from.
    source: str = "default"
    #: Documents that contributed to the constants so far.
    samples: int = 0
    host: dict = field(default_factory=dict)
    version: int = 1

    # -- persistence -------------------------------------------------------------

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["phases"] = {
            phase: asdict(constants) for phase, constants in self.phases.items()
        }
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CalibrationStore":
        if not isinstance(payload, dict):
            raise ConfigurationError("calibration store must be a JSON object")
        phases = {
            phase: PhaseConstants(**constants)
            for phase, constants in payload.get("phases", {}).items()
        }
        known = {f for f in cls.__dataclass_fields__} - {"phases"}
        kwargs = {k: v for k, v in payload.items() if k in known}
        return cls(phases=phases, **kwargs)

    def save(self, path: str) -> None:
        # Atomic replace: a crash mid-save must leave the previous store
        # intact, never a truncated JSON prefix.
        atomic_write_json(path, self.to_dict())

    @classmethod
    def load(cls, path: str) -> "CalibrationStore":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot load calibration store {path!r}: {exc}"
            ) from exc
        if not raw.strip():
            raise ConfigurationError(
                f"calibration store {path!r} is empty — the file was "
                f"truncated (interrupted write?); delete it to re-probe"
            )
        try:
            payload = json.loads(raw)
        except ValueError as exc:
            raise ConfigurationError(
                f"calibration store {path!r} is not valid JSON "
                f"(truncated or corrupt — delete it to re-probe): {exc}"
            ) from exc
        return cls.from_dict(payload)

    @classmethod
    def load_or_probe(cls, path: str | None, corpus) -> "CalibrationStore":
        """Load ``path`` when it exists, else probe (and persist to it)."""
        if path is not None and os.path.exists(path):
            return cls.load(path)
        store = cls.probe(corpus)
        if path is not None:
            store.save(path)
        return store

    # -- fitting: sampled sequential probe -----------------------------------------

    @classmethod
    def probe(
        cls,
        corpus,
        tokenizer=None,
        min_df: int = 1,
        fraction: float = DEFAULT_PROBE_FRACTION,
        measure_pool: bool = False,
    ) -> "CalibrationStore":
        """Time the real kernels on a strided ~``fraction`` sample.

        Sequential and cheap by construction: one
        :func:`~repro.ops.kernels.count_chunk` call, one
        :func:`~repro.ops.kernels.transform_chunk` call, one k-means
        assignment pass, and pickle round trips of the payloads those
        calls would ship. ``measure_pool=True`` additionally forks a
        one-worker process pool to time its spawn (skipped by default —
        it costs what it measures).
        """
        from repro.ops import kernels
        from repro.sparse.matrix import CsrMatrix
        from repro.text.tokenizer import Tokenizer

        texts = [
            item if isinstance(item, str) else item.text for item in corpus
        ]
        if not texts:
            raise ConfigurationError("cannot probe an empty corpus")
        n = len(texts)
        want = max(_MIN_PROBE_DOCS, int(n * fraction))
        stride = max(1, n // want)
        sample = texts[::stride][:want]
        k = len(sample)
        tokenizer = tokenizer or Tokenizer()

        store = cls(source="probe", samples=k, host=_host())

        # Phase 1: word count. One chunk = the whole sample, exactly the
        # kernel a backend task runs.
        kernels.init_wordcount_worker(tokenizer)
        t0 = time.perf_counter()
        wc_out = kernels.count_chunk(sample)
        wc_s = time.perf_counter() - t0
        doc_entries, _token_counts, df_entries = wc_out
        wc_task_bytes = len(pickle.dumps(sample)) / k
        store.phases["input+wc"] = PhaseConstants(
            compute_ns_per_doc=wc_s / k * 1e9,
            task_bytes_per_doc=wc_task_bytes,
            result_bytes_per_doc=len(pickle.dumps(wc_out)) / k,
            # Raw texts ship as task pickles whether or not the shm plane
            # is up — shm carries no word-count state.
            shm_task_bytes_per_doc=wc_task_bytes,
            merge_ops_per_doc=sum(len(e) for e in doc_entries) / k,
        )

        # Vocabulary from the sample's df table (same arithmetic as
        # TfIdfOperator.build_vocabulary, scoped to the probe).
        entries = [e for e in df_entries if e[1] >= min_df]
        vocabulary = [term for term, _ in entries]
        idf = [math.log(k / count) if count else 0.0 for _, count in entries]

        # Phase 2a: transform.
        kernels.init_transform_worker(vocabulary, idf, min_df)
        t0 = time.perf_counter()
        vectors = kernels.transform_chunk(doc_entries)
        tr_s = time.perf_counter() - t0
        tr_task_bytes = len(pickle.dumps(doc_entries)) / k
        store.phases["transform"] = PhaseConstants(
            compute_ns_per_doc=tr_s / k * 1e9,
            task_bytes_per_doc=tr_task_bytes,
            result_bytes_per_doc=len(pickle.dumps(vectors)) / k,
            # Unfused, the per-document TF entries ride the task pickles
            # even with shm up (the plane only broadcasts vocabulary/idf);
            # only *fusion* eliminates them.
            shm_task_bytes_per_doc=tr_task_bytes,
        )

        # Phase 3: one k-means assignment pass over the sample.
        matrix = CsrMatrix.from_rows(vectors, n_cols=len(vocabulary))
        indptr, indices, data = matrix.as_arrays()
        doc_idx = []
        doc_val = []
        for doc in range(matrix.n_rows):
            lo, hi = int(indptr[doc]), int(indptr[doc + 1])
            doc_idx.append(indices[lo:hi])
            doc_val.append(data[lo:hi])
        sq_norms = np.array([float(v @ v) for v in doc_val])
        n_clusters = min(8, k)
        centroids = np.zeros((n_clusters, matrix.n_cols), dtype=np.float64)
        for cluster in range(n_clusters):
            centroids[cluster, doc_idx[cluster]] = doc_val[cluster]
        centroid_sq_norms = np.einsum("ij,ij->i", centroids, centroids)
        t0 = time.perf_counter()
        km_out = kernels._assign_block(
            0, k, centroids, centroid_sq_norms, doc_idx, doc_val, sq_norms
        )
        km_s = time.perf_counter() - t0
        km_task = (0, k, centroids, centroid_sq_norms)
        store.phases["kmeans"] = PhaseConstants(
            compute_ns_per_doc=km_s / k * 1e9,
            task_bytes_per_doc=len(pickle.dumps(km_task)) / k,
            result_bytes_per_doc=len(pickle.dumps(km_out)) / k,
            shm_task_bytes_per_doc=0.0,  # block tokens are ~40 bytes/task
        )

        # Pickle throughput, measured on the probe's own biggest payload.
        blob_source = doc_entries
        blob = pickle.dumps(blob_source)
        reps = 3
        t0 = time.perf_counter()
        for _ in range(reps):
            pickle.dumps(blob_source)
        store.pickle_ns_per_byte = (
            (time.perf_counter() - t0) / (reps * len(blob)) * 1e9
        )
        t0 = time.perf_counter()
        for _ in range(reps):
            pickle.loads(blob)
        store.unpickle_ns_per_byte = (
            (time.perf_counter() - t0) / (reps * len(blob)) * 1e9
        )

        # Dictionary increments per kind: the term that separates dict
        # candidates. A flat token sample keeps this under a millisecond.
        tokens = [term for entries_ in doc_entries for term, _ in entries_]
        tokens = tokens[:4096] or ["x"]
        for kind in PLANNER_KINDS:
            d = make_dict(kind)
            t0 = time.perf_counter()
            for token in tokens:
                d.increment(token)
            store.dict_ns_per_op[kind] = (
                (time.perf_counter() - t0) / len(tokens) * 1e9
            )

        store.shm_setup_s = _probe_shm_setup()
        store.tile_io_ns_per_byte = _probe_tile_io(
            indptr, indices, data, sq_norms, matrix.n_cols
        )
        if measure_pool:
            store.pool_spawn_s_per_worker = _probe_pool_spawn()
        return store

    # -- fitting: feedback from traced runs ------------------------------------------

    def observe_run(self, result, n_docs: int) -> None:
        """Blend a finished run's measurements into the constants.

        ``result`` is a :class:`~repro.core.pipeline.RealRunResult`;
        worker-side compute comes from its trace (``busy_s / n_items``
        per phase — requires ``trace=True``), byte constants from its
        IPC snapshot. Phases absent from the run are left untouched.
        """
        totals = result.trace.phase_totals() if result.trace else {}
        ipc = result.ipc if isinstance(result.ipc, dict) else {}
        self.observe_totals(totals, ipc.get("phases", {}), n_docs)

    def observe_totals(
        self, totals: dict, ipc_phases: dict, n_docs: int
    ) -> None:
        """Blend raw per-phase measurements into the constants.

        The record-level entry point shared by :meth:`observe_run` (live
        feedback from the run that just finished) and ledger replay
        (``repro analytics recalibrate`` over persisted history).
        ``totals`` maps phase → ``{"busy_s", "n_items"}`` (the shape of
        :meth:`~repro.exec.spans.RunTrace.phase_totals`); ``ipc_phases``
        maps phase → its IPC counter dict. Phases absent from either are
        left untouched.
        """
        if n_docs <= 0:
            return
        for phase, t in totals.items():
            if t.get("n_items", 0) <= 0 or phase not in self.phases:
                continue
            measured = t["busy_s"] / t["n_items"] * 1e9
            constants = self.phases[phase]
            constants.compute_ns_per_doc = _blend(
                constants.compute_ns_per_doc, measured
            )
        for phase, counters in ipc_phases.items():
            if phase not in self.phases:
                continue
            constants = self.phases[phase]
            task_bytes = counters.get("task_pickle_bytes", 0)
            result_bytes = counters.get("result_pickle_bytes", 0)
            if task_bytes:
                constants.task_bytes_per_doc = _blend(
                    constants.task_bytes_per_doc, task_bytes / n_docs
                )
            if result_bytes:
                constants.result_bytes_per_doc = _blend(
                    constants.result_bytes_per_doc, result_bytes / n_docs
                )
        self.samples += n_docs
        if self.source in ("default", "probe"):
            self.source = "observed"

    def dict_factor_ns(self, kind: str) -> float:
        """Per-op cost for ``kind``; unknown kinds cost the known median."""
        if kind in self.dict_ns_per_op:
            return self.dict_ns_per_op[kind]
        known = sorted(self.dict_ns_per_op.values())
        return known[len(known) // 2] if known else 50.0

    def describe(self) -> str:
        return f"{self.source} ({self.samples} docs sampled)"


def _blend(old: float, new: float) -> float:
    if old <= 0:
        return new
    return (1.0 - _BLEND) * old + _BLEND * new


def _host() -> dict:
    import platform

    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
    }


def _probe_tile_io(indptr, indices, data, sq_norms, n_cols) -> float:
    """Round-trip the probe matrix through one real spill tile.

    Measures write (atomic temp + replace) plus mmap read-back with CRC
    verification — the exact path a tiled run takes per matrix pass —
    and returns nanoseconds per payload byte (halved: the cost model
    charges write and read passes separately).
    """
    import tempfile

    from repro.tiles.format import open_tile, write_tile

    indptr = np.ascontiguousarray(indptr, dtype=np.int64)
    with tempfile.TemporaryDirectory(prefix="repro_probe_tile_") as root:
        path = os.path.join(root, "probe.rt")
        t0 = time.perf_counter()
        header = write_tile(path, 0, n_cols, indptr, indices, data, sq_norms)
        view = open_tile(path, verify=True)
        # Touch every page so the read is not deferred to first access.
        float(view.data.sum()) if len(view.data) else 0.0
        view.close()
        elapsed = time.perf_counter() - t0
        nbytes = max(1, header.nbytes)
    return max(0.05, elapsed / (2 * nbytes) * 1e9)


def _probe_shm_setup() -> float:
    """Time one small shared-segment place+close (0.0 when unavailable)."""
    from repro.exec.shm import IpcStats, ShmPlane, shm_available

    if not shm_available():
        return 0.0
    plane = ShmPlane(stats=IpcStats())
    t0 = time.perf_counter()
    shared = plane.place("calibration", {"x": np.zeros(64)})
    shared.close()
    return time.perf_counter() - t0


def _probe_pool_spawn() -> float:
    """Fork a one-worker pool, run a no-op, and bill the whole round trip."""
    from repro.exec.process import ProcessBackend

    t0 = time.perf_counter()
    backend = ProcessBackend(1)
    try:
        backend.map(_noop, [0])
    finally:
        backend.close()
    return time.perf_counter() - t0


def _noop(item):
    return item
