"""Predict real phase wall time for candidate configurations.

Where :mod:`repro.core.cost_model` prices *virtual* machines, this model
prices the host it runs on: a :class:`PhasePlan` names one candidate
configuration (backend tier × workers × shm × grain × dictionary kind ×
fused-or-not) and :meth:`RealCostModel.predict` multiplies it against a
:class:`~repro.plan.calibration.CalibrationStore`'s measured constants:

``predicted = compute / effective_parallelism + pickle(task + result
bytes, both directions) + pool spawn + shm setup + per-task overhead +
dictionary merge + last-chunk imbalance``

The terms mirror how the backends actually spend time — threads get no
compute division (CPython's GIL serializes the CPU-bound kernels),
process pools pay one spawn per ``configure`` generation, fusion zeroes
the transform's corpus-sized task pickles but keeps its result pickles —
so on a 1-CPU host the model *discovers* that sequential wins at small
scale, rather than being told.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import os

from repro.dicts.factory import DEFAULT_KIND
from repro.errors import ConfigurationError
from repro.exec.parallel import auto_grain
from repro.plan.calibration import CalibrationStore

__all__ = ["PhasePlan", "PhaseWorkload", "PhaseEstimate", "RealCostModel"]

#: Pickled size of a flush-task descriptor tuple on the fused path
#: (chunk id + ShmArraysDescriptor) — constant, a few hundred bytes.
_FUSED_TASK_BYTES = 400


@dataclass(frozen=True)
class PhasePlan:
    """One candidate configuration for one phase."""

    phase: str
    backend: str  # "sequential" | "threads" | "processes"
    workers: int = 1
    shm: bool = False
    #: Items per task; ``None`` = the backend's Cilk-style auto grain.
    grain: int | None = None
    dict_kind: str = DEFAULT_KIND
    #: True on a transform plan fused into the preceding word count:
    #: same backend instance, worker-resident intermediates, no respawn.
    fused_with_previous: bool = False
    #: True when the phase's full result sits in the run's result cache:
    #: the phase serves from disk instead of computing, and the cost
    #: model prices it at deserialization speed.
    cached: bool = False
    #: True when the phase goes through the tiled data plane: the
    #: transform writes binary spill tiles instead of keeping the matrix
    #: resident, and k-means streams them back every assignment pass.
    #: Output stays bit-identical; the model adds a tile-I/O term per
    #: matrix pass, which is why an unconstrained plan never tiles.
    tiled: bool = False

    def describe(self) -> str:
        if self.cached:
            return "cached+tiled" if self.tiled else "cached"
        backend = self.backend
        if self.backend != "sequential":
            backend = f"{self.backend}-{self.workers}"
        if self.shm:
            backend += "+shm"
        if self.tiled:
            backend += "+tiled"
        if self.phase == "kmeans":
            # Blocking and merge order are part of the output contract;
            # grain and dictionary kind are not knobs here.
            return backend
        grain = "auto" if self.grain is None else str(self.grain)
        label = f"{backend} grain={grain} dict={self.dict_kind}"
        if self.fused_with_previous:
            label += " (fused)"
        return label


@dataclass(frozen=True)
class PhaseWorkload:
    """What a phase must chew through (the cost model's multiplicand)."""

    phase: str
    n_docs: int
    input_bytes: int = 0
    #: Assignment passes for ``kmeans`` (constants are per doc per pass).
    iterations: int = 1
    #: Estimated resident bytes of the score matrix — the volume a tiled
    #: phase moves through the spill directory per pass (write once for
    #: the transform, read once per k-means iteration).
    matrix_bytes: int = 0


@dataclass
class PhaseEstimate:
    """A costed candidate: predicted seconds plus the term breakdown."""

    plan: PhasePlan
    predicted_s: float
    breakdown: dict[str, float] = field(default_factory=dict)

    def penalty_vs(self, best: "PhaseEstimate") -> str:
        """Human line: where this candidate loses against ``best``."""
        gap = self.predicted_s - best.predicted_s
        terms = sorted(
            (
                (term, self.breakdown.get(term, 0.0) - best.breakdown.get(term, 0.0))
                for term in set(self.breakdown) | set(best.breakdown)
            ),
            key=lambda entry: -entry[1],
        )
        worst = [f"{term} +{delta:.3f}s" for term, delta in terms[:2] if delta > 1e-4]
        suffix = f" ({', '.join(worst)})" if worst else ""
        return f"+{gap:.3f}s{suffix}"


class RealCostModel:
    """Price a :class:`PhasePlan` against measured constants."""

    def __init__(
        self, calibration: CalibrationStore, cpu_count: int | None = None
    ) -> None:
        self.calibration = calibration
        self.cpu_count = cpu_count or os.cpu_count() or 1

    def predict(
        self, workload: PhaseWorkload, plan: PhasePlan
    ) -> PhaseEstimate:
        """Predicted wall seconds for running ``workload`` under ``plan``."""
        c = self.calibration
        # Tile I/O: a tiled transform writes the matrix to spill tiles
        # once; a tiled k-means re-reads it every assignment pass. The
        # term is what makes an unconstrained plan prefer the resident
        # matrix — tiling only wins when the budget forbids residency.
        tile_passes = (
            workload.iterations if workload.phase == "kmeans" else 1
        )
        tile_io_s = (
            max(0, workload.matrix_bytes)
            * c.tile_io_ns_per_byte * 1e-9 * tile_passes
            if plan.tiled
            else 0.0
        )
        if plan.cached:
            # A cached phase deserializes its stored result instead of
            # computing: near-zero, linear in the corpus (iteration count
            # is irrelevant — the stored clustering is served whole). A
            # cached *tiled* transform additionally re-materializes its
            # spill tiles (one write pass) while serving.
            serve_s = (
                max(0, workload.n_docs) * c.cache_serve_ns_per_doc * 1e-9
            )
            breakdown = {"cache_serve": serve_s}
            if plan.tiled and workload.phase != "kmeans":
                breakdown["tile_io"] = tile_io_s
            return PhaseEstimate(
                plan=plan,
                predicted_s=sum(breakdown.values()),
                breakdown=breakdown,
            )
        try:
            constants = c.phases[workload.phase]
        except KeyError:
            raise ConfigurationError(
                f"calibration store has no constants for phase "
                f"{workload.phase!r} (has: {sorted(c.phases)})"
            ) from None
        n = max(0, workload.n_docs)
        passes = workload.iterations if workload.phase == "kmeans" else 1
        compute_s = n * passes * constants.compute_ns_per_doc * 1e-9
        # Parent-side dictionary merge: charged once, scaled by the
        # candidate's dictionary implementation.
        dict_s = (
            n * constants.merge_ops_per_doc * c.dict_factor_ns(plan.dict_kind)
            * 1e-9
        )

        grain = plan.grain or auto_grain(n, plan.workers)
        n_tasks = -(-n // grain) if n else 0

        breakdown: dict[str, float]
        if plan.backend == "sequential":
            breakdown = {"compute": compute_s, "dict": dict_s}
        elif plan.backend == "threads":
            # The kernels are CPU-bound pure Python: the GIL serializes
            # them, so threads pay overhead without gaining parallelism.
            breakdown = {
                "compute": compute_s,
                "dict": dict_s,
                "task_overhead": n_tasks * c.task_overhead_s,
            }
        elif plan.backend == "processes":
            p = max(1, min(plan.workers, self.cpu_count))
            task_bpd = constants.task_bytes_per_doc
            if plan.fused_with_previous and workload.phase == "transform":
                # Fusion: per-doc entries stay worker-resident; each task
                # ships only a constant-size descriptor token.
                task_bytes = n_tasks * _FUSED_TASK_BYTES * passes
            elif plan.shm and constants.shm_task_bytes_per_doc < task_bpd:
                task_bytes = n * passes * constants.shm_task_bytes_per_doc
            else:
                task_bytes = n * passes * task_bpd
            result_bytes = n * passes * constants.result_bytes_per_doc
            pickle_s = (
                (task_bytes + result_bytes)
                * (c.pickle_ns_per_byte + c.unpickle_ns_per_byte)
                * 1e-9
            )
            # One pool generation per configure: every unfused phase
            # reconfigures its initializer, so every unfused phase pays a
            # spawn. A fused transform inherits the word count's pool.
            spawn_s = (
                0.0
                if plan.fused_with_previous
                else c.pool_spawn_s_per_worker * plan.workers
            )
            shm_s = c.shm_setup_s * (1 if plan.shm else 0)
            # Last-chunk imbalance: the final grain-sized task has no
            # peers to overlap with; bounded by one task's compute.
            imbalance_s = (
                (compute_s / max(1, n_tasks)) * (p - 1) / p if p > 1 else 0.0
            )
            breakdown = {
                "compute": compute_s / p,
                "dict": dict_s,
                "pickle": pickle_s,
                "spawn": spawn_s,
                "shm_setup": shm_s,
                "task_overhead": n_tasks * c.task_overhead_s,
                "imbalance": imbalance_s,
            }
        else:
            raise ConfigurationError(
                f"unknown backend tier {plan.backend!r} in {plan}"
            )
        if plan.tiled:
            breakdown["tile_io"] = tile_io_s
        total = sum(breakdown.values())
        return PhaseEstimate(plan=plan, predicted_s=total, breakdown=breakdown)
