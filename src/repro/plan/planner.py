"""Adaptive per-phase planning for the real execution path.

The :class:`AdaptivePlanner` enumerates candidate
:class:`~repro.plan.cost_model.PhasePlan` configurations — backend tier ×
worker count × shm on/off × chunk grain × dictionary implementation, plus
the fused wc→transform variant — prices each with the
:class:`~repro.plan.cost_model.RealCostModel`, and picks the argmin:

* ``input+wc`` and ``transform`` are planned **jointly**, because fusion
  couples them (a fused transform must run on the word count's backend
  and pool generation) and because fusion changes *both* phases' IPC
  bills;
* ``kmeans`` is planned independently — its blocking and merge order are
  part of the output contract, so only backend/workers/shm vary.

The result is a :class:`RealPlan` whose :meth:`~RealPlan.explain` walks
the rejected candidates with the cost terms that sank them — the
planner's work is auditable, not an oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dicts.factory import PLANNER_KINDS, dict_candidate_pairs
from repro.errors import PlannerError
from repro.exec.shm import shm_available
from repro.plan.calibration import CalibrationStore
from repro.plan.cost_model import (
    PhaseEstimate,
    PhasePlan,
    PhaseWorkload,
    RealCostModel,
)

__all__ = ["PairEstimate", "RealPlan", "AdaptivePlanner"]

#: How many rejected candidates explain() narrates per section.
_EXPLAIN_TOP = 5


@dataclass
class PairEstimate:
    """A costed joint (word count, transform) candidate."""

    wc: PhaseEstimate
    transform: PhaseEstimate
    fused: bool

    @property
    def predicted_s(self) -> float:
        return self.wc.predicted_s + self.transform.predicted_s

    def describe(self) -> str:
        if self.fused:
            return (
                f"fused {self.wc.plan.describe()} → "
                f"dict={self.transform.plan.dict_kind}"
            )
        return f"{self.wc.plan.describe()} → {self.transform.plan.describe()}"


@dataclass
class RealPlan:
    """The chosen per-phase configuration, with its audit trail."""

    phases: dict[str, PhasePlan]
    #: Ranked joint candidates for wc+transform, cheapest first.
    pair_candidates: list[PairEstimate] = field(default_factory=list)
    #: Ranked kmeans candidates, cheapest first.
    kmeans_candidates: list[PhaseEstimate] = field(default_factory=list)
    calibration: str = "unknown"
    n_docs: int = 0
    #: The run's spill budget (bytes) when one was planned under;
    #: execution sizes the :class:`~repro.tiles.store.TileStore` from it.
    memory_budget: int | None = None
    #: The matrix-size estimate the tiling decision was made against.
    matrix_bytes: int = 0

    @property
    def fused(self) -> bool:
        transform = self.phases.get("transform")
        return bool(transform and transform.fused_with_previous)

    @property
    def tiled(self) -> bool:
        transform = self.phases.get("transform")
        return bool(transform and transform.tiled)

    @property
    def predicted_total_s(self) -> float:
        total = 0.0
        if self.pair_candidates:
            total += self.pair_candidates[0].predicted_s
        if self.kmeans_candidates:
            total += self.kmeans_candidates[0].predicted_s
        return total

    def describe(self) -> str:
        """One line per phase, e.g. for CLI output."""
        return ", ".join(
            f"{phase}={plan.describe()}" for phase, plan in self.phases.items()
        )

    def summary_dict(self) -> dict:
        """JSON-able view (benchmark records embed this)."""
        return {
            "phases": {
                phase: plan.describe() for phase, plan in self.phases.items()
            },
            "fused": self.fused,
            "tiled": self.tiled,
            "memory_budget": self.memory_budget,
            "matrix_bytes": self.matrix_bytes,
            "predicted_total_s": self.predicted_total_s,
            "calibration": self.calibration,
            "n_docs": self.n_docs,
        }

    def explain(self) -> str:
        """Narrative of the chosen candidates and why the rest lost."""
        lines = [
            f"Plan for {self.n_docs} documents "
            f"(calibration: {self.calibration}; "
            f"predicted total {self.predicted_total_s:.3f}s)"
        ]
        if self.pair_candidates:
            best = self.pair_candidates[0]
            lines.append(
                f"  input+wc → transform: {best.describe()}  "
                f"[predicted {best.predicted_s:.3f}s]"
            )
            for candidate in self.pair_candidates[1:_EXPLAIN_TOP + 1]:
                gap = candidate.predicted_s - best.predicted_s
                # Attribute the gap to its two worst terms across both
                # phases, so the narrative names the sinking cost.
                merged_best = _merged_breakdown(best)
                merged = _merged_breakdown(candidate)
                terms = sorted(
                    (
                        (term, merged.get(term, 0.0) - merged_best.get(term, 0.0))
                        for term in set(merged) | set(merged_best)
                    ),
                    key=lambda entry: -entry[1],
                )
                worst = ", ".join(
                    f"{term} +{delta:.3f}s"
                    for term, delta in terms[:2]
                    if delta > 1e-4
                )
                suffix = f" ({worst})" if worst else ""
                lines.append(
                    f"    rejected: {candidate.describe()}  "
                    f"+{gap:.3f}s{suffix}"
                )
        if self.kmeans_candidates:
            best = self.kmeans_candidates[0]
            lines.append(
                f"  kmeans: {best.plan.describe()}  "
                f"[predicted {best.predicted_s:.3f}s]"
            )
            for candidate in self.kmeans_candidates[1:_EXPLAIN_TOP + 1]:
                lines.append(
                    f"    rejected: {candidate.plan.describe()}  "
                    f"{candidate.penalty_vs(best)}"
                )
        return "\n".join(lines)


def _merged_breakdown(pair: PairEstimate) -> dict[str, float]:
    merged: dict[str, float] = dict(pair.wc.breakdown)
    for term, value in pair.transform.breakdown.items():
        merged[term] = merged.get(term, 0.0) + value
    return merged


class AdaptivePlanner:
    """Enumerate-and-cost planner over the real backends."""

    def __init__(
        self,
        calibration: CalibrationStore,
        cpu_count: int | None = None,
        worker_options: tuple[int, ...] = (1, 2, 4),
        dict_kinds: tuple[str, ...] = PLANNER_KINDS,
        mixed_dicts: bool = True,
        grain_options: tuple[int | None, ...] = (None,),
        shm_ok: bool | None = None,
    ) -> None:
        self.calibration = calibration
        self.model = RealCostModel(calibration, cpu_count=cpu_count)
        self.worker_options = worker_options
        self.dict_kinds = dict_kinds
        self.mixed_dicts = mixed_dicts
        self.grain_options = grain_options
        self.shm_ok = shm_available() if shm_ok is None else shm_ok

    # -- candidate enumeration ------------------------------------------------------

    def _configs(self) -> list[tuple[str, int, bool]]:
        """(backend, workers, shm) combinations, simplest first.

        Order matters: the argmin sort is stable, so ties resolve toward
        the earliest (simplest) configuration — sequential before
        threads before processes.
        """
        configs: list[tuple[str, int, bool]] = [("sequential", 1, False)]
        for workers in self.worker_options:
            configs.append(("threads", workers, False))
        for workers in self.worker_options:
            configs.append(("processes", workers, False))
            if self.shm_ok:
                configs.append(("processes", workers, True))
        return configs

    @staticmethod
    def _supports_fusion(backend: str, shm: bool) -> bool:
        # In-process backends share an address space (trivially resident);
        # the process backend needs the shm plane to ship the vocabulary
        # without a pool-recycling configure.
        return backend != "processes" or shm

    # -- planning --------------------------------------------------------------------

    def plan(
        self,
        n_docs: int,
        input_bytes: int = 0,
        kmeans_iters: int = 10,
        cached_phases: frozenset[str] = frozenset(),
        allow_fusion: bool = True,
        memory_budget: int | None = None,
    ) -> RealPlan:
        """Pick the per-phase argmin for a corpus of ``n_docs``.

        ``cached_phases`` names phases whose full result already sits in
        the run's result cache: those are pinned to a ``cached``
        :class:`PhasePlan` (priced at deserialization speed) instead of
        being enumerated — the planner routes around work it can skip.
        ``allow_fusion=False`` drops the fused wc→transform candidates;
        a cache-enabled run sets it because fused intermediates never
        materialize parent-side, which would leave nothing to store.

        ``memory_budget`` (bytes) bounds the resident score matrix. When
        the estimated matrix exceeds it, only tiled candidates are
        enumerated for the transform and k-means — fusion is also off,
        because fused rows materialize parent-side before any tile could
        absorb them. When the matrix fits, tiled *and* untiled variants
        compete and the tile-I/O cost term makes the resident matrix
        win: the plan only tiles when the budget demands it.
        """
        if n_docs <= 0:
            raise PlannerError("cannot plan for an empty corpus")
        matrix_bytes = 0
        tr_constants = self.calibration.phases.get("transform")
        if tr_constants is not None:
            matrix_bytes = int(n_docs * tr_constants.result_bytes_per_doc)
        must_tile = memory_budget is not None and matrix_bytes > memory_budget
        if memory_budget is None:
            tiled_options: tuple[bool, ...] = (False,)
        elif must_tile:
            tiled_options = (True,)
        else:
            tiled_options = (False, True)
        wl_wc = PhaseWorkload("input+wc", n_docs, input_bytes=input_bytes)
        wl_tr = PhaseWorkload("transform", n_docs, matrix_bytes=matrix_bytes)
        wl_km = PhaseWorkload(
            "kmeans", n_docs, iterations=kmeans_iters,
            matrix_bytes=matrix_bytes,
        )
        wc_cached = "input+wc" in cached_phases
        tr_cached = "transform" in cached_phases

        configs = self._configs()
        pairs: list[PairEstimate] = []
        cached_wc_est = self.model.predict(
            wl_wc, PhasePlan("input+wc", "sequential", 1, cached=True)
        )
        cached_tr_est = self.model.predict(
            wl_tr,
            PhasePlan(
                "transform", "sequential", 1, cached=True, tiled=must_tile
            ),
        )
        if wc_cached and tr_cached:
            pairs.append(
                PairEstimate(wc=cached_wc_est, transform=cached_tr_est,
                             fused=False)
            )
        elif wc_cached:
            # Served word counts have no live pool to fuse into: the
            # transform is enumerated unfused.
            for tr_kind in self.dict_kinds:
                for backend2, workers2, shm2 in configs:
                    for grain2 in self.grain_options:
                        for tiled2 in tiled_options:
                            tr_plan = PhasePlan(
                                "transform", backend2, workers2, shm2,
                                grain=grain2, dict_kind=tr_kind,
                                tiled=tiled2,
                            )
                            pairs.append(
                                PairEstimate(
                                    wc=cached_wc_est,
                                    transform=self.model.predict(
                                        wl_tr, tr_plan
                                    ),
                                    fused=False,
                                )
                            )
        elif tr_cached:
            for wc_kind in self.dict_kinds:
                for backend1, workers1, shm1 in configs:
                    for grain1 in self.grain_options:
                        wc_plan = PhasePlan(
                            "input+wc", backend1, workers1, shm1,
                            grain=grain1, dict_kind=wc_kind,
                        )
                        pairs.append(
                            PairEstimate(
                                wc=self.model.predict(wl_wc, wc_plan),
                                transform=cached_tr_est,
                                fused=False,
                            )
                        )
        else:
            for wc_kind, tr_kind in dict_candidate_pairs(
                self.dict_kinds, mixed=self.mixed_dicts
            ):
                for backend1, workers1, shm1 in configs:
                    for grain1 in self.grain_options:
                        wc_plan = PhasePlan(
                            "input+wc", backend1, workers1, shm1,
                            grain=grain1, dict_kind=wc_kind,
                        )
                        wc_est = self.model.predict(wl_wc, wc_plan)
                        # Unfused: transform free to pick any configuration
                        # (run_pipeline rebinds backends between phases).
                        for backend2, workers2, shm2 in configs:
                            for grain2 in self.grain_options:
                                for tiled2 in tiled_options:
                                    tr_plan = PhasePlan(
                                        "transform", backend2, workers2,
                                        shm2, grain=grain2,
                                        dict_kind=tr_kind, tiled=tiled2,
                                    )
                                    pairs.append(
                                        PairEstimate(
                                            wc=wc_est,
                                            transform=self.model.predict(
                                                wl_tr, tr_plan
                                            ),
                                            fused=False,
                                        )
                                    )
                        # Fused: transform bound to the word count's
                        # config. Never tiled — fused rows materialize
                        # parent-side before a tile could absorb them.
                        if allow_fusion and not must_tile and (
                            self._supports_fusion(backend1, shm1)
                        ):
                            fused_plan = PhasePlan(
                                "transform", backend1, workers1, shm1,
                                grain=grain1, dict_kind=tr_kind,
                                fused_with_previous=True,
                            )
                            pairs.append(
                                PairEstimate(
                                    wc=wc_est,
                                    transform=self.model.predict(
                                        wl_tr, fused_plan
                                    ),
                                    fused=True,
                                )
                            )
        pairs.sort(key=lambda pair: pair.predicted_s)

        # K-means streams whatever matrix the transform produced, so its
        # tiled flag follows the winning transform (dispatch at run time
        # is automatic on the matrix type; the flag prices the passes).
        km_tiled = pairs[0].transform.plan.tiled
        if "kmeans" in cached_phases:
            kmeans: list[PhaseEstimate] = [
                self.model.predict(
                    wl_km, PhasePlan("kmeans", "sequential", 1, cached=True)
                )
            ]
        else:
            kmeans = [
                self.model.predict(
                    wl_km,
                    PhasePlan("kmeans", backend, workers, shm, tiled=km_tiled),
                )
                for backend, workers, shm in configs
                # Tiled assignment ships block tokens and reads tiles in
                # the workers — the shm plane has nothing to carry.
                if not (km_tiled and shm)
            ]
        kmeans.sort(key=lambda estimate: estimate.predicted_s)

        best_pair, best_km = pairs[0], kmeans[0]
        return RealPlan(
            phases={
                "input+wc": best_pair.wc.plan,
                "transform": best_pair.transform.plan,
                "kmeans": best_km.plan,
            },
            pair_candidates=pairs,
            kmeans_candidates=kmeans,
            calibration=self.calibration.describe(),
            n_docs=n_docs,
            memory_budget=memory_budget,
            matrix_bytes=matrix_bytes,
        )
