"""Measured-cost adaptive planning for the real execution path.

The measure → calibrate → plan loop (ROADMAP item 2):

1. **Measure** — traced runs capture per-task spans
   (:mod:`repro.exec.spans`) and exact IPC byte counters
   (:mod:`repro.exec.shm`).
2. **Calibrate** — :class:`CalibrationStore` fits per-phase cost
   constants from those measurements, or from a cheap sampled sequential
   probe when no history exists; stores persist as JSON.
3. **Plan** — :class:`RealCostModel` prices every candidate
   :class:`PhasePlan` (backend × workers × shm × grain × dict kind ×
   fusion) and :class:`AdaptivePlanner` picks the per-phase argmin,
   returning a :class:`RealPlan` whose ``explain()`` narrates the
   rejected candidates.

``run_pipeline(plan="auto")`` drives the whole loop; see
``docs/planner.md``.
"""

from repro.plan.calibration import (
    DEFAULT_PROBE_FRACTION,
    CalibrationStore,
    PhaseConstants,
)
from repro.plan.cost_model import (
    PhaseEstimate,
    PhasePlan,
    PhaseWorkload,
    RealCostModel,
)
from repro.plan.planner import AdaptivePlanner, PairEstimate, RealPlan

__all__ = [
    "CalibrationStore",
    "PhaseConstants",
    "DEFAULT_PROBE_FRACTION",
    "PhasePlan",
    "PhaseWorkload",
    "PhaseEstimate",
    "RealCostModel",
    "PairEstimate",
    "RealPlan",
    "AdaptivePlanner",
]
