"""Command-line interface: the paper's operators as separate binaries.

The discrete workflow of §3.3 runs each operator as its own executable
communicating through files; this CLI makes that literal::

    python -m repro generate --profile mix --scale 0.01 --out data/corpus
    python -m repro tfidf    --input data/corpus --output data/scores.arff
    python -m repro kmeans   --input data/scores.arff --output data/clusters.txt

or fused in one process, with the simulated machine's timing report::

    python -m repro workflow --input data/corpus --mode merged --threads 16
    python -m repro plan     --input data/corpus

or as a long-lived service with a durable job queue (``docs/serving.md``)::

    python -m repro serve run    --state data/serve
    python -m repro serve submit --state data/serve --input data/corpus --wait

All commands operate on real files through :class:`repro.io.FsStorage`,
so intermediates (the ARFF scores) can be inspected or loaded into WEKA.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core.pipeline import run_pipeline
from repro.errors import ConfigurationError
from repro.core.planner import WorkflowPlanner
from repro.core.workflow import build_tfidf_kmeans_workflow
from repro.exec.machine import paper_node
from repro.exec.process import BACKEND_CHOICES, _BACKEND_ALIASES, make_backend
from repro.exec.resilience import POISON_MODES, ResilienceConfig, RetryPolicy
from repro.exec.scheduler import SimScheduler
from repro.io.arff import read_sparse_arff, write_sparse_arff
from repro.io.corpus_io import load_corpus, store_corpus
from repro.io.parallel_read import corpus_stream
from repro.io.storage import FsStorage
from repro.ops.kmeans import KMeansOperator
from repro.ops.tfidf import TfIdfOperator
from repro.text.analysis import fit_heaps, zipf_profile
from repro.text.synth import MIX_PROFILE, NSF_ABSTRACTS_PROFILE, generate_corpus
from repro.text.tokenizer import Tokenizer

__all__ = ["main", "build_parser"]

_PROFILES = {"mix": MIX_PROFILE, "nsf-abstracts": NSF_ABSTRACTS_PROFILE}


def _add_backend_args(parser: argparse.ArgumentParser) -> None:
    """Real-execution backend selection, shared by tfidf/kmeans/pipeline."""
    parser.add_argument(
        "--backend",
        choices=list(BACKEND_CHOICES) + sorted(_BACKEND_ALIASES),
        default="sequential",
        help="real execution backend (processes = one per core)",
    )
    parser.add_argument(
        "--workers", type=int, default=max(1, os.cpu_count() or 1),
        help="worker count for threads/processes backends",
    )
    parser.add_argument(
        "--shm", action=argparse.BooleanOptionalAction, default=None,
        help="share large arrays with process workers via POSIX shared "
        "memory (default: on where available; --no-shm forces pickled IPC)",
    )
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="re-run a failed task up to N times before giving up "
        "(default: 0 = fail fast); see docs/resilience.md",
    )
    parser.add_argument(
        "--retry-backoff", type=float, default=0.05, metavar="SECONDS",
        help="base backoff before the first retry (doubles per attempt, "
        "with deterministic jitter)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-task deadline; a hung process worker is killed and the "
        "task retried on a fresh pool",
    )
    parser.add_argument(
        "--phase-timeout", type=float, default=None, metavar="SECONDS",
        help="deadline for each pipeline phase as a whole",
    )
    parser.add_argument(
        "--on-poison", choices=list(POISON_MODES), default="raise",
        help="what to do with a task that exhausts its retries: abort the "
        "run (raise) or isolate the poisoned document(s) and finish the "
        "rest (quarantine)",
    )


def _cli_resilience(args) -> ResilienceConfig | None:
    """Fault-tolerance policy from the flags; None = seed fail-fast paths."""
    retries = getattr(args, "retries", 0)
    task_timeout = getattr(args, "task_timeout", None)
    phase_timeout = getattr(args, "phase_timeout", None)
    on_poison = getattr(args, "on_poison", "raise")
    if retries < 0:
        raise ConfigurationError(f"--retries must be >= 0, got {retries}")
    if (
        retries == 0
        and task_timeout is None
        and phase_timeout is None
        and on_poison == "raise"
    ):
        return None
    return ResilienceConfig(
        retry=RetryPolicy(
            max_attempts=retries + 1,
            backoff_base_s=getattr(args, "retry_backoff", 0.05),
        ),
        task_timeout_s=task_timeout,
        phase_timeout_s=phase_timeout,
        on_poison=on_poison,
    )


def _make_cli_backend(args):
    """Build the backend an invocation asked for (caller must close it)."""
    return make_backend(
        args.backend, args.workers, shm=args.shm, resilience=_cli_resilience(args)
    )


def _add_read_args(parser: argparse.ArgumentParser) -> None:
    """Parallel-input flags (paper §3.2), shared by tfidf/pipeline."""
    parser.add_argument(
        "--read-workers", type=int, default=1,
        help="concurrent file-read threads (1 = serial input)",
    )
    parser.add_argument(
        "--prefetch", type=int, default=None,
        help="max documents in flight ahead of compute "
        "(default: 4x read workers)",
    )


def _make_cli_stream(args):
    """Bounded-prefetch document stream over the input directory."""
    storage = FsStorage(args.input)
    retries = getattr(args, "retries", 0)
    retry = (
        RetryPolicy(
            max_attempts=retries + 1,
            backoff_base_s=getattr(args, "retry_backoff", 0.05),
        )
        if retries > 0
        else None
    )
    return corpus_stream(
        storage,
        "",
        workers=args.read_workers,
        prefetch=args.prefetch,
        name=os.path.basename(args.input),
        retry=retry,
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Operator and workflow optimization for analytics "
        "(MEDAL/EDBT 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic corpus")
    gen.add_argument("--profile", choices=sorted(_PROFILES), default="mix")
    gen.add_argument("--scale", type=float, default=0.01)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="output directory")

    tfidf = sub.add_parser("tfidf", help="TF/IDF over a corpus directory")
    tfidf.add_argument("--input", "--input-dir", dest="input", required=True,
                       help="corpus directory")
    tfidf.add_argument("--output", required=True, help="ARFF output file")
    tfidf.add_argument("--dict", dest="dict_kind", default="map",
                       choices=["map", "unordered_map", "dict"])
    tfidf.add_argument("--min-df", type=int, default=1)
    tfidf.add_argument("--stopwords", action="store_true")
    _add_backend_args(tfidf)
    _add_read_args(tfidf)

    kmeans = sub.add_parser("kmeans", help="K-means over an ARFF file")
    kmeans.add_argument("--input", required=True, help="ARFF input file")
    kmeans.add_argument("--output", required=True, help="assignments file")
    kmeans.add_argument("--clusters", type=int, default=8)
    kmeans.add_argument("--max-iters", type=int, default=10)
    kmeans.add_argument("--seed", type=int, default=0)
    kmeans.add_argument("--init", choices=["spread", "kmeans++"], default="spread")
    _add_backend_args(kmeans)

    pipe = sub.add_parser(
        "pipeline",
        help="run the fused TF/IDF -> K-means workflow for real "
        "(wall clock, multi-core via --backend processes)",
    )
    pipe.add_argument("--input", "--input-dir", dest="input", required=True,
                      help="corpus directory")
    pipe.add_argument("--output", default=None,
                      help="assignments file (default: stdout summary only)")
    pipe.add_argument("--arff", default=None,
                      help="also write the TF/IDF scores as ARFF")
    pipe.add_argument("--dict", dest="dict_kind", default=None,
                      choices=["map", "unordered_map", "dict"],
                      help="dictionary implementation (default: map, or "
                      "the planner's pick under --plan auto)")
    pipe.add_argument("--min-df", type=int, default=1)
    pipe.add_argument("--stopwords", action="store_true")
    pipe.add_argument("--clusters", type=int, default=8)
    pipe.add_argument("--max-iters", type=int, default=10)
    pipe.add_argument("--seed", type=int, default=0)
    pipe.add_argument("--init", choices=["spread", "kmeans++"], default="spread")
    pipe.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record per-task spans and write Chrome trace-event JSON "
        "(open in chrome://tracing or ui.perfetto.dev)",
    )
    pipe.add_argument(
        "--degrade", action="store_true",
        help="fall back to a weaker backend (processes -> threads -> "
        "sequential) instead of failing when the worker pool cannot be "
        "kept alive",
    )
    pipe.add_argument(
        "--plan", choices=["fixed", "auto"], default="fixed",
        help="fixed = run every phase on the --backend given; auto = let "
        "the measured-cost planner pick each phase's backend, grain, "
        "dictionary, and wc->transform fusion (see docs/planner.md)",
    )
    pipe.add_argument(
        "--calibration", default=None, metavar="PATH",
        help="calibration store for --plan auto (JSON, written back after "
        "each planned run; default: probe ~2%% of the corpus)",
    )
    pipe.add_argument(
        "--explain-plan", action="store_true",
        help="with --plan auto, print the rejected candidate "
        "configurations and the cost terms that sank them",
    )
    pipe.add_argument(
        "--cache", default=None, metavar="DIR",
        help="phase-level result cache directory: serve unchanged phases "
        "from disk (bit-identical) and recompute only changed document "
        "shards (see docs/caching.md)",
    )
    pipe.add_argument(
        "--cache-max-mb", type=float, default=None, metavar="MB",
        help="evict least-recently-used cache entries beyond this size",
    )
    pipe.add_argument(
        "--cache-ttl", type=float, default=None, metavar="SECONDS",
        help="treat cache entries stored longer ago than this as misses "
        "(expired entries are deleted at lookup)",
    )
    pipe.add_argument(
        "--memory-budget-mb", type=float, default=None, metavar="MB",
        help="bound the TF/IDF matrix's resident footprint: score tiles "
        "spill to disk and phases stream them chunk-at-a-time, "
        "bit-identically (see docs/data_plane.md); under --plan auto the "
        "planner tiles only when the matrix exceeds the budget",
    )
    pipe.add_argument(
        "--ledger", default=None, metavar="DIR",
        help="append one wall-anchored record per workflow step to the "
        "persistent run ledger in DIR; aggregate the history with "
        "'repro analytics' (see docs/ledger.md)",
    )
    _add_backend_args(pipe)
    _add_read_args(pipe)

    analytics = sub.add_parser(
        "analytics",
        help="aggregate the run ledger: Workflow-DNA heatmap, per-step "
        "history, regression flags, exports, calibration replay",
    )
    asub = analytics.add_subparsers(dest="action", required=True)

    def _ledger_arg(p):
        p.add_argument("--ledger", required=True, metavar="DIR",
                       help="ledger directory written by pipeline --ledger")

    aheat = asub.add_parser(
        "heatmap", help="per-step p50/p95, failure rate, bytes, cache hits"
    )
    _ledger_arg(aheat)
    aheat.add_argument("--json", action="store_true",
                       help="emit JSON instead of the terminal table")

    asteps = asub.add_parser("steps", help="per-run history of each step")
    _ledger_arg(asteps)
    asteps.add_argument("--step", default=None,
                        help="restrict to one step (default: all)")
    asteps.add_argument("--json", action="store_true")

    aregr = asub.add_parser(
        "regressions",
        help="flag steps whose latest duration left their trailing "
        "baseline (exit 1 when any step regressed)",
    )
    _ledger_arg(aregr)
    aregr.add_argument("--tolerance", type=float, default=None, metavar="FRAC",
                       help="relative headroom over the baseline p50 "
                       "(default 0.5 = 50%%)")
    aregr.add_argument("--min-runs", type=int, default=None, metavar="N",
                       help="good samples required before flagging "
                       "(default 3)")
    aregr.add_argument("--json", action="store_true")

    aexp = asub.add_parser(
        "export", help="export the history (json, prom, chrome, html)"
    )
    _ledger_arg(aexp)
    aexp.add_argument("--format", choices=["json", "prom", "chrome", "html"],
                      default="json")
    aexp.add_argument("--out", default=None, metavar="PATH",
                      help="output file (default: stdout)")

    arecal = asub.add_parser(
        "recalibrate",
        help="replay ledgered span/IPC totals into a calibration store "
        "so planning sharpens from history (see docs/planner.md)",
    )
    _ledger_arg(arecal)
    arecal.add_argument("--calibration", required=True, metavar="PATH",
                        help="calibration store JSON to update in place "
                        "(atomic replace)")
    arecal.add_argument("--out", default=None, metavar="PATH",
                        help="write the updated store here instead of "
                        "replacing --calibration")

    wf = sub.add_parser("workflow", help="run the fused/discrete workflow "
                        "with a simulated timing report")
    wf.add_argument("--input", required=True, help="corpus directory")
    wf.add_argument("--mode", choices=["merged", "discrete"], default="merged")
    wf.add_argument("--dict", dest="dict_kind", default="map",
                    choices=["map", "unordered_map", "dict"])
    wf.add_argument("--threads", type=int, default=16)
    wf.add_argument("--cores", type=int, default=16)
    wf.add_argument("--clusters", type=int, default=8)
    wf.add_argument("--max-iters", type=int, default=10)
    wf.add_argument("--output", default="clusters.txt",
                    help="assignments file (within the input directory)")

    plan = sub.add_parser("plan", help="cost-based planning over a corpus")
    plan.add_argument("--input", required=True, help="corpus directory")
    plan.add_argument("--cores", type=int, default=16)
    plan.add_argument("--pilot-docs", type=int, default=64)
    plan.add_argument("--memory-budget-gb", type=float, default=None)

    analyze = sub.add_parser(
        "analyze", help="corpus statistics, Heaps fit and Zipf head"
    )
    analyze.add_argument("--input", required=True, help="corpus directory")
    analyze.add_argument("--top", type=int, default=10)

    serve = sub.add_parser(
        "serve",
        help="pipeline-as-a-service: durable job queue with admission "
        "control, warm pools, and crash recovery (see docs/serving.md)",
    )
    ssub = serve.add_subparsers(dest="action", required=True)

    def _state_arg(p):
        p.add_argument("--state", required=True, metavar="DIR",
                       help="serve state directory (journal, inbox, "
                       "results, heartbeat)")

    srun = ssub.add_parser("run", help="run the daemon (blocks)")
    _state_arg(srun)
    srun.add_argument("--backend", choices=["sequential", "threads",
                                            "processes"], default="threads",
                      help="default execution backend for jobs")
    srun.add_argument("--workers", type=int, default=2)
    srun.add_argument("--executors", type=int, default=1,
                      help="concurrent jobs (one warm pool each)")
    srun.add_argument("--max-depth", type=int, default=8,
                      help="admission: queued-job budget before shedding")
    srun.add_argument("--cost-budget-s", type=float, default=None,
                      help="admission: shed once queued predicted seconds "
                      "exceed this (needs calibration to price jobs)")
    srun.add_argument("--job-timeout", type=float, default=None,
                      metavar="SECONDS",
                      help="per-job deadline (phase-granular)")
    srun.add_argument("--max-attempts", type=int, default=3,
                      help="run attempts per job before it is failed")
    srun.add_argument("--max-pool-losses", type=int, default=3,
                      help="worker-pool deaths before the circuit breaker "
                      "trips to drain mode")
    srun.add_argument("--drain-deadline", type=float, default=10.0,
                      metavar="SECONDS",
                      help="grace for in-flight jobs on SIGTERM/drain")
    srun.add_argument("--idle-exit", type=float, default=None,
                      metavar="SECONDS",
                      help="exit after this long with nothing to do "
                      "(test/CI convenience; default: run forever)")
    srun.add_argument("--calibration", default=None, metavar="PATH",
                      help="calibration store to load/observe/save "
                      "(default: <state>/calibration.json)")
    srun.add_argument("--ledger", default=None, metavar="DIR",
                      help="run-ledger directory every job feeds "
                      "(default: <state>/ledger)")
    srun.add_argument("--orphan-policy", choices=["retry", "fail"],
                      default="retry",
                      help="what recovery does with jobs orphaned mid-run")

    ssubmit = ssub.add_parser("submit", help="submit one job")
    _state_arg(ssubmit)
    ssubmit.add_argument("--input", required=True, help="corpus directory")
    ssubmit.add_argument("--clusters", type=int, default=8)
    ssubmit.add_argument("--iters", type=int, default=10)
    ssubmit.add_argument("--seed", type=int, default=0)
    ssubmit.add_argument("--min-df", type=int, default=1)
    ssubmit.add_argument("--backend", default=None,
                         choices=["sequential", "threads", "processes"],
                         help="override the daemon's default backend")
    ssubmit.add_argument("--workers", type=int, default=None)
    ssubmit.add_argument("--timeout", type=float, default=None,
                         metavar="SECONDS", help="per-job deadline")
    ssubmit.add_argument("--job-id", default=None,
                         help="explicit id (idempotent resubmission)")
    ssubmit.add_argument("--wait", action="store_true",
                         help="block until the job reaches a terminal "
                         "state and report it")
    ssubmit.add_argument("--wait-timeout", type=float, default=60.0,
                         metavar="SECONDS")

    sstatus = ssub.add_parser("status", help="job states from the journal")
    _state_arg(sstatus)
    sstatus.add_argument("--job", default=None, help="one job id")
    sstatus.add_argument("--json", action="store_true")

    sdrain = ssub.add_parser(
        "drain", help="ask the daemon to finish in-flight jobs and exit"
    )
    _state_arg(sdrain)

    cache = sub.add_parser(
        "cache", help="manage a result-cache directory (docs/caching.md)"
    )
    csub = cache.add_subparsers(dest="action", required=True)
    cinv = csub.add_parser(
        "invalidate", help="delete cache entries explicitly"
    )
    cinv.add_argument("--cache", required=True, metavar="DIR",
                      help="cache directory (as passed to pipeline --cache)")
    group = cinv.add_mutually_exclusive_group(required=True)
    group.add_argument("--key", default=None, help="delete one entry")
    group.add_argument("--all", action="store_true", dest="all_entries",
                       help="delete every entry")
    group.add_argument("--expired", type=float, default=None,
                       metavar="MAX_AGE_S",
                       help="delete entries stored longer ago than this")

    return parser


def _cmd_generate(args) -> int:
    profile = _PROFILES[args.profile]
    corpus = generate_corpus(profile, scale=args.scale, seed=args.seed)
    storage = FsStorage(args.out)
    cost = store_corpus(storage, corpus)
    print(f"wrote {len(corpus)} documents "
          f"({cost.disk_write_bytes / 1e6:.1f} MB) to {args.out}")
    return 0


def _cmd_tfidf(args) -> int:
    stream = _make_cli_stream(args)
    if not len(stream):
        print(f"error: no documents found in {args.input}", file=sys.stderr)
        return 1
    operator = TfIdfOperator(
        wc_dict_kind=args.dict_kind,
        tokenizer=Tokenizer(drop_stopwords=args.stopwords),
        min_df=args.min_df,
    )
    with _make_cli_backend(args) as backend:
        result = operator.fit_transform(stream, backend=backend)
    document = write_sparse_arff("tfidf", result.vocabulary,
                                 result.matrix.iter_rows())
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(document)
    print(f"wrote {result.matrix.n_rows} x {len(result.vocabulary)} scores "
          f"({len(document) / 1e6:.1f} MB ARFF) to {args.output}")
    return 0


def _cmd_kmeans(args) -> int:
    with open(args.input, "r", encoding="utf-8") as handle:
        relation = read_sparse_arff(handle.read())
    operator = KMeansOperator(
        n_clusters=args.clusters,
        max_iters=args.max_iters,
        seed=args.seed,
        init=args.init,
    )
    with _make_cli_backend(args) as backend:
        result = operator.fit(relation.rows, backend=backend)
    with open(args.output, "w", encoding="utf-8") as handle:
        for doc_id, cluster in enumerate(result.assignments):
            handle.write(f"{doc_id}\t{cluster}\n")
    sizes = ", ".join(str(s) for s in result.cluster_sizes())
    print(f"clustered {relation.rows.n_rows} documents into "
          f"{args.clusters} clusters ({result.n_iters} iterations, "
          f"converged={result.converged}); sizes: {sizes}")
    print(f"assignments written to {args.output}")
    return 0


def _cmd_workflow(args) -> int:
    storage = FsStorage(args.input)
    workflow = build_tfidf_kmeans_workflow(
        mode=args.mode,
        wc_dict_kind=args.dict_kind,
        n_clusters=args.clusters,
        max_iters=args.max_iters,
        output_path=args.output,
    )
    scheduler = SimScheduler(paper_node(max(args.cores, args.threads)))
    result = workflow.run(
        scheduler, storage, inputs={"tfidf.corpus_prefix": ""},
        workers=args.threads,
    )
    clusters = result.value("kmeans.clusters")
    print(f"{args.mode} workflow, {args.threads} thread(s) on "
          f"{scheduler.machine.name}:")
    for phase, seconds in result.breakdown().items():
        print(f"  {phase:>14}: {seconds:9.3f}s")
    print(f"  {'total':>14}: {result.total_s:9.3f}s "
          f"(peak memory {result.peak_resident_bytes / 1e6:.1f} MB)")
    print(f"cluster sizes: {clusters.cluster_sizes()}")
    return 0


def _validate_pipeline_flags(args) -> None:
    """Fail fast on flag combinations that would only error mid-run.

    ``--plan auto`` may pick the fused wc→transform path, whose
    worker-resident intermediates cannot be replayed by a retry,
    quarantined around, or rebuilt by a backend downgrade — so every
    resilience knob conflicts with it. Catching this at argument
    validation names the offending flags instead of failing deep inside
    the run once the planner has committed to fusion.
    """
    if args.plan != "auto":
        return
    conflicting = []
    if getattr(args, "retries", 0):
        conflicting.append("--retries")
    if getattr(args, "task_timeout", None) is not None:
        conflicting.append("--task-timeout")
    if getattr(args, "phase_timeout", None) is not None:
        conflicting.append("--phase-timeout")
    if getattr(args, "on_poison", "raise") != "raise":
        conflicting.append("--on-poison")
    if getattr(args, "degrade", False):
        conflicting.append("--degrade")
    if conflicting:
        raise ConfigurationError(
            f"--plan auto cannot be combined with "
            f"{', '.join(conflicting)}: the planner may pick the fused "
            f"wc->transform path, whose worker-resident state cannot be "
            f"replayed, quarantined, or degraded; use --plan fixed for "
            f"resilient runs"
        )


def _cli_cache(args):
    """Result cache from the flags; ``None`` when caching is off."""
    from repro.cache import PipelineCache

    if getattr(args, "cache", None) is None:
        if getattr(args, "cache_max_mb", None) is not None:
            raise ConfigurationError("--cache-max-mb requires --cache DIR")
        if getattr(args, "cache_ttl", None) is not None:
            raise ConfigurationError("--cache-ttl requires --cache DIR")
        return None
    max_bytes = (
        int(args.cache_max_mb * 1e6)
        if getattr(args, "cache_max_mb", None) is not None
        else None
    )
    return PipelineCache(args.cache, max_bytes=max_bytes,
                         max_age_s=getattr(args, "cache_ttl", None))


def _cmd_pipeline(args) -> int:
    _validate_pipeline_flags(args)
    cache = _cli_cache(args)
    stream = _make_cli_stream(args)
    if not len(stream):
        print(f"error: no documents found in {args.input}", file=sys.stderr)
        return 1
    auto_plan = args.plan == "auto"
    tfidf = None
    if not auto_plan or args.dict_kind or args.stopwords or args.min_df != 1:
        # Pinned operators: the planner may still pick backends, but the
        # dictionary choice belongs to the user.
        tfidf = TfIdfOperator(
            wc_dict_kind=args.dict_kind or "map",
            tokenizer=Tokenizer(drop_stopwords=args.stopwords),
            min_df=args.min_df,
        )
    kmeans = KMeansOperator(
        n_clusters=args.clusters,
        max_iters=args.max_iters,
        seed=args.seed,
        init=args.init,
    )
    memory_budget = (
        int(args.memory_budget_mb * 1e6)
        if args.memory_budget_mb is not None
        else None
    )
    if memory_budget is not None and memory_budget <= 0:
        raise ConfigurationError(
            f"--memory-budget-mb must be > 0, got {args.memory_budget_mb}"
        )
    if auto_plan:
        result = run_pipeline(
            stream,
            plan="auto",
            calibration=args.calibration,
            tfidf=tfidf,
            kmeans=kmeans,
            trace=args.trace is not None,
            cache=cache,
            memory_budget=memory_budget,
            ledger=args.ledger,
        )
    else:
        with _make_cli_backend(args) as backend:
            result = run_pipeline(
                stream,
                backend=backend,
                tfidf=tfidf,
                kmeans=kmeans,
                trace=args.trace is not None,
                degrade=args.degrade,
                cache=cache,
                memory_budget=memory_budget,
                ledger=args.ledger,
            )

    if args.arff is not None:
        document = write_sparse_arff(
            "tfidf", result.tfidf.vocabulary, result.tfidf.matrix.iter_rows()
        )
        with open(args.arff, "w", encoding="utf-8") as handle:
            handle.write(document)
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            for doc_id, cluster in enumerate(result.kmeans.assignments):
                handle.write(f"{doc_id}\t{cluster}\n")

    # One serializer feeds every reporting surface (ledger, bench, this
    # summary) — the prints below read the shared record, not the live
    # result fields, so the accounting cannot drift between surfaces.
    record = result.to_record()
    print(f"fused pipeline on backend {record['backend']} "
          f"({stream.n_read} documents via {args.read_workers} read "
          f"worker(s), {len(result.tfidf.vocabulary)} terms):")
    if result.plan is not None:
        print(f"plan: {result.plan.describe()}")
        print(f"  planned in {record['plan_seconds']:.3f}s "
              f"(calibration: {record['plan']['calibration']}; "
              f"predicted {record['plan']['predicted_total_s']:.3f}s)")
        if args.explain_plan:
            print(result.plan.explain())
    for phase, seconds in record["phases"].items():
        print(f"  {phase:>14}: {seconds:9.3f}s")
    print(f"  {'total':>14}: {record['total_s']:9.3f}s")
    if record["ipc"] is not None:
        total = record["ipc"]["total"]
        print(
            f"IPC: {total['tasks']} tasks, "
            f"{total['task_pickle_bytes'] / 1e6:.2f} MB pickled out / "
            f"{total['result_pickle_bytes'] / 1e6:.2f} MB back, "
            f"{total['segments']} shared segment(s) "
            f"({total['segment_bytes'] / 1e6:.2f} MB), "
            f"{total['broadcasts']} broadcast(s)"
        )
        if total["retries"] or total["timeouts"] or total["pool_restarts"]:
            print(
                f"recovery: {total['retries']} task re-execution(s) "
                f"({total['retry_pickle_bytes'] / 1e6:.2f} MB re-pickled), "
                f"{total['timeouts']} timeout(s), "
                f"{total['pool_restarts']} pool restart(s)"
            )
    for event in record["downgrades"]:
        print(
            f"degraded: {event['from_backend']} -> {event['to_backend']} "
            f"during phase {event['phase']!r} ({event['reason']})"
        )
    if record["quarantine"] is not None:
        q = record["quarantine"]
        docs = ", ".join(str(d) for d in q["doc_ids"])
        print(
            f"quarantined: {q['slices']} poisoned slice(s)"
            + (f"; dropped document id(s): {docs}" if docs else "")
        )
    if record["cache"] is not None:
        c = record["cache"]
        shards_seen = c["shard_hits"] + c["shard_misses"]
        shard_note = (
            f", {c['shard_hits']}/{shards_seen} shard(s) reused"
            if shards_seen
            else ""
        )
        print(
            f"cache: {c['hits']} hit(s), {c['misses']} miss(es)"
            f"{shard_note}; served {c['bytes_saved'] / 1e6:.2f} MB, "
            f"saved {c['seconds_saved']:.3f}s, "
            f"stored {c['stored']} entr{'y' if c['stored'] == 1 else 'ies'}"
            + (" [disabled after quarantine]" if c["disabled"] else "")
        )
    if record["tiles"] is not None:
        t = record["tiles"]
        print(
            f"tiles: {t['tiles']} spilled ({t['tile_bytes'] / 1e6:.2f} MB "
            f"on disk), peak pinned {t['peak_pinned_bytes'] / 1e6:.2f} MB "
            f"of {t['memory_budget'] / 1e6:.2f} MB budget, "
            f"{t['reads']} read(s), {t['evictions']} eviction(s)"
        )
    if result.trace is not None:
        result.trace.write_chrome_trace(args.trace)
        summary = record["trace"]
        line = ", ".join(
            f"{phase} {stats['utilization']:.0%}/{stats['n_workers']}w"
            f" (straggler x{stats['straggler_ratio']:.1f})"
            for phase, stats in summary.items()
        )
        print(f"trace: {len(result.trace.spans)} spans -> {args.trace}; "
              f"utilization: {line}")
    if result.ledger is not None:
        led = result.ledger
        print(
            f"ledger: {led['records']} step record(s) -> {led['dir']} "
            f"(run {led['run_id']}, append {led['append_s'] * 1e3:.1f}ms)"
        )
    print(f"cluster sizes: {result.kmeans.cluster_sizes()} "
          f"({result.kmeans.n_iters} iterations, "
          f"converged={result.kmeans.converged})")
    close = getattr(result.tfidf.matrix, "close", None)
    if close is not None:
        close()  # a tiled matrix owns its spill directory
    return 0


def _analytics_records(args):
    """Load the ledger history, surfacing skipped lines on stderr."""
    from repro.obs.ledger import read_ledger

    records, problems = read_ledger(args.ledger)
    for problem in problems:
        print(f"warning: {problem}", file=sys.stderr)
    return records


def _cmd_analytics(args) -> int:
    from repro.obs import analytics

    if args.action == "recalibrate":
        from repro.plan import CalibrationStore

        store = CalibrationStore.load(args.calibration)
        before = {
            phase: constants.compute_ns_per_doc
            for phase, constants in store.phases.items()
        }
        summary = analytics.recalibrate(_analytics_records(args), store)
        out = args.out or args.calibration
        store.save(out)
        print(
            f"recalibrated from {summary['runs_applied']} run(s) "
            f"({summary['runs_skipped']} without usable telemetry) -> {out}"
        )
        for phase, constants in store.phases.items():
            old = before.get(phase, 0.0)
            new = constants.compute_ns_per_doc
            delta = (new / old - 1.0) * 100 if old else 0.0
            print(f"  {phase:>14}: compute {old:.0f} -> {new:.0f} ns/doc "
                  f"({delta:+.1f}%)")
        return 0

    records = _analytics_records(args)
    if args.action == "heatmap":
        if args.json:
            print(analytics.to_json(
                [s.as_dict() for s in analytics.heatmap(records).values()]
            ), end="")
            return 0
        if not records:
            print(f"ledger {args.ledger} has no records yet")
            return 0
        print(f"workflow DNA over "
              f"{len({r['run_id'] for r in records})} run(s):")
        header = (f"{'step':>14}  {'runs':>5} {'p50 s':>9} {'p95 s':>9} "
                  f"{'fail':>5} {'MB moved':>9} {'cache':>6} {'util':>5} "
                  f"{'strag':>6}")
        print(header)
        for s in analytics.heatmap(records).values():
            hit = "-" if s.cache_hit_rate is None else f"{s.cache_hit_rate:.0%}"
            util = ("-" if s.mean_utilization is None
                    else f"{s.mean_utilization:.0%}")
            strag = ("-" if s.mean_straggler_ratio is None
                     else f"x{s.mean_straggler_ratio:.1f}")
            print(f"{s.step:>14}  {s.n_records:>5} {s.p50_s:>9.3f} "
                  f"{s.p95_s:>9.3f} {s.failure_rate:>5.0%} "
                  f"{s.bytes_moved / 1e6:>9.2f} {hit:>6} {util:>5} "
                  f"{strag:>6}")
        return 0

    if args.action == "steps":
        rows = analytics.step_history(records, args.step)
        if args.json:
            print(analytics.to_json(rows), end="")
            return 0
        if not rows:
            print(f"no records for step {args.step!r}" if args.step
                  else f"ledger {args.ledger} has no records yet")
            return 0
        for row in rows:
            print(f"{row['ts']:.3f}  {row['step']:>14}  "
                  f"{row['duration_s']:9.3f}s  {row['status']:>6}  "
                  f"{row['backend']}  ({row['run_id']})")
        return 0

    if args.action == "regressions":
        kwargs = {}
        if args.tolerance is not None:
            kwargs["tolerance"] = args.tolerance
        if args.min_runs is not None:
            kwargs["min_runs"] = args.min_runs
        flagged = analytics.detect_regressions(records, **kwargs)
        if args.json:
            print(analytics.to_json(flagged), end="")
        elif not flagged:
            print(f"no regressions across "
                  f"{len({r['run_id'] for r in records})} run(s)")
        else:
            for f in flagged:
                print(f"regression: {f['step']} latest {f['latest_s']:.3f}s "
                      f"vs baseline p50 {f['baseline_p50_s']:.3f}s "
                      f"(x{f['ratio']:.2f}, threshold "
                      f"{f['threshold_s']:.3f}s, {f['samples']} samples)")
        return 1 if flagged else 0

    if args.action == "export":
        if args.format == "json":
            text = analytics.to_json(analytics.export_json(records))
        elif args.format == "prom":
            text = analytics.export_prom(records)
        elif args.format == "chrome":
            text = analytics.to_json(analytics.export_chrome(records))
        else:
            text = analytics.export_html(records)
        if args.out is None:
            print(text, end="")
        else:
            from repro.io.atomic import atomic_write_text

            atomic_write_text(args.out, text)
            print(f"wrote {args.format} export "
                  f"({len(records)} record(s)) to {args.out}")
        return 0

    raise ConfigurationError(f"unknown analytics action {args.action!r}")


def _cmd_plan(args) -> int:
    storage = FsStorage(args.input)
    planner = WorkflowPlanner(paper_node(args.cores))
    budget = (
        args.memory_budget_gb * 1e9 if args.memory_budget_gb is not None else None
    )
    plan = planner.plan(
        storage, "", pilot_docs=args.pilot_docs, memory_budget_bytes=budget
    )
    print(plan.explain())
    return 0


def _cmd_analyze(args) -> int:
    storage = FsStorage(args.input)
    corpus = load_corpus(storage, "", name=os.path.basename(args.input))
    if not len(corpus):
        print(f"error: no documents found in {args.input}", file=sys.stderr)
        return 1
    stats = corpus.stats()
    print(f"documents:        {stats.documents:,}")
    print(f"bytes:            {stats.total_bytes:,} "
          f"({stats.mean_bytes_per_doc:.0f}/doc)")
    print(f"tokens:           {stats.total_tokens:,} "
          f"({stats.mean_tokens_per_doc:.0f}/doc)")
    print(f"distinct words:   {stats.distinct_words:,}")
    if stats.documents >= 2:
        fit = fit_heaps(corpus)
        print(f"Heaps fit:        V(N) = {fit.k:.1f} * N^{fit.beta:.3f} "
              f"(R^2={fit.r_squared:.3f})")
        print(f"  projected vocabulary at 10x the tokens: "
              f"{fit.predict(10 * stats.total_tokens):,.0f}")
    head = zipf_profile(corpus, top=args.top)
    print(f"top-{args.top} term frequencies: "
          + ", ".join(str(freq) for _, freq in head))
    return 0


def _cmd_serve(args) -> int:
    from repro.serve import daemon as serve_daemon
    from repro.serve import transport as serve_transport

    if args.action == "run":
        config = serve_daemon.ServeConfig(
            state=args.state,
            backend=args.backend,
            workers=args.workers,
            executors=args.executors,
            max_depth=args.max_depth,
            cost_budget_s=args.cost_budget_s,
            job_timeout_s=args.job_timeout,
            max_attempts=args.max_attempts,
            max_pool_losses=args.max_pool_losses,
            drain_deadline_s=args.drain_deadline,
            idle_exit_s=args.idle_exit,
            calibration=args.calibration,
            ledger=args.ledger,
            orphan_policy=args.orphan_policy,
        )
        daemon = serve_daemon.ServeDaemon(config)
        code = daemon.run()
        stats = daemon.stats.as_dict()
        print(
            f"serve: drained ({daemon._drain_reason or 'stop'}) — "
            f"{stats['done']} done, {stats['failed']} failed, "
            f"{stats['shed']} shed, {stats['recovered']} recovered"
        )
        return code

    if args.action == "submit":
        spec = {
            "input": args.input,
            "clusters": args.clusters,
            "iters": args.iters,
            "seed": args.seed,
            "min_df": args.min_df,
        }
        if args.backend:
            spec["backend"] = args.backend
        if args.workers is not None:
            spec["workers"] = args.workers
        if args.timeout is not None:
            spec["timeout_s"] = args.timeout
        if args.job_id:
            spec["job_id"] = args.job_id
        job_id = serve_transport.submit_job(args.state, spec)
        print(f"submitted {job_id}")
        if not args.wait:
            return 0
        deadline = time.monotonic() + args.wait_timeout
        while time.monotonic() < deadline:
            view = serve_transport.job_status(args.state, job_id)
            if view is not None and view.terminal:
                detail = view.digest or view.error or view.reason or ""
                print(f"{job_id}: {view.state} {detail}".rstrip())
                return 0 if view.state == "done" else 1
            time.sleep(0.1)
        print(f"{job_id}: still not terminal after {args.wait_timeout}s",
              file=sys.stderr)
        return 1

    if args.action == "status":
        jobs = serve_transport.job_status(args.state)
        heartbeat = serve_transport.read_heartbeat(args.state)
        if args.job is not None:
            view = jobs.get(args.job)
            if view is None:
                print(f"error: unknown job {args.job}", file=sys.stderr)
                return 1
            jobs = {args.job: view}
        if args.json:
            payload = {
                "heartbeat": heartbeat,
                "jobs": {
                    job_id: {
                        "state": view.state,
                        "attempt": view.attempt,
                        "digest": view.digest,
                        "total_s": view.total_s,
                        "error": view.error,
                        "reason": view.reason,
                        "events": view.events,
                    }
                    for job_id, view in jobs.items()
                },
            }
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        if heartbeat:
            age = time.time() - heartbeat.get("ts", 0.0)
            print(
                f"daemon: pid {heartbeat.get('pid')} "
                f"{heartbeat.get('state')} (beat {age:.1f}s ago)"
            )
        else:
            print("daemon: no heartbeat")
        for job_id in sorted(jobs, key=lambda j: jobs[j].submitted_ts):
            view = jobs[job_id]
            detail = view.digest or view.error or view.reason or ""
            if detail:
                detail = f"  {str(detail)[:48]}"
            print(f"{job_id}  {view.state:9s} attempt={view.attempt}{detail}")
        return 0

    # drain
    serve_transport.request_drain(args.state)
    print(f"drain requested for {args.state}")
    return 0


def _cmd_cache(args) -> int:
    from repro.cache.store import CacheStore

    if not os.path.isdir(args.cache):
        print(f"error: {args.cache} is not a cache directory",
              file=sys.stderr)
        return 1
    if args.expired is not None:
        store = CacheStore(args.cache, max_age_s=args.expired)
        dropped = store.purge_expired()
        print(f"invalidated {dropped} expired entr"
              f"{'y' if dropped == 1 else 'ies'}")
        return 0
    store = CacheStore(args.cache)
    if args.all_entries:
        dropped = store.invalidate()
    else:
        if args.key not in store:
            print(f"error: no cache entry {args.key!r}", file=sys.stderr)
            return 1
        dropped = store.invalidate(args.key)
    print(f"invalidated {dropped} entr{'y' if dropped == 1 else 'ies'}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "tfidf": _cmd_tfidf,
    "kmeans": _cmd_kmeans,
    "workflow": _cmd_workflow,
    "pipeline": _cmd_pipeline,
    "analytics": _cmd_analytics,
    "plan": _cmd_plan,
    "analyze": _cmd_analyze,
    "serve": _cmd_serve,
    "cache": _cmd_cache,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
