"""Benchmark harness shared by the per-figure benchmark modules."""

from repro.bench.harness import (
    DEFAULT_BENCH_SCALE,
    FIG3_THREADS,
    THREAD_SWEEP,
    Workload,
    prepare_workload,
    run_paper_workflow,
)

__all__ = [
    "Workload",
    "prepare_workload",
    "run_paper_workflow",
    "DEFAULT_BENCH_SCALE",
    "THREAD_SWEEP",
    "FIG3_THREADS",
]
