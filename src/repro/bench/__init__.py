"""Benchmark harnesses: virtual-time (paper figures) and wall-clock."""

from repro.bench.harness import (
    DEFAULT_BENCH_SCALE,
    FIG3_THREADS,
    THREAD_SWEEP,
    Workload,
    prepare_workload,
    run_paper_workflow,
)
from repro.bench.wallclock import DEFAULT_WORKER_SWEEP, bench_wallclock

__all__ = [
    "Workload",
    "prepare_workload",
    "run_paper_workflow",
    "DEFAULT_BENCH_SCALE",
    "THREAD_SWEEP",
    "FIG3_THREADS",
    "bench_wallclock",
    "DEFAULT_WORKER_SWEEP",
]
