"""Child process for the out-of-core benchmark (``--mode oocore``).

``ru_maxrss`` is a per-process high-water mark and never goes down, so
one process cannot measure an untiled reference *and* a budgeted run —
the first would contaminate every later reading. The benchmark therefore
runs each configuration in a fresh child: this module regenerates the
deterministic synthetic corpus, runs the pipeline (optionally under a
``memory_budget`` and/or an ``RLIMIT_AS`` address-space cap), and prints
one JSON line with the output digest and the memory envelope. The parent
(:func:`repro.bench.wallclock.bench_oocore`) compares digests across
configurations — the bit-identity check — and asserts the spill plane's
``peak_pinned_bytes`` stayed under the budget.

Invoked as ``python -m repro.bench.oocore_child '<json config>'``.
"""

from __future__ import annotations

import hashlib
import json
import resource
import struct
import sys

from repro.core.pipeline import RealRunResult, run_pipeline
from repro.exec.process import make_backend
from repro.ops.kmeans import KMeansOperator
from repro.ops.tfidf import TfIdfOperator
from repro.text.synth import MIX_PROFILE, NSF_ABSTRACTS_PROFILE, generate_corpus

_PROFILES = {"mix": MIX_PROFILE, "nsf-abstracts": NSF_ABSTRACTS_PROFILE}


def output_digest(result: RealRunResult) -> str:
    """One hash over rows, assignments, and raw centroid bytes.

    Struct-packed (not ``repr``) so equal doubles hash equally and any
    last-ulp drift between tiled and resident execution changes the
    digest — this is the cross-process form of the bit-identity check.
    """
    h = hashlib.sha256()
    matrix = result.tfidf.matrix
    h.update(struct.pack("<qq", matrix.n_rows, matrix.n_cols))
    for row in matrix.iter_rows():
        idx = [int(i) for i in row.indices]
        val = [float(v) for v in row.values]
        h.update(struct.pack(f"<q{len(idx)}q", len(idx), *idx))
        h.update(struct.pack(f"<{len(val)}d", *val))
    assignments = result.kmeans.assignments
    h.update(struct.pack(f"<q{len(assignments)}q", len(assignments), *assignments))
    h.update(result.kmeans.centroids.tobytes())
    return h.hexdigest()


def _vm_peak_kb() -> int | None:
    """VmPeak from ``/proc/self/status`` (kB) — the address-space high
    water the rlimit smoke caps; ``None`` off Linux."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmPeak:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return None


def run_child(config: dict) -> dict:
    rlimit_as = config.get("rlimit_as")
    if rlimit_as:
        resource.setrlimit(resource.RLIMIT_AS, (int(rlimit_as), int(rlimit_as)))
    corpus = generate_corpus(
        _PROFILES[config.get("profile", "mix")],
        scale=float(config.get("scale", 0.01)),
        seed=int(config.get("seed", 0)),
    )
    backend = make_backend(
        config.get("backend", "sequential"), int(config.get("workers", 1))
    )
    try:
        result = run_pipeline(
            corpus,
            backend=backend,
            tfidf=TfIdfOperator(),
            kmeans=KMeansOperator(max_iters=int(config.get("kmeans_iters", 5))),
            memory_budget=config.get("memory_budget"),
        )
    finally:
        backend.close()

    out = {
        "digest": output_digest(result),
        "total_s": result.total_s,
        "phases": dict(result.phase_seconds),
        "n_docs": len(corpus),
        "matrix_bytes": result.tfidf.matrix.resident_bytes(),
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "vm_peak_kb": _vm_peak_kb(),
        "tiles": result.tiles,
    }
    close = getattr(result.tfidf.matrix, "close", None)
    if close is not None:
        close()
    return out


def main(argv: list[str]) -> int:
    config = json.loads(argv[1]) if len(argv) > 1 else {}
    print(json.dumps(run_child(config)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
