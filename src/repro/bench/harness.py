"""Shared benchmark harness: workload preparation and experiment runners.

Benchmarks run the real operators on a scaled-down synthetic corpus and
meter costs up to full scale through a
:class:`~repro.core.cost_model.WorkloadScale` (documents scale linearly,
vocabulary by the Heaps curve), so every reported number is directly a
full-scale virtual-time figure. Prepared workloads are cached per
(profile, scale, seed) because several benchmarks sweep the same corpus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost_model import DEFAULT_COSTS, CostConstants, WorkloadScale
from repro.core.workflow import WorkflowResult, build_tfidf_kmeans_workflow
from repro.exec.machine import paper_node
from repro.exec.scheduler import SimScheduler
from repro.io.storage import MemStorage
from repro.io.corpus_io import store_corpus
from repro.text.corpus import CorpusStats
from repro.text.synth import CorpusProfile, generate_corpus

__all__ = [
    "Workload",
    "prepare_workload",
    "run_paper_workflow",
    "DEFAULT_BENCH_SCALE",
    "THREAD_SWEEP",
    "FIG3_THREADS",
]

#: Corpus scale used by the benchmark suite (documents multiplier).
DEFAULT_BENCH_SCALE = 0.01

#: Thread counts of Figures 1 and 2.
THREAD_SWEEP = (1, 2, 4, 8, 12, 16, 20)

#: Thread counts of Figures 3 and 4.
FIG3_THREADS = (1, 4, 8, 12, 16)


@dataclass
class Workload:
    """A prepared benchmark input: stored corpus + extrapolation factors."""

    profile: CorpusProfile
    storage: MemStorage
    prefix: str
    stats: CorpusStats
    scale: WorkloadScale

    @property
    def n_docs(self) -> int:
        return self.stats.documents


_CACHE: dict[tuple[str, float, int], Workload] = {}


def prepare_workload(
    profile: CorpusProfile, scale: float = DEFAULT_BENCH_SCALE, seed: int = 0
) -> Workload:
    """Generate, store and statistically characterise a corpus (cached)."""
    key = (profile.name, scale, seed)
    if key in _CACHE:
        return _CACHE[key]
    corpus = generate_corpus(profile, scale=scale, seed=seed)
    storage = MemStorage()
    store_corpus(storage, corpus, prefix="in/")
    stats = corpus.stats()
    workload = Workload(
        profile=profile,
        storage=storage,
        prefix="in/",
        stats=stats,
        scale=WorkloadScale.for_corpus(
            full_docs=profile.n_docs,
            actual_docs=stats.documents,
            full_vocab=max(1, profile.expected_vocabulary()),
            actual_vocab=max(1, stats.distinct_words),
        ),
    )
    _CACHE[key] = workload
    return workload


def run_paper_workflow(
    workload: Workload,
    mode: str = "merged",
    wc_dict_kind: str = "map",
    transform_dict_kind: str | None = None,
    workers: int = 16,
    cores: int = 20,
    max_iters: int = 10,
    costs: CostConstants = DEFAULT_COSTS,
) -> WorkflowResult:
    """Run the TF/IDF → K-means workflow on a prepared workload.

    Returns the full-scale-extrapolated :class:`WorkflowResult`.
    """
    workflow = build_tfidf_kmeans_workflow(
        mode=mode,
        wc_dict_kind=wc_dict_kind,
        transform_dict_kind=transform_dict_kind,
        max_iters=max_iters,
        costs=costs,
        scale=workload.scale,
    )
    scheduler = SimScheduler(paper_node(max(cores, workers)))
    return workflow.run(
        scheduler,
        workload.storage,
        inputs={"tfidf.corpus_prefix": workload.prefix},
        workers=workers,
    )
