"""Wall-clock benchmark: backends × worker counts on the real pipeline.

Unlike the virtual-time benchmarks under ``benchmarks/`` (which reproduce
the paper's figures deterministically), this harness measures *actual*
seconds on the host: it sweeps execution backends and worker counts over
the synthetic Mix corpus, runs the real fused TF/IDF → K-means pipeline,
and reports per-phase wall-clock times plus speedups against the
sequential backend. ``tools/bench_wallclock.py`` wraps it into a CLI that
writes ``BENCH_wallclock.json`` — the seed of the repo's performance
trajectory: every future perf PR reruns it and appends a comparable
record.

Every run also cross-checks that the operator output (TF/IDF matrix and
K-means assignments) is identical to the sequential backend's, so the
benchmark doubles as an end-to-end equivalence check on real hardware.
"""

from __future__ import annotations

import os
import platform
import sys
import time
from typing import Sequence

from repro.core.pipeline import RealRunResult, run_pipeline
from repro.exec.process import make_backend
from repro.ops.kmeans import KMeansOperator
from repro.ops.tfidf import TfIdfOperator
from repro.text.synth import MIX_PROFILE, NSF_ABSTRACTS_PROFILE, generate_corpus

__all__ = ["bench_wallclock", "DEFAULT_WORKER_SWEEP"]

_PROFILES = {"mix": MIX_PROFILE, "nsf-abstracts": NSF_ABSTRACTS_PROFILE}

#: Worker counts swept for the pooled backends.
DEFAULT_WORKER_SWEEP = (1, 2, 4)


def _matrices_equal(a: RealRunResult, b: RealRunResult) -> bool:
    ma, mb = a.tfidf.matrix, b.tfidf.matrix
    return (
        ma.n_rows == mb.n_rows
        and ma.n_cols == mb.n_cols
        and all(
            ra.indices == rb.indices and ra.values == rb.values
            for ra, rb in zip(ma.iter_rows(), mb.iter_rows())
        )
        and a.kmeans.assignments == b.kmeans.assignments
    )


def bench_wallclock(
    profile: str = "mix",
    scale: float = 0.01,
    backends: Sequence[str] = ("sequential", "threads", "processes"),
    workers: Sequence[int] = DEFAULT_WORKER_SWEEP,
    repeats: int = 1,
    seed: int = 0,
    kmeans_iters: int = 5,
) -> dict:
    """Sweep backends × workers; return the benchmark record.

    ``repeats`` re-runs each configuration and keeps the *minimum* time
    per phase (the standard noise filter for wall-clock benchmarks). The
    sequential backend anchors the sweep: it runs once (worker count is
    meaningless for it) and every other configuration reports a speedup
    against it.
    """
    if profile not in _PROFILES:
        raise ValueError(f"unknown profile {profile!r}")
    corpus = generate_corpus(_PROFILES[profile], scale=scale, seed=seed)

    def make_ops():
        return TfIdfOperator(), KMeansOperator(max_iters=kmeans_iters)

    runs: list[dict] = []
    reference: RealRunResult | None = None
    reference_phases: dict[str, float] = {}
    for backend_name in backends:
        sweep = (1,) if backend_name == "sequential" else tuple(workers)
        for n_workers in sweep:
            best: dict[str, float] | None = None
            total = None
            result = None
            for _ in range(max(1, repeats)):
                backend = make_backend(backend_name, n_workers)
                try:
                    tfidf, kmeans = make_ops()
                    start = time.perf_counter()
                    result = run_pipeline(
                        corpus, backend=backend, tfidf=tfidf, kmeans=kmeans
                    )
                    elapsed = time.perf_counter() - start
                finally:
                    backend.close()
                if best is None or elapsed < total:
                    best = dict(result.phase_seconds)
                    total = elapsed
            if reference is None:
                reference = result
                reference_phases = best
            runs.append(
                {
                    "backend": backend_name,
                    "workers": n_workers,
                    "phases": best,
                    "total_s": total,
                    "speedup_vs_sequential": (
                        sum(reference_phases.values()) / sum(best.values())
                        if reference_phases
                        else 1.0
                    ),
                    "output_identical": (
                        result is reference or _matrices_equal(result, reference)
                    ),
                }
            )

    return {
        "benchmark": "wallclock",
        "profile": profile,
        "scale": scale,
        "n_docs": len(corpus),
        "repeats": repeats,
        "kmeans_iters": kmeans_iters,
        "host": {
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "cpu_count": os.cpu_count(),
        },
        "runs": runs,
    }
