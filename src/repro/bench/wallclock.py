"""Wall-clock benchmarks: backends × workers, and read-worker sweeps.

Unlike the virtual-time benchmarks under ``benchmarks/`` (which reproduce
the paper's figures deterministically), this harness measures *actual*
seconds on the host. It has two modes:

* :func:`bench_wallclock` — sweeps execution backends and worker counts
  over the synthetic Mix corpus held in memory, running the real fused
  TF/IDF → K-means pipeline (PR 1's compute trajectory).
* :func:`bench_read_sweep` — writes the corpus to an on-disk directory
  and sweeps **read-worker counts** through the bounded-prefetch parallel
  reader (:mod:`repro.io.parallel_read`), measuring how much of the input
  phase hides behind compute — the paper's optimization #2 (§3.2).
* :func:`bench_ipc_sweep` — sweeps the process backend's shared-memory
  plane on/off × worker counts and records each run's full IPC-accounting
  snapshot (bytes pickled per phase, segments, broadcasts). On a 1-CPU
  host wall-clock deltas read as noise; the pickled-byte counters show
  the shm win unambiguously.
* :func:`bench_fault_recovery` — injects deterministic faults (transient
  exceptions, a worker crash, a poisoned task) into process-backend runs
  under a retry policy and measures the recovery bill: re-executed tasks,
  re-pickled bytes, pool restarts, quarantined documents, and the
  wall-clock overhead against a fault-free run with the same policy.
  Recovered runs must stay bit-identical to the fault-free baseline;
  quarantine runs must differ by exactly the quarantined documents.
* :func:`bench_plan` — runs the pipeline under the measured-cost
  adaptive planner (``plan="auto"``) against hard-coded fixed
  configurations, and the fused wc→transform path against the unfused
  one; the planned total must land within :data:`PLAN_TOLERANCE` of the
  best fixed total, and fusion must eliminate transform task-pickle
  bytes.
* :func:`bench_cache` — cold → warm → incremental triple through the
  phase-level result cache: the warm run must serve all three phases
  from disk bit-identically (zero operator recompute), and the
  incremental run (tail-edited + appended corpus) must recompute only
  the changed word-count shards while matching an uncached run on the
  modified corpus exactly.
* :func:`bench_oocore` — out-of-core tiled data plane: runs the same
  pipeline in fresh child processes (one per configuration, so each
  gets its own ``ru_maxrss`` high-water mark) first untiled, then under
  several memory budgets including budgets *smaller than the matrix*.
  Budgeted runs must stay bit-identical to the untiled reference
  (struct-packed output digest) and must keep the spill plane's
  ``peak_pinned_bytes`` under the budget.

``tools/bench_wallclock.py`` wraps these into a CLI that appends records
to ``BENCH_wallclock.json`` — the repo's performance trajectory: every
future perf PR reruns it and appends a comparable record. All modes
share one envelope (``benchmark``/``mode``/``host``/``config``/``runs``),
enforced by ``tools/validate_bench.py``.

Every run also cross-checks that the operator output (TF/IDF matrix and
K-means assignments) is identical to the baseline configuration's, so the
benchmark doubles as an end-to-end equivalence check on real hardware.
"""

from __future__ import annotations

import json
import os
import platform
import resource
import shutil
import subprocess
import sys
import tempfile
import time
from typing import Callable, Sequence

from repro.cache import DEFAULT_SHARD_DOCS, PipelineCache
from repro.core.pipeline import RealRunResult, run_pipeline
from repro.errors import BenchmarkError
from repro.exec.faultinject import FaultPlan, FaultSpec
from repro.exec.process import make_backend
from repro.exec.resilience import ResilienceConfig, RetryPolicy
from repro.exec.shm import shm_available
from repro.io.corpus_io import load_corpus, store_corpus
from repro.io.parallel_read import corpus_stream
from repro.io.storage import FsStorage
from repro.ops.kmeans import KMeansOperator
from repro.ops.tfidf import PHASE_TRANSFORM, TfIdfOperator
from repro.ops.wordcount import PHASE_INPUT_WC
from repro.plan import CalibrationStore, PhasePlan, RealPlan
from repro.text.corpus import Document
from repro.text.synth import MIX_PROFILE, NSF_ABSTRACTS_PROFILE, generate_corpus

__all__ = [
    "bench_wallclock",
    "bench_read_sweep",
    "bench_ipc_sweep",
    "bench_fault_recovery",
    "bench_plan",
    "bench_cache",
    "bench_oocore",
    "bench_serve",
    "BENCH_SCHEMA",
    "DEFAULT_OOCORE_FRACTIONS",
    "DEFAULT_WORKER_SWEEP",
    "DEFAULT_READ_WORKER_SWEEP",
    "PLAN_TOLERANCE",
]

_PROFILES = {"mix": MIX_PROFILE, "nsf-abstracts": NSF_ABSTRACTS_PROFILE}

#: Envelope schema version. 1 (implicit, historical records carry no
#: ``schema`` key): the original shape. 2: adds a required top-level
#: ``peak_rss_kb`` — the benchmarking process's ``ru_maxrss`` — so every
#: appended record carries its memory envelope alongside wall time.
BENCH_SCHEMA = 2

#: Memory budgets swept by :func:`bench_oocore`, as fractions of the
#: measured matrix footprint. Must include at least one fraction < 1 —
#: the whole point is a run whose budget cannot hold the matrix.
DEFAULT_OOCORE_FRACTIONS = (2.0, 0.5, 0.25)

#: Worker counts swept for the pooled backends.
DEFAULT_WORKER_SWEEP = (1, 2, 4)

#: Read-worker counts swept over the on-disk corpus (1 = serial input).
DEFAULT_READ_WORKER_SWEEP = (1, 2, 4, 8)


def _matrices_equal(a: RealRunResult, b: RealRunResult) -> bool:
    ma, mb = a.tfidf.matrix, b.tfidf.matrix
    return (
        ma.n_rows == mb.n_rows
        and ma.n_cols == mb.n_cols
        and all(
            ra.indices == rb.indices and ra.values == rb.values
            for ra, rb in zip(ma.iter_rows(), mb.iter_rows())
        )
        and a.kmeans.assignments == b.kmeans.assignments
    )


def _best_of(
    repeats: int, run_once: Callable[[], RealRunResult], label: str
) -> tuple[float, RealRunResult, dict[str, float]]:
    """Repeat a configuration; return the best run *with its own* result.

    The minimum total time is the standard noise filter for wall-clock
    benchmarks — but the recorded phases, output-equivalence result and
    reference must all come from that same best run, never be mixed
    across repeats. Pipeline failures surface as
    :class:`~repro.errors.BenchmarkError` naming the configuration.
    """
    best: tuple[float, RealRunResult, dict[str, float]] | None = None
    for _ in range(max(1, repeats)):
        try:
            start = time.perf_counter()
            result = run_once()
            elapsed = time.perf_counter() - start
        except BenchmarkError:
            raise
        except Exception as exc:
            raise BenchmarkError(f"pipeline failed on {label}: {exc}") from exc
        if best is None or elapsed < best[0]:
            best = (elapsed, result, dict(result.phase_seconds))
    assert best is not None  # repeats >= 1
    return best


def _floor_of(
    repeats: int, run_once: Callable[[], RealRunResult], label: str
) -> tuple[float, RealRunResult, dict[str, float], dict[str, float]]:
    """:func:`_best_of`, plus each phase's minimum across the repeats.

    Min-of-total needs one run where *every* phase is simultaneously
    fast — on a loaded 1-CPU host that almost never happens, so two
    identical configurations can read 30% apart at small scales. The
    per-phase floor converges much faster and is what the planned-vs-
    fixed tolerance gate compares; the best single run still supplies
    the recorded result (phases, output, IPC) so no fields mix repeats.
    """
    best: tuple[float, RealRunResult, dict[str, float]] | None = None
    floors: dict[str, float] = {}
    for _ in range(max(1, repeats)):
        total, result, phases = _best_of(1, run_once, label)
        if best is None or total < best[0]:
            best = (total, result, phases)
        for phase, value in phases.items():
            floors[phase] = min(value, floors.get(phase, value))
    return best[0], best[1], best[2], floors


def _host() -> dict:
    return {
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
    }


def _envelope(
    mode: str,
    profile: str,
    scale: float,
    n_docs: int,
    repeats: int,
    kmeans_iters: int,
    config: dict,
    runs: list[dict],
    **extras,
) -> dict:
    """The uniform record envelope every bench mode appends.

    All modes share ``benchmark="wallclock"`` and are distinguished by
    ``mode``; backend-side knobs live under ``config``; the sweep's
    measurements under ``runs``. ``tools/validate_bench.py`` enforces
    this shape on ``BENCH_wallclock.json``.
    """
    record = {
        "benchmark": "wallclock",
        "schema": BENCH_SCHEMA,
        "mode": mode,
        "profile": profile,
        "scale": scale,
        "n_docs": n_docs,
        "repeats": repeats,
        "kmeans_iters": kmeans_iters,
        "host": _host(),
        # ru_maxrss is kB on Linux; it is the *harness process's* peak —
        # per-configuration peaks (child processes) live in each run.
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "config": config,
        "runs": runs,
    }
    record.update(extras)
    return record


def _run_fields(result: RealRunResult) -> dict:
    """Shared measurement fields for one benchmark run entry.

    Built on :meth:`~repro.core.pipeline.RealRunResult.to_record` — the
    same serializer behind the CLI summary and the run ledger — so a
    phase timing, IPC counter or utilization figure means the same thing
    in every artifact. Bench entries keep the flattened
    ``utilization`` / ``straggler_ratio`` maps that the trajectory
    plots read.
    """
    record = result.to_record()
    fields: dict = {"phases": record["phases"], "ipc": record["ipc"]}
    summary = record["trace"]
    if summary is not None:
        fields["trace"] = summary
        fields["utilization"] = {
            phase: stats["utilization"] for phase, stats in summary.items()
        }
        fields["straggler_ratio"] = {
            phase: stats["straggler_ratio"] for phase, stats in summary.items()
        }
    return fields


def bench_wallclock(
    profile: str = "mix",
    scale: float = 0.01,
    backends: Sequence[str] = ("sequential", "threads", "processes"),
    workers: Sequence[int] = DEFAULT_WORKER_SWEEP,
    repeats: int = 1,
    seed: int = 0,
    kmeans_iters: int = 5,
    trace: bool = False,
    ledger: str | None = None,
) -> dict:
    """Sweep backends × workers; return the benchmark record.

    ``repeats`` re-runs each configuration and keeps the *minimum*-time
    run (phases, output and all from that one run). The sequential
    backend anchors the sweep: it runs once (worker count is meaningless
    for it) and every other configuration reports a speedup against it.
    ``trace=True`` runs every configuration with span tracing and embeds
    the per-phase utilization/straggler summary in each record (the
    timings then include the small tracing overhead — keep it off when
    the point is the cleanest possible wall clock).
    ``ledger`` appends every repeat of every configuration to a run
    ledger directory (``docs/ledger.md``), seeding ``repro analytics``
    with a dense duration history in one sweep.
    """
    if profile not in _PROFILES:
        raise ValueError(f"unknown profile {profile!r}")
    corpus = generate_corpus(_PROFILES[profile], scale=scale, seed=seed)

    runs: list[dict] = []
    reference: RealRunResult | None = None
    reference_total: float | None = None
    for backend_name in backends:
        sweep = (1,) if backend_name == "sequential" else tuple(workers)
        for n_workers in sweep:
            label = f"backend {backend_name!r} with {n_workers} worker(s)"

            def run_once() -> RealRunResult:
                backend = make_backend(backend_name, n_workers)
                try:
                    return run_pipeline(
                        corpus,
                        backend=backend,
                        tfidf=TfIdfOperator(),
                        kmeans=KMeansOperator(max_iters=kmeans_iters),
                        trace=trace,
                        ledger=ledger,
                    )
                finally:
                    backend.close()

            total, result, phases = _best_of(repeats, run_once, label)
            if reference is None:
                reference, reference_total = result, total
            runs.append(
                {
                    "backend": backend_name,
                    "workers": n_workers,
                    "total_s": total,
                    "speedup_vs_sequential": (
                        reference_total / total if reference_total else 1.0
                    ),
                    "output_identical": (
                        result is reference or _matrices_equal(result, reference)
                    ),
                    **_run_fields(result),
                }
            )

    return _envelope(
        "backends", profile, scale, len(corpus), repeats, kmeans_iters,
        config={
            "backends": list(backends),
            "workers": list(workers),
            "trace": trace,
            "shm_available": shm_available(),
        },
        runs=runs,
    )


def bench_read_sweep(
    profile: str = "mix",
    scale: float = 0.01,
    read_workers: Sequence[int] = DEFAULT_READ_WORKER_SWEEP,
    prefetch: int | None = None,
    backend: str = "processes",
    workers: int | None = None,
    repeats: int = 1,
    seed: int = 0,
    kmeans_iters: int = 5,
    corpus_dir: str | None = None,
) -> dict:
    """Sweep read-worker counts over an on-disk corpus (paper §3.2).

    The synthetic corpus is written to ``corpus_dir`` (a temporary
    directory when ``None``, removed afterwards); each configuration then
    runs the fused pipeline with documents streamed through the parallel
    reader. ``read_workers=1`` is the serial-input baseline the other
    counts report a speedup against; ``backend``/``workers`` fix the
    compute side (default: one process per core) so only the input stage
    varies. Output must stay bit-identical across read-worker counts.
    """
    if profile not in _PROFILES:
        raise ValueError(f"unknown profile {profile!r}")
    if workers is None:
        workers = max(1, os.cpu_count() or 1)
    corpus = generate_corpus(_PROFILES[profile], scale=scale, seed=seed)

    n_docs = len(corpus)
    own_dir = corpus_dir is None
    root = corpus_dir or tempfile.mkdtemp(prefix="repro-read-bench-")
    try:
        storage = FsStorage(root)
        store_corpus(storage, corpus)
        del corpus  # the pipeline must read from disk, not memory

        runs: list[dict] = []
        reference: RealRunResult | None = None
        reference_total: float | None = None
        for n_read in read_workers:
            label = (
                f"read_workers={n_read} (backend {backend!r}, "
                f"{workers} worker(s))"
            )

            def run_once() -> RealRunResult:
                compute = make_backend(backend, workers)
                try:
                    return run_pipeline(
                        corpus_stream(
                            storage, workers=n_read, prefetch=prefetch
                        ),
                        backend=compute,
                        tfidf=TfIdfOperator(),
                        kmeans=KMeansOperator(max_iters=kmeans_iters),
                    )
                finally:
                    compute.close()

            total, result, phases = _best_of(repeats, run_once, label)
            if reference is None:
                reference, reference_total = result, total
            runs.append(
                {
                    "read_workers": n_read,
                    "total_s": total,
                    "read_s": phases.get("read", 0.0),
                    "speedup_vs_serial_input": (
                        reference_total / total if reference_total else 1.0
                    ),
                    "output_identical": (
                        result is reference or _matrices_equal(result, reference)
                    ),
                    **_run_fields(result),
                }
            )
    finally:
        if own_dir:
            shutil.rmtree(root, ignore_errors=True)

    return _envelope(
        "read", profile, scale, n_docs, repeats, kmeans_iters,
        config={
            "backend": backend,
            "workers": workers,
            "prefetch": prefetch,
            "read_workers": list(read_workers),
            "shm_available": shm_available(),
        },
        runs=runs,
    )


def bench_ipc_sweep(
    profile: str = "mix",
    scale: float = 0.01,
    workers: Sequence[int] = DEFAULT_WORKER_SWEEP,
    shm_modes: Sequence[bool] = (False, True),
    repeats: int = 1,
    seed: int = 0,
    kmeans_iters: int = 5,
) -> dict:
    """Sweep the shared-memory plane on/off × worker counts.

    Each run records wall-clock phases *and* the IPC-accounting snapshot
    (:attr:`~repro.core.pipeline.RealRunResult.ipc`) — per-phase tasks,
    bytes pickled each way, segments and broadcasts — plus the derived
    ``kmeans_task_bytes_per_iter``, the number the tentpole targets:
    with shm it is a few hundred token bytes regardless of block count,
    without it one dense K×V centroid copy per block per iteration.
    Runs are span-traced, so each record also carries the per-phase
    ``utilization`` / ``straggler_ratio`` summary — the IPC byte counters
    say what crossed the process boundary, the trace says whether the
    workers were actually busy. Output must stay bit-identical shm
    on/off (and traced runs use the same code path as untraced ones).
    """
    if profile not in _PROFILES:
        raise ValueError(f"unknown profile {profile!r}")
    if not shm_available():
        shm_modes = tuple(mode for mode in shm_modes if not mode)
    corpus = generate_corpus(_PROFILES[profile], scale=scale, seed=seed)

    runs: list[dict] = []
    reference: RealRunResult | None = None
    for use_shm in shm_modes:
        for n_workers in workers:
            label = f"shm={use_shm} with {n_workers} process worker(s)"

            def run_once() -> RealRunResult:
                backend = make_backend("processes", n_workers, shm=use_shm)
                try:
                    return run_pipeline(
                        corpus,
                        backend=backend,
                        tfidf=TfIdfOperator(),
                        kmeans=KMeansOperator(max_iters=kmeans_iters),
                        trace=True,
                    )
                finally:
                    backend.close()

            total, result, phases = _best_of(repeats, run_once, label)
            if reference is None:
                reference = result
            kmeans_ipc = (result.ipc or {}).get("phases", {}).get("kmeans", {})
            runs.append(
                {
                    "shm": use_shm,
                    "workers": n_workers,
                    "total_s": total,
                    "kmeans_task_bytes_per_iter": (
                        kmeans_ipc.get("task_pickle_bytes", 0)
                        / max(1, result.kmeans.n_iters)
                    ),
                    "output_identical": (
                        result is reference or _matrices_equal(result, reference)
                    ),
                    **_run_fields(result),
                }
            )

    return _envelope(
        "ipc", profile, scale, len(corpus), repeats, kmeans_iters,
        config={
            "workers": list(workers),
            "shm_modes": list(shm_modes),
            "shm_available": shm_available(),
        },
        runs=runs,
    )


#: Counters that make up one run's recovery bill (from ``PhaseIpc``).
_RECOVERY_KEYS = (
    "retries", "retry_pickle_bytes", "timeouts", "pool_restarts", "quarantined",
)


def _rows_equal_minus(
    result: RealRunResult, reference: RealRunResult, dropped: set[int]
) -> bool:
    """True when ``result``'s matrix is ``reference``'s minus ``dropped`` rows."""
    ref_rows = [
        row
        for index, row in enumerate(reference.tfidf.matrix.iter_rows())
        if index not in dropped
    ]
    rows = list(result.tfidf.matrix.iter_rows())
    return len(rows) == len(ref_rows) and all(
        a.indices == b.indices and a.values == b.values
        for a, b in zip(rows, ref_rows)
    )


def bench_fault_recovery(
    profile: str = "mix",
    scale: float = 0.01,
    workers: int = 2,
    repeats: int = 1,
    seed: int = 0,
    kmeans_iters: int = 5,
    shm: bool | None = None,
    max_attempts: int = 3,
) -> dict:
    """Measure the cost of surviving injected faults on the process backend.

    Four scenarios run the fused pipeline under the same
    :class:`~repro.exec.resilience.RetryPolicy`:

    * ``baseline`` — no faults; the reference output and wall clock (also
      shows the hardened code path's overhead is paid only when armed).
    * ``transient-errors`` — one planned exception in phase 1 and one in
      the transform; both must be absorbed by retries.
    * ``worker-crash`` — a worker hard-exits mid-phase; the pool is
      respawned and the in-flight chunks replayed.
    * ``poison-quarantine`` — a transform task fails on *every* attempt;
      under ``on_poison="quarantine"`` its documents are isolated and the
      run completes without them.

    Recovered runs must be bit-identical to ``baseline``; the quarantine
    run must differ by exactly its quarantined rows. Each record carries
    the recovery counters (re-executions, re-pickled bytes, pool
    restarts, quarantined units) and the wall-clock overhead ratio.
    """
    if profile not in _PROFILES:
        raise ValueError(f"unknown profile {profile!r}")
    corpus = generate_corpus(_PROFILES[profile], scale=scale, seed=seed)

    retry = RetryPolicy(max_attempts=max_attempts, backoff_base_s=0.0)
    cfg = ResilienceConfig(retry=retry)
    cfg_quarantine = ResilienceConfig(retry=retry, on_poison="quarantine")
    scenarios: list[tuple[str, Callable[[str], FaultPlan] | None, ResilienceConfig]] = [
        ("baseline", None, cfg),
        (
            "transient-errors",
            lambda state: FaultPlan(
                [
                    FaultSpec(PHASE_INPUT_WC, 1, "raise"),
                    FaultSpec(PHASE_TRANSFORM, 0, "raise"),
                ],
                state,
            ),
            cfg,
        ),
        (
            "worker-crash",
            lambda state: FaultPlan([FaultSpec(PHASE_INPUT_WC, 1, "exit")], state),
            cfg,
        ),
        (
            "poison-quarantine",
            lambda state: FaultPlan(
                [FaultSpec(PHASE_TRANSFORM, 0, "raise", times=1_000_000)], state
            ),
            cfg_quarantine,
        ),
    ]

    runs: list[dict] = []
    reference: RealRunResult | None = None
    reference_total: float | None = None
    for name, make_plan, config in scenarios:
        label = f"fault scenario {name!r} ({workers} process worker(s))"

        def run_once() -> RealRunResult:
            state = tempfile.mkdtemp(prefix="repro-faults-")
            plan = make_plan(state) if make_plan is not None else None
            backend = make_backend("processes", workers, shm=shm, resilience=config)
            if plan is not None:
                backend.fault_plan = plan
            try:
                result = run_pipeline(
                    corpus,
                    backend=backend,
                    tfidf=TfIdfOperator(),
                    kmeans=KMeansOperator(max_iters=kmeans_iters),
                    trace=True,
                )
                result.faults_fired = (  # type: ignore[attr-defined]
                    plan.total_fired() if plan is not None else 0
                )
                return result
            finally:
                backend.close()
                shutil.rmtree(state, ignore_errors=True)

        total, result, phases = _best_of(repeats, run_once, label)
        if reference is None:
            reference, reference_total = result, total
        quarantining = config.quarantining
        dropped = set(result.quarantine.doc_ids) if result.quarantine else set()
        identical = result is reference or _matrices_equal(result, reference)
        if quarantining and dropped:
            ok = _rows_equal_minus(result, reference, dropped)
        else:
            ok = identical
        ipc_total = (result.ipc or {}).get("total", {})
        runs.append(
            {
                "scenario": name,
                "workers": workers,
                "total_s": total,
                "overhead_vs_baseline": (
                    total / reference_total if reference_total else 1.0
                ),
                "faults_fired": getattr(result, "faults_fired", 0),
                "recovery": {key: ipc_total.get(key, 0) for key in _RECOVERY_KEYS},
                "retried_spans": (
                    sum(1 for span in result.trace.spans if span.attempt > 1)
                    if result.trace is not None
                    else 0
                ),
                "on_poison": config.on_poison,
                "quarantined_docs": sorted(dropped),
                "output_identical": identical,
                "ok": ok,
                **_run_fields(result),
            }
        )

    return _envelope(
        "faults", profile, scale, len(corpus), repeats, kmeans_iters,
        config={
            "workers": workers,
            "max_attempts": max_attempts,
            "shm": shm,
            "shm_available": shm_available(),
        },
        runs=runs,
    )


#: Planned total may exceed the best fixed configuration's by this much
#: before ``--mode plan`` fails (wall-clock noise allowance).
PLAN_TOLERANCE = 0.10


def bench_plan(
    profile: str = "mix",
    scale: float = 0.01,
    repeats: int = 1,
    seed: int = 0,
    kmeans_iters: int = 5,
    calibration: CalibrationStore | str | None = None,
    process_workers: int | None = None,
    tolerance: float = PLAN_TOLERANCE,
) -> dict:
    """Planned execution vs fixed configurations, plus the fusion bill.

    Three comparisons in one record:

    * **planned vs fixed** — the fused pipeline runs on two hard-coded
      configurations (sequential, and the process backend at
      ``process_workers``) and once under ``plan="auto"``; the planned
      run must land within ``tolerance`` of the best fixed
      configuration. The gate compares each configuration's *phase
      floor* — the sum over phases of the minimum time across repeats —
      because phase times are measured identically on both paths (the
      outer wall clock also bills planning time and pool teardown) and
      per-phase minima converge on a noisy host where min-of-total does
      not. Planning time is recorded separately and amortizes across
      runs with a persisted calibration store; all totals land in the
      record.
    * **fused vs unfused IPC** — where shm is available, the fused
      wc→transform path runs against the unfused one on an identical
      ``processes-1+shm`` configuration; the fused transform must ship
      measurably fewer task-pickle bytes (worker-resident intermediates).
    * **equivalence** — every run's output must be bit-identical to the
      sequential reference (minus nothing; no quarantine here).

    Each run entry carries ``ok``; the CLI exits nonzero if any is false.
    """
    if profile not in _PROFILES:
        raise ValueError(f"unknown profile {profile!r}")
    if process_workers is None:
        process_workers = max(1, os.cpu_count() or 1)
    # The tolerance check is a ratio of two small time measurements; a
    # single sample of each is far too noisy to gate CI on.
    repeats = max(3, repeats)
    corpus = generate_corpus(_PROFILES[profile], scale=scale, seed=seed)
    if isinstance(calibration, CalibrationStore):
        store = calibration
    else:
        store = CalibrationStore.load_or_probe(calibration, corpus)

    # Pinned operators across every run: the comparison is about
    # execution configuration, not dictionary choice.
    def operators() -> tuple[TfIdfOperator, KMeansOperator]:
        return TfIdfOperator(), KMeansOperator(max_iters=kmeans_iters)

    runs: list[dict] = []
    reference: RealRunResult | None = None

    def fixed_run(backend_name: str, workers: int, use_shm: bool | None):
        def run_once() -> RealRunResult:
            backend = make_backend(backend_name, workers, shm=use_shm)
            tfidf, kmeans = operators()
            try:
                return run_pipeline(
                    corpus, backend=backend, tfidf=tfidf, kmeans=kmeans
                )
            finally:
                backend.close()

        return run_once

    # Untimed warm-up: the first pipeline run pays one-off costs (imports,
    # allocator growth, branch warm-up) that would bias whichever
    # configuration happens to go first in a planned-vs-fixed comparison.
    fixed_run("sequential", 1, None)()

    fixed_totals: dict[str, float] = {}
    fixed_phase_totals: dict[str, float] = {}
    for label, backend_name, workers in (
        ("sequential", "sequential", 1),
        (f"processes-{process_workers}", "processes", process_workers),
    ):
        total, result, phases, floors = _floor_of(
            repeats, fixed_run(backend_name, workers, None), label
        )
        if reference is None:
            reference = result
        identical = result is reference or _matrices_equal(result, reference)
        fixed_totals[label] = total
        fixed_phase_totals[label] = sum(floors.values())
        runs.append(
            {
                "config": label,
                "planned": False,
                "total_s": total,
                "output_identical": identical,
                "ok": identical,
                **_run_fields(result),
            }
        )

    def planned_once() -> RealRunResult:
        tfidf, kmeans = operators()
        return run_pipeline(
            corpus, plan="auto", calibration=store, tfidf=tfidf, kmeans=kmeans
        )

    planned_total, planned, planned_phases, planned_floors = _floor_of(
        repeats, planned_once, "planned (auto)"
    )
    planned_phase_total = sum(planned_floors.values())
    best_fixed = min(fixed_phase_totals, key=fixed_phase_totals.get)
    within = (
        planned_phase_total <= (1.0 + tolerance) * fixed_phase_totals[best_fixed]
    )
    identical = _matrices_equal(planned, reference)
    runs.append(
        {
            "config": "planned",
            "planned": True,
            "plan": planned.plan.summary_dict(),
            "plan_seconds": planned.plan_seconds,
            "total_s": planned_total,
            "output_identical": identical,
            "ok": identical and within,
            **_run_fields(planned),
        }
    )
    planned_vs_fixed = {
        "planned_total_s": planned_total,
        "planned_phase_floor_s": planned_phase_total,
        "best_fixed_config": best_fixed,
        "best_fixed_total_s": fixed_totals[best_fixed],
        "best_fixed_phase_floor_s": fixed_phase_totals[best_fixed],
        "ratio": planned_phase_total / max(fixed_phase_totals[best_fixed], 1e-9),
        "tolerance": tolerance,
        "within_tolerance": within,
    }

    fusion = None
    if shm_available():
        unfused_total, unfused, _ = _best_of(
            repeats, fixed_run("processes", 1, True), "processes-1+shm (unfused)"
        )
        unfused_bytes = unfused.ipc["phases"][PHASE_TRANSFORM][
            "task_pickle_bytes"
        ]

        fused_plan = RealPlan(
            phases={
                PHASE_INPUT_WC: PhasePlan(PHASE_INPUT_WC, "processes", 1, True),
                PHASE_TRANSFORM: PhasePlan(
                    PHASE_TRANSFORM, "processes", 1, True,
                    fused_with_previous=True,
                ),
                "kmeans": PhasePlan("kmeans", "processes", 1, True),
            },
            calibration=store.describe(),
            n_docs=len(corpus),
        )

        def fused_once() -> RealRunResult:
            tfidf, kmeans = operators()
            return run_pipeline(
                corpus, plan=fused_plan, tfidf=tfidf, kmeans=kmeans
            )

        fused_total, fused, _ = _best_of(
            repeats, fused_once, "processes-1+shm (fused)"
        )
        fused_bytes = fused.ipc["phases"][PHASE_TRANSFORM]["task_pickle_bytes"]
        fused_identical = _matrices_equal(fused, reference)
        unfused_identical = _matrices_equal(unfused, reference)
        fusion = {
            "config": "processes-1+shm",
            "unfused_transform_task_bytes": unfused_bytes,
            "fused_transform_task_bytes": fused_bytes,
            "eliminated_bytes": unfused_bytes - fused_bytes,
            "unfused_total_s": unfused_total,
            "fused_total_s": fused_total,
            "ok": fused_bytes < unfused_bytes,
        }
        runs.append(
            {
                "config": "processes-1+shm (unfused)",
                "planned": False,
                "total_s": unfused_total,
                "output_identical": unfused_identical,
                "ok": unfused_identical,
                **_run_fields(unfused),
            }
        )
        runs.append(
            {
                "config": "processes-1+shm (fused)",
                "planned": True,
                "total_s": fused_total,
                "output_identical": fused_identical,
                "ok": fused_identical and fused_bytes < unfused_bytes,
                **_run_fields(fused),
            }
        )

    return _envelope(
        "plan", profile, scale, len(corpus), repeats, kmeans_iters,
        config={
            "process_workers": process_workers,
            "tolerance": tolerance,
            "calibration": store.describe(),
            "shm_available": shm_available(),
        },
        runs=runs,
        planned_vs_fixed=planned_vs_fixed,
        fusion=fusion,
    )


def _results_identical(a: RealRunResult, b: RealRunResult) -> bool:
    """Bit-identity including the raw centroid bytes (stricter than
    :func:`_matrices_equal`, which caching must not be allowed to relax)."""
    return (
        _matrices_equal(a, b)
        and a.kmeans.centroids.tobytes() == b.kmeans.centroids.tobytes()
        and a.tfidf.vocabulary == b.tfidf.vocabulary
    )


def bench_cache(
    profile: str = "mix",
    scale: float = 0.01,
    repeats: int = 1,
    seed: int = 0,
    kmeans_iters: int = 5,
    cache_dir: str | None = None,
) -> dict:
    """Cold → warm → incremental triple through the phase-level cache.

    Four scenarios per repeat, all sequential (the cache is proven
    backend-invariant by the equivalence tests; the benchmark measures
    serving, not parallelism):

    * ``uncached`` — no cache; the reference output and wall clock.
    * ``cold`` — empty cache directory: every phase must miss, compute,
      and store (the recorded overhead of populating the cache).
    * ``warm`` — same corpus, same cache: all three phases must be
      served from disk (3 hits, 0 misses — zero operator recompute)
      bit-identically, with bytes/seconds-saved from the accounting.
    * ``incremental`` — the corpus is tail-edited (last document's text
      amended) and extended with appended documents, then run against
      the warm cache: the output must match an uncached run on the
      modified corpus exactly, and — when the corpus spans more than one
      content shard — at least one unchanged word-count shard must be
      reused rather than recomputed.

    ``repeats`` re-runs the whole triple against a fresh cache directory
    and keeps the triple with the fastest warm run (the headline
    number); a triple's scenarios are never mixed across repeats.
    Each entry carries ``ok``; the CLI exits nonzero if any is false.
    """
    if profile not in _PROFILES:
        raise ValueError(f"unknown profile {profile!r}")
    corpus = generate_corpus(_PROFILES[profile], scale=scale, seed=seed)
    base = list(corpus)
    if not base:
        raise BenchmarkError(f"empty corpus at scale {scale}")

    tail = base[-1]
    modified = base[:-1] + [
        Document(
            doc_id=tail.doc_id, name=tail.name,
            text=tail.text + " amended benchmark tail",
        )
    ]
    for i, doc in enumerate(base[: min(8, len(base))]):
        modified.append(
            Document(
                doc_id=len(modified), name=f"added-{i:06d}", text=doc.text
            )
        )

    def run(docs, cache: PipelineCache | None) -> RealRunResult:
        return run_pipeline(
            docs,
            tfidf=TfIdfOperator(),
            kmeans=KMeansOperator(max_iters=kmeans_iters),
            cache=cache,
        )

    def timed(docs, cache, label):
        try:
            start = time.perf_counter()
            result = run(docs, cache)
            return time.perf_counter() - start, result
        except BenchmarkError:
            raise
        except Exception as exc:
            raise BenchmarkError(f"pipeline failed on {label}: {exc}") from exc

    # Deterministic outputs: the uncached references run once, outside
    # the repeat loop.
    uncached_s, reference = timed(base, None, "uncached")
    incr_ref_s, incr_reference = timed(modified, None, "uncached (modified)")

    best: dict | None = None
    for _ in range(max(1, repeats)):
        own_dir = cache_dir is None
        root = cache_dir or tempfile.mkdtemp(prefix="repro-cache-bench-")
        try:
            if not own_dir:
                # A triple must start cold even on a caller-kept directory.
                shutil.rmtree(root, ignore_errors=True)
            cache = PipelineCache(root)
            cold_s, cold = timed(base, cache, "cold cache run")
            warm_s, warm = timed(base, cache, "warm cache run")
            incr_s, incr = timed(modified, cache, "incremental cache run")
        finally:
            if own_dir:
                shutil.rmtree(root, ignore_errors=True)
        if best is None or warm_s < best["warm_s"]:
            best = {
                "cold_s": cold_s, "cold": cold,
                "warm_s": warm_s, "warm": warm,
                "incr_s": incr_s, "incr": incr,
            }
    assert best is not None

    cold, warm, incr = best["cold"], best["warm"], best["incr"]
    cold_c, warm_c, incr_c = cold.cache, warm.cache, incr.cache
    cold_ok = (
        _results_identical(cold, reference)
        and cold_c["misses"] == 3
        and cold_c["hits"] == 0
        and cold_c["stored"] > 0
    )
    warm_ok = (
        _results_identical(warm, reference)
        and warm_c["hits"] == 3
        and warm_c["misses"] == 0
    )
    multi_shard = len(base) > DEFAULT_SHARD_DOCS
    incr_identical = _results_identical(incr, incr_reference)
    incr_ok = incr_identical and (
        incr_c["phases"][PHASE_INPUT_WC]["shard_hits"] > 0
        if multi_shard
        else True
    )
    runs = [
        {
            "scenario": "uncached",
            "total_s": uncached_s,
            "phases": dict(reference.phase_seconds),
            "output_identical": True,
            "ok": True,
        },
        {
            "scenario": "cold",
            "total_s": best["cold_s"],
            "phases": dict(cold.phase_seconds),
            "cache": cold_c,
            "output_identical": _results_identical(cold, reference),
            "ok": cold_ok,
        },
        {
            "scenario": "warm",
            "total_s": best["warm_s"],
            "phases": dict(warm.phase_seconds),
            "cache": warm_c,
            "output_identical": _results_identical(warm, reference),
            "ok": warm_ok,
        },
        {
            "scenario": "incremental",
            "total_s": best["incr_s"],
            "phases": dict(incr.phase_seconds),
            "cache": incr_c,
            "uncached_total_s": incr_ref_s,
            "wc_shard_hits": incr_c["phases"][PHASE_INPUT_WC]["shard_hits"],
            "output_identical": incr_identical,
            "ok": incr_ok,
        },
    ]
    return _envelope(
        "cache", profile, scale, len(base), repeats, kmeans_iters,
        config={
            "shard_docs": DEFAULT_SHARD_DOCS,
            "modified_docs": len(modified),
            "multi_shard": multi_shard,
        },
        runs=runs,
        cache_summary={
            "warm_speedup_vs_uncached": uncached_s / max(best["warm_s"], 1e-9),
            "warm_bytes_served": warm_c["bytes_saved"],
            "warm_seconds_saved": warm_c["seconds_saved"],
            "cold_store_overhead_s": best["cold_s"] - uncached_s,
        },
    )

# -- out-of-core tiled execution ---------------------------------------------------


def _oocore_child(config: dict, label: str) -> dict:
    """Run one pipeline configuration in a fresh child process.

    A child per configuration is not optional: ``ru_maxrss`` is a
    process-lifetime high-water mark, so an in-process untiled reference
    would inflate every later budgeted reading. The child regenerates the
    corpus deterministically from (profile, scale, seed) and reports its
    output digest plus memory envelope as one JSON line.
    """
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root + os.pathsep + existing if existing else src_root
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench.oocore_child", json.dumps(config)],
        capture_output=True,
        text=True,
        env=env,
    )
    if proc.returncode != 0:
        tail = proc.stderr.strip()[-500:]
        raise BenchmarkError(f"oocore child failed on {label}: {tail}")
    try:
        return json.loads(proc.stdout.strip().splitlines()[-1])
    except (ValueError, IndexError) as exc:
        raise BenchmarkError(f"oocore child produced no JSON on {label}") from exc


def _oocore_best(repeats: int, config: dict, label: str) -> dict:
    best: dict | None = None
    for _ in range(max(1, repeats)):
        out = _oocore_child(config, label)
        if best is None or out["total_s"] < best["total_s"]:
            best = out
    assert best is not None
    return best


def bench_oocore(
    profile: str = "mix",
    scale: float = 0.05,
    repeats: int = 1,
    seed: int = 0,
    kmeans_iters: int = 3,
    budget_fractions: Sequence[float] = DEFAULT_OOCORE_FRACTIONS,
) -> dict:
    """Bounded-memory execution against an untiled reference.

    One child process runs the pipeline untiled and supplies the
    reference digest and the measured matrix footprint; one child per
    budget fraction then reruns it with ``memory_budget = fraction *
    matrix_bytes``. Two hard gates, both raising
    :class:`~repro.errors.BenchmarkError` rather than recording a bad
    run:

    * every budgeted run's output digest equals the reference — tiling
      is a data-plane change, never a result change;
    * every budgeted run kept ``tiles.peak_pinned_bytes <= budget`` —
      the spill plane's deterministic bounded-memory witness.

    ``budget_fractions`` must include at least one value < 1 so the
    record always contains a run whose budget cannot hold the matrix.
    """
    if profile not in _PROFILES:
        raise BenchmarkError(f"unknown profile {profile!r}")
    fractions = [float(f) for f in budget_fractions]
    if not fractions:
        raise BenchmarkError("budget_fractions must not be empty")
    if min(fractions) >= 1.0:
        raise BenchmarkError(
            "budget_fractions must include a fraction < 1 (a budget that "
            f"cannot hold the matrix); got {fractions}"
        )
    base = {
        "profile": profile,
        "scale": scale,
        "seed": seed,
        "kmeans_iters": kmeans_iters,
        "backend": "sequential",
        "workers": 1,
    }

    ref = _oocore_best(repeats, base, "oocore untiled reference")
    matrix_bytes = int(ref["matrix_bytes"])
    runs = [
        {
            "label": "untiled",
            "memory_budget": None,
            "budget_fraction": None,
            "total_s": ref["total_s"],
            "phases": ref["phases"],
            "peak_rss_kb": ref["peak_rss_kb"],
            "vm_peak_kb": ref["vm_peak_kb"],
            "digest": ref["digest"],
            "tiles": None,
            "output_identical": True,
            "pinned_under_budget": True,
            "ok": True,
        }
    ]
    for fraction in fractions:
        budget = max(1, int(matrix_bytes * fraction))
        label = f"oocore budget={budget} ({fraction:g}x matrix)"
        out = _oocore_best(repeats, {**base, "memory_budget": budget}, label)
        tiles = out.get("tiles")
        identical = out["digest"] == ref["digest"]
        if not identical:
            raise BenchmarkError(f"output diverged from untiled reference on {label}")
        if tiles is None:
            raise BenchmarkError(f"budgeted run reported no tile stats on {label}")
        pinned_ok = int(tiles["peak_pinned_bytes"]) <= budget
        if not pinned_ok:
            raise BenchmarkError(
                f"peak_pinned_bytes {tiles['peak_pinned_bytes']} exceeded "
                f"budget {budget} on {label}"
            )
        runs.append(
            {
                "label": f"budget-{fraction:g}x",
                "memory_budget": budget,
                "budget_fraction": fraction,
                "total_s": out["total_s"],
                "phases": out["phases"],
                "peak_rss_kb": out["peak_rss_kb"],
                "vm_peak_kb": out["vm_peak_kb"],
                "digest": out["digest"],
                "tiles": tiles,
                "output_identical": identical,
                "pinned_under_budget": pinned_ok,
                "ok": identical and pinned_ok,
            }
        )
    return _envelope(
        "oocore", profile, scale, int(ref["n_docs"]), repeats, kmeans_iters,
        config={
            "backend": "sequential",
            "workers": 1,
            "seed": seed,
            "budget_fractions": fractions,
        },
        runs=runs,
        oocore_summary={
            "matrix_bytes": matrix_bytes,
            "reference_digest": ref["digest"],
            "reference_peak_rss_kb": ref["peak_rss_kb"],
            "min_budget_fraction": min(fractions),
            "all_identical": all(r["output_identical"] for r in runs),
            "all_under_budget": all(r["pinned_under_budget"] for r in runs),
        },
    )


# -- serve: pipeline-as-a-service under load -------------------------------------


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted, non-empty list."""
    index = min(
        len(sorted_values) - 1,
        max(0, int(round(fraction * (len(sorted_values) - 1)))),
    )
    return sorted_values[index]


def _serve_daemon(
    state: str, args: list[str], *, kill_at: str | None = None,
    timeout_s: float = 300.0,
) -> int:
    """Run one daemon incarnation to completion; returns its exit code.

    The daemon runs with ``--idle-exit`` so it drains the pre-submitted
    load and exits on its own; ``kill_at`` arms the deterministic crash
    hook (``REPRO_SERVE_KILL_AT``) for the fault-injected scenario.
    """
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root + os.pathsep + existing if existing else src_root
    )
    if kill_at is not None:
        env["REPRO_SERVE_KILL_AT"] = kill_at
    else:
        env.pop("REPRO_SERVE_KILL_AT", None)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "run", "--state", state]
        + args,
        capture_output=True,
        text=True,
        env=env,
        timeout=timeout_s,
    )
    if proc.returncode not in (0, 86):
        tail = proc.stderr.strip()[-500:]
        raise BenchmarkError(
            f"serve daemon exited {proc.returncode}: {tail}"
        )
    return proc.returncode


def _serve_scenario_stats(state: str, job_ids: list[str]) -> dict:
    """Fold the journal into the scenario's load-test measurements."""
    from repro.serve.journal import read_journal, replay

    records, problems = read_journal(state)
    views = replay(records)
    submitted: dict[str, float] = {}
    done: dict[str, float] = {}
    done_counts: dict[str, int] = {}
    for record in records:
        if record.get("kind") != "job":
            continue
        job_id = record["job_id"]
        if record["event"] == "submitted" and job_id not in submitted:
            submitted[job_id] = record["ts"]
        if record["event"] == "done":
            done[job_id] = record["ts"]
            done_counts[job_id] = done_counts.get(job_id, 0) + 1
    latencies = sorted(
        done[job_id] - submitted[job_id]
        for job_id in job_ids
        if job_id in done and job_id in submitted
    )
    states = {job_id: views[job_id].state if job_id in views else "lost"
              for job_id in job_ids}
    span_s = (
        max(done.values()) - min(submitted.values())
        if done and submitted else 0.0
    )
    return {
        "jobs": len(job_ids),
        "done": sum(1 for s in states.values() if s == "done"),
        "failed": sum(1 for s in states.values() if s == "failed"),
        "shed": sum(1 for s in states.values() if s == "shed"),
        "lost": sum(1 for s in states.values() if s == "lost"),
        "double_completed": sum(1 for c in done_counts.values() if c > 1),
        "recovered": sum(
            1 for job_id in job_ids
            if job_id in views and "requeued" in views[job_id].events
        ),
        "latency_p50_s": _percentile(latencies, 0.50) if latencies else None,
        "latency_p95_s": _percentile(latencies, 0.95) if latencies else None,
        "throughput_jobs_per_s": (len(done) / span_s) if span_s > 0 else None,
        "journal_problems": len(problems),
        "digests": sorted({
            views[job_id].digest for job_id in job_ids
            if job_id in views and views[job_id].digest
        }),
    }


def bench_serve(
    profile: str = "mix",
    scale: float = 0.01,
    n_jobs: int = 8,
    executors: int = 2,
    workers: int = 2,
    backend: str = "threads",
    repeats: int = 1,
    seed: int = 0,
    kmeans_iters: int = 5,
    shed_depth: int | None = None,
    fault: bool = True,
) -> dict:
    """Load-test the serve daemon and prove its reliability envelope.

    Three scenarios drive ``n_jobs`` concurrent submissions over one
    corpus against a fresh state directory each:

    * ``steady`` — depth budget >= the load; every job must complete
      with the reference digest. Records throughput and latency
      percentiles (submitted → done, from journal timestamps).
    * ``backpressure`` — the queue budget is squeezed to
      ``shed_depth`` (default ``max(1, n_jobs // 4)``), so admission
      control must shed the overflow with recorded reasons while every
      *admitted* job still completes bit-identically.
    * ``crash-recovery`` (``fault=True``) — the daemon is killed at the
      ``running`` journal append mid-load, then restarted over the same
      state directory. No job may be lost or double-completed: every
      job finishes exactly once with the reference digest, and the
      recovered (requeued) count is reported.

    The reference digest comes from one in-process run of the same
    pipeline — the serve path must reproduce one-shot execution bit for
    bit. ``repeats`` is accepted for CLI uniformity; the scenarios are
    single-shot by design (a load test, not a best-of timing sweep).
    """
    if profile not in _PROFILES:
        raise BenchmarkError(f"unknown profile {profile!r}")
    from repro.bench.oocore_child import output_digest
    from repro.serve.transport import submit_job

    corpus = generate_corpus(_PROFILES[profile], scale=scale, seed=seed)

    root = tempfile.mkdtemp(prefix="repro_serve_bench_")
    runs: list[dict] = []
    try:
        corpus_dir = os.path.join(root, "corpus")
        store_corpus(FsStorage(corpus_dir), corpus)
        # The reference must match what jobs actually see: the corpus
        # round-tripped through storage (disk order, not generation
        # order) and the same parallel backend kind — the serial path
        # assembles grains in a different order, so hashing it would
        # flag a spurious mismatch.
        stored = load_corpus(FsStorage(corpus_dir), "", name="reference")
        reference_backend = make_backend(backend, workers)
        try:
            reference = run_pipeline(
                stored,
                backend=reference_backend,
                tfidf=TfIdfOperator(),
                kmeans=KMeansOperator(max_iters=kmeans_iters),
            )
        finally:
            reference_backend.close()
        reference_digest = output_digest(reference)
        daemon_args = [
            "--backend", backend,
            "--workers", str(workers),
            "--executors", str(executors),
            "--idle-exit", "1.0",
            "--drain-deadline", "60",
        ]

        def scenario(
            label: str, *, depth: int, kill_at: str | None
        ) -> dict:
            state = os.path.join(root, f"state_{label}")
            job_ids = [
                submit_job(state, {
                    "input": corpus_dir,
                    "iters": kmeans_iters,
                    "job_id": f"{label}-{index}",
                })
                for index in range(n_jobs)
            ]
            t0 = time.perf_counter()
            crashed = False
            if kill_at is not None:
                code = _serve_daemon(
                    state, daemon_args + ["--max-depth", str(depth)],
                    kill_at=kill_at,
                )
                crashed = code == 86
            _serve_daemon(state, daemon_args + ["--max-depth", str(depth)])
            total_s = time.perf_counter() - t0
            stats = _serve_scenario_stats(state, job_ids)
            digest_ok = stats["digests"] in ([], [reference_digest])
            exactly_once = (
                stats["lost"] == 0 and stats["double_completed"] == 0
            )
            expected_done = stats["jobs"] - stats["shed"] - stats["failed"]
            run = {
                "scenario": label,
                "total_s": total_s,
                "crash_injected": kill_at,
                "crashed": crashed,
                "max_depth": depth,
                "output_identical": digest_ok,
                "exactly_once": exactly_once,
                "ok": (
                    digest_ok
                    and exactly_once
                    and stats["journal_problems"] == 0
                    and stats["done"] == expected_done
                    and (kill_at is None or crashed)
                ),
            }
            run.update(stats)
            return run

        runs.append(scenario("steady", depth=n_jobs, kill_at=None))
        depth = shed_depth or max(1, n_jobs // 4)
        runs.append(scenario("backpressure", depth=depth, kill_at=None))
        if fault:
            runs.append(
                scenario("crash-recovery", depth=n_jobs, kill_at="running")
            )
    finally:
        shutil.rmtree(root, ignore_errors=True)

    steady = runs[0]
    return _envelope(
        "serve", profile, scale, len(corpus), repeats, kmeans_iters,
        config={
            "backend": backend,
            "workers": workers,
            "executors": executors,
            "n_jobs": n_jobs,
            "seed": seed,
            "fault": fault,
        },
        runs=runs,
        serve_summary={
            "reference_digest": reference_digest,
            "jobs_per_scenario": n_jobs,
            "latency_p50_s": steady["latency_p50_s"],
            "latency_p95_s": steady["latency_p95_s"],
            "throughput_jobs_per_s": steady["throughput_jobs_per_s"],
            "shed": sum(r["shed"] for r in runs),
            "recovered": sum(r["recovered"] for r in runs),
            "lost": sum(r["lost"] for r in runs),
            "double_completed": sum(r["double_completed"] for r in runs),
            "all_ok": all(r["ok"] for r in runs),
        },
    )
