"""Persistent observability: the run ledger and its analytics engine.

Every run of the real pipeline measures itself — phase wall clock, task
spans, exact IPC bytes, cache savings, tile pinning, plan decisions,
recovery bills — but until this package that telemetry died with the
process. :mod:`repro.obs.ledger` persists it (an append-only JSONL
execution log, one record per workflow step) and
:mod:`repro.obs.analytics` aggregates the history into the Workflow-DNA
heatmap, regression flags, and exportable metrics. See
``docs/ledger.md``.
"""

from repro.obs.ledger import (
    LEDGER_SCHEMA,
    LedgerCorruptionWarning,
    RunLedger,
    WallAnchor,
    read_ledger,
)

__all__ = [
    "LEDGER_SCHEMA",
    "LedgerCorruptionWarning",
    "RunLedger",
    "WallAnchor",
    "read_ledger",
]
