"""Append-only, schema-versioned execution ledger for real runs.

One run of the fused pipeline produces one JSONL record **per workflow
step** (phase), written to ``<ledger dir>/ledger.jsonl`` in a single
appending ``write`` — a reader sees either none or all of a run's
records, and a crash mid-append can at worst tear the final line, which
:func:`read_ledger` skips *loudly* (a warning naming file, line, and
remedy) without ever failing aggregation.

Timestamps are **wall-anchored**: each run captures one
:class:`WallAnchor` — an epoch pair ``(time.time(), perf_counter())`` —
and every step timestamp is ``wall + monotonic offset``. Durations keep
monotonic-clock precision while records from different processes and
different days stay comparable on one real-time axis (monotonic-only
timestamps, as spans used before this module, are meaningless across
processes).

The ledger is the persistence layer under ``repro analytics`` (the
Workflow-DNA heatmap, regression detection, exports) and under
``repro analytics recalibrate``, which replays span/IPC totals from the
history into :class:`~repro.plan.CalibrationStore`. See
``docs/ledger.md`` for the record schema and retention story.
"""

from __future__ import annotations

import json
import os
import platform
import time
import warnings
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "LEDGER_SCHEMA",
    "LEDGER_FILE",
    "LedgerCorruptionWarning",
    "WallAnchor",
    "RunLedger",
    "read_ledger",
]

#: Version stamped on every record. Readers process records up to their
#: own schema and skip newer ones loudly instead of misreading them.
LEDGER_SCHEMA = 1

#: The append-only log file inside a ledger directory. Readers scan
#: every ``*.jsonl`` in the directory, so rotated/archived files sit
#: next to the live one and stay aggregatable.
LEDGER_FILE = "ledger.jsonl"

#: Keys every schema-1 step record must carry to be aggregatable.
_REQUIRED_KEYS = ("schema", "run_id", "ts", "step", "status", "duration_s", "run")

#: Minimum gap between consecutive step timestamps within one run. One
#: microsecond survives double rounding at epoch magnitude (~1e9 s has
#: ~2.4e-7 s float spacing — a nanosecond bump would vanish) while
#: staying far below any real phase duration.
_TS_STEP = 1e-6


class LedgerCorruptionWarning(UserWarning):
    """A ledger line was skipped (truncated write or foreign content)."""


@dataclass(frozen=True)
class WallAnchor:
    """A run's epoch: one wall-clock reading paired with one monotonic.

    ``at(offset_s)`` maps a monotonic duration since the anchor onto the
    wall-clock axis, so step timestamps are comparable across processes
    while intervals keep ``perf_counter`` precision.
    """

    wall: float
    mono: float

    @classmethod
    def capture(cls) -> "WallAnchor":
        return cls(wall=time.time(), mono=time.perf_counter())

    def at(self, offset_s: float) -> float:
        """Wall-clock time of a moment ``offset_s`` after the anchor."""
        return self.wall + offset_s

    def now(self) -> float:
        """Current wall-clock time via the monotonic offset (NTP-step-proof
        within the run: never earlier than any previous ``now()``; *strict*
        ordering of ledger timestamps is the writer's job — sub-microsecond
        monotonic deltas round away at epoch magnitude)."""
        return self.wall + (time.perf_counter() - self.mono)


def _host() -> dict:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
    }


class RunLedger:
    """Writer for one ledger directory (created on first use).

    ``record_run``/``record_failed_run`` append all of a run's step
    records in one ``O_APPEND`` write followed by ``fsync`` — records of
    concurrent runs never interleave mid-record, and a crash can only
    tear the final line, which readers skip loudly. ``last_append_s``
    holds the seconds the most recent append cost (the run's entire
    ledger overhead), so surfaces can bill it honestly.
    """

    def __init__(self, root: str) -> None:
        if not root:
            raise ConfigurationError("ledger directory must be a non-empty path")
        self.root = root
        self.last_append_s = 0.0
        self._counter = 0
        os.makedirs(root, exist_ok=True)

    @classmethod
    def ensure(cls, value: "RunLedger | str | None") -> "RunLedger | None":
        """Coerce ``run_pipeline``'s ``ledger=`` argument (dir path or
        instance; ``None`` = ledgering off)."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(value)
        raise ConfigurationError(
            f"ledger must be a directory path or a RunLedger, got {value!r}"
        )

    @property
    def path(self) -> str:
        return os.path.join(self.root, LEDGER_FILE)

    # -- writing -----------------------------------------------------------------

    def _run_id(self, anchor: WallAnchor) -> str:
        self._counter += 1
        return f"{int(anchor.wall * 1e3):013d}-{os.getpid()}-{self._counter}"

    def _append(self, records: list[dict]) -> dict:
        t0 = time.perf_counter()
        payload = "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in records
        ).encode("utf-8")
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, payload)
            os.fsync(fd)
        finally:
            os.close(fd)
        self.last_append_s = time.perf_counter() - t0
        return {
            "dir": self.root,
            "records": len(records),
            "append_s": self.last_append_s,
        }

    def record_run(
        self,
        result,
        *,
        anchor: WallAnchor,
        kind: str = "pipeline",
        config: dict | None = None,
    ) -> dict:
        """Ledger a completed run from its ``RealRunResult``.

        Returns ``{"run_id", "dir", "records", "append_s"}`` (what
        ``result.ledger`` carries). Step timestamps are the anchor plus
        the cumulative phase durations — phase wall times are disjoint
        by construction (streamed reads bill only *blocked* time), so
        the cumulative sum is each phase's end on the wall axis.
        """
        record = result.to_record()
        run_id = self._run_id(anchor)
        n_docs = result.tfidf.matrix.n_rows
        run_meta = {
            "started": anchor.wall,
            "kind": kind,
            "backend": record["backend"],
            "n_docs": n_docs,
            "total_s": record["total_s"],
            "plan_seconds": record["plan_seconds"],
            "plan": record["plan"],
            "downgrades": record["downgrades"],
            "quarantine": record["quarantine"],
            "config": config or {},
        }
        ipc_phases = (record["ipc"] or {}).get("phases", {})
        cache_phases = (record["cache"] or {}).get("phases", {})
        trace_stats = record["trace"] or {}
        trace_totals = record["trace_totals"] or {}

        records: list[dict] = []
        elapsed = record["plan_seconds"]
        previous_ts = anchor.wall
        for step, duration in record["phases"].items():
            elapsed += duration
            # Strictly increasing within the run even for zero-duration
            # steps — the ordering guarantee analytics sorts by.
            ts = max(anchor.at(elapsed), previous_ts + _TS_STEP)
            previous_ts = ts
            step_record = {
                "schema": LEDGER_SCHEMA,
                "run_id": run_id,
                "ts": ts,
                "step": step,
                "status": "ok",
                "duration_s": duration,
                "run": run_meta,
                "span": trace_stats.get(step),
                "span_totals": trace_totals.get(step),
                "ipc": ipc_phases.get(step),
                "cache": cache_phases.get(step),
                "tiles": record["tiles"] if step == "transform" else None,
                "host": _host(),
            }
            records.append(step_record)
        info = self._append(records)
        info["run_id"] = run_id
        return info

    def record_failed_run(
        self,
        *,
        anchor: WallAnchor,
        phase_seconds: dict,
        failed_step: str,
        error: BaseException | str,
        backend: str,
        kind: str = "pipeline",
        n_docs: int = 0,
        config: dict | None = None,
    ) -> dict:
        """Ledger a run that raised: completed steps as ``ok``, then one
        ``failed`` record for the step that was executing.

        The failed step's duration is the run's elapsed time minus the
        seconds already billed to completed phases — an upper bound that
        includes session overhead, which is the honest attribution when
        the phase died mid-flight.
        """
        elapsed_total = time.perf_counter() - anchor.mono
        run_meta = {
            "started": anchor.wall,
            "kind": kind,
            "backend": backend,
            "n_docs": n_docs,
            "total_s": elapsed_total,
            "plan_seconds": 0.0,
            "plan": None,
            "downgrades": [],
            "quarantine": None,
            "config": config or {},
        }
        run_id = self._run_id(anchor)
        records: list[dict] = []
        elapsed = 0.0
        previous_ts = anchor.wall
        for step, duration in phase_seconds.items():
            if step == failed_step:
                continue
            elapsed += duration
            ts = max(anchor.at(elapsed), previous_ts + _TS_STEP)
            previous_ts = ts
            records.append(
                {
                    "schema": LEDGER_SCHEMA,
                    "run_id": run_id,
                    "ts": ts,
                    "step": step,
                    "status": "ok",
                    "duration_s": duration,
                    "run": run_meta,
                    "span": None,
                    "span_totals": None,
                    "ipc": None,
                    "cache": None,
                    "tiles": None,
                    "host": _host(),
                }
            )
        records.append(
            {
                "schema": LEDGER_SCHEMA,
                "run_id": run_id,
                "ts": max(anchor.at(elapsed_total), previous_ts + _TS_STEP),
                "step": failed_step,
                "status": "failed",
                "duration_s": max(0.0, elapsed_total - elapsed),
                "error": str(error),
                "run": run_meta,
                "span": None,
                "span_totals": None,
                "ipc": None,
                "cache": None,
                "tiles": None,
                "host": _host(),
            }
        )
        info = self._append(records)
        info["run_id"] = run_id
        return info


# -- reading -----------------------------------------------------------------------


def _loud(problems: list[str], message: str) -> None:
    problems.append(message)
    warnings.warn(message, LedgerCorruptionWarning, stacklevel=3)


def read_ledger(root: str) -> tuple[list[dict], list[str]]:
    """Load every aggregatable record under a ledger directory.

    Returns ``(records, problems)``: records sorted by ``(run start,
    ts)``; problems describing every line that was *skipped loudly* — a
    corrupt/truncated line (interrupted append), a record from a newer
    schema than this reader understands, or a record missing required
    keys. Skipping never fails aggregation: the remaining history stays
    usable, which is the whole point of an append-forever log. A missing
    or empty directory is simply an empty history (no runs yet).
    """
    records: list[dict] = []
    problems: list[str] = []
    if not os.path.isdir(root):
        return records, problems
    for name in sorted(os.listdir(root)):
        if not name.endswith(".jsonl"):
            continue
        path = os.path.join(root, name)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except OSError as exc:
            _loud(problems, f"{path}: unreadable ledger file skipped: {exc}")
            continue
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                _loud(
                    problems,
                    f"{path}:{lineno}: skipping corrupt ledger line "
                    f"(truncated append? delete the damaged tail to silence "
                    f"this warning)",
                )
                continue
            if not isinstance(record, dict):
                _loud(
                    problems,
                    f"{path}:{lineno}: skipping non-object ledger line",
                )
                continue
            schema = record.get("schema")
            if not isinstance(schema, int) or schema < 1:
                _loud(
                    problems,
                    f"{path}:{lineno}: skipping record without an integer "
                    f"'schema' (not a ledger record?)",
                )
                continue
            if schema > LEDGER_SCHEMA:
                _loud(
                    problems,
                    f"{path}:{lineno}: skipping schema-{schema} record "
                    f"written by a newer version (this reader understands "
                    f"schema <= {LEDGER_SCHEMA})",
                )
                continue
            missing = [key for key in _REQUIRED_KEYS if key not in record]
            if missing:
                _loud(
                    problems,
                    f"{path}:{lineno}: skipping record lacking required "
                    f"key(s) {', '.join(missing)}",
                )
                continue
            records.append(record)
    records.sort(key=lambda r: (r["run"].get("started", 0.0), r["ts"]))
    return records, problems
