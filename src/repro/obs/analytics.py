"""Workflow-DNA analytics over the persistent run ledger.

Aggregates the step records :mod:`repro.obs.ledger` accumulates into:

* the **heatmap** — per-step p50/p95 duration, failure rate, bytes
  moved, cache hit rate, mean utilization and straggler ratio across
  every recorded run (the per-step "DNA" of the workflow);
* **regression detection** — a step is flagged when its latest good
  duration exceeds the median of its trailing history by a relative
  tolerance plus an absolute slack, the same spirit as the
  ``validate_bench.py`` tolerance gates (generous by default: small
  corpora on loaded hosts are noisy);
* **exports** — plain JSON, Prometheus text exposition (for a future
  serving layer to scrape), Chrome trace-event JSON (the whole history
  on one wall-clock timeline, one lane per run), and a self-contained
  HTML heatmap;
* **recalibration** — replaying span/IPC totals from the history into
  :class:`~repro.plan.CalibrationStore`, so the planner's cost model
  sharpens from every ledgered run instead of only the one it just
  executed.

Everything here consumes the ``(records, problems)`` pair from
:func:`~repro.obs.ledger.read_ledger`; corrupt history never crashes
aggregation, it is skipped loudly upstream.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.exec.spans import _percentile
from repro.obs.ledger import LEDGER_SCHEMA

__all__ = [
    "StepStats",
    "heatmap",
    "step_history",
    "detect_regressions",
    "export_json",
    "export_prom",
    "export_chrome",
    "export_html",
    "recalibrate",
    "DEFAULT_TOLERANCE",
    "DEFAULT_MIN_RUNS",
    "DEFAULT_SLACK_S",
]

#: Relative headroom the latest duration gets over the trailing median
#: before it counts as a regression (0.5 = 50% slower). Deliberately
#: generous — the bench's own planned-vs-fixed gate allows 10% on
#: *floored repeats*; single uncontrolled runs need far more.
DEFAULT_TOLERANCE = 0.5

#: Minimum good samples of a step (including the latest) before the
#: regression detector speaks at all. Two clean runs can differ by pure
#: scheduler noise; with fewer than this many samples the baseline is
#: not a baseline.
DEFAULT_MIN_RUNS = 3

#: Absolute slack (seconds) added on top of the relative tolerance, so
#: micro-steps (milliseconds) never flag on jitter.
DEFAULT_SLACK_S = 0.05


@dataclass
class StepStats:
    """Aggregated DNA of one workflow step across the ledger history."""

    step: str
    n_records: int = 0
    n_failed: int = 0
    durations: list[float] = field(default_factory=list)
    bytes_moved: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    seconds_saved: float = 0.0
    utilizations: list[float] = field(default_factory=list)
    straggler_ratios: list[float] = field(default_factory=list)
    queue_wait_s: float = 0.0

    @property
    def failure_rate(self) -> float:
        return self.n_failed / self.n_records if self.n_records else 0.0

    @property
    def p50_s(self) -> float:
        return _percentile(sorted(self.durations), 0.5)

    @property
    def p95_s(self) -> float:
        return _percentile(sorted(self.durations), 0.95)

    @property
    def cache_hit_rate(self) -> float | None:
        seen = self.cache_hits + self.cache_misses
        return self.cache_hits / seen if seen else None

    @property
    def mean_utilization(self) -> float | None:
        if not self.utilizations:
            return None
        return sum(self.utilizations) / len(self.utilizations)

    @property
    def mean_straggler_ratio(self) -> float | None:
        if not self.straggler_ratios:
            return None
        return sum(self.straggler_ratios) / len(self.straggler_ratios)

    def as_dict(self) -> dict:
        return {
            "step": self.step,
            "runs": self.n_records,
            "failures": self.n_failed,
            "failure_rate": self.failure_rate,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "bytes_moved": self.bytes_moved,
            "cache_hit_rate": self.cache_hit_rate,
            "seconds_saved": self.seconds_saved,
            "utilization": self.mean_utilization,
            "straggler_ratio": self.mean_straggler_ratio,
            "queue_wait_s": self.queue_wait_s,
        }


def heatmap(records: list[dict]) -> dict[str, StepStats]:
    """Per-step aggregates, keyed in order of first appearance."""
    stats: dict[str, StepStats] = {}
    for record in records:
        step = record["step"]
        entry = stats.get(step)
        if entry is None:
            entry = stats[step] = StepStats(step=step)
        entry.n_records += 1
        if record.get("status") == "failed":
            entry.n_failed += 1
        else:
            entry.durations.append(float(record.get("duration_s", 0.0)))
        ipc = record.get("ipc")
        if isinstance(ipc, dict):
            entry.bytes_moved += int(ipc.get("task_pickle_bytes", 0))
            entry.bytes_moved += int(ipc.get("result_pickle_bytes", 0))
        cache = record.get("cache")
        if isinstance(cache, dict):
            entry.cache_hits += int(cache.get("hits", 0))
            entry.cache_misses += int(cache.get("misses", 0))
            entry.seconds_saved += float(cache.get("seconds_saved", 0.0))
        span = record.get("span")
        if isinstance(span, dict):
            if isinstance(span.get("utilization"), (int, float)):
                entry.utilizations.append(float(span["utilization"]))
            if isinstance(span.get("straggler_ratio"), (int, float)):
                entry.straggler_ratios.append(float(span["straggler_ratio"]))
            entry.queue_wait_s += float(span.get("queue_wait_s", 0.0))
    return stats


def step_history(records: list[dict], step: str | None = None) -> list[dict]:
    """Per-run rows for one step (or all), in wall-clock order."""
    rows = []
    for record in records:
        if step is not None and record["step"] != step:
            continue
        rows.append(
            {
                "run_id": record["run_id"],
                "ts": record["ts"],
                "step": record["step"],
                "status": record.get("status", "ok"),
                "duration_s": record.get("duration_s", 0.0),
                "backend": record["run"].get("backend"),
                "n_docs": record["run"].get("n_docs"),
            }
        )
    return rows


def detect_regressions(
    records: list[dict],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    min_runs: int = DEFAULT_MIN_RUNS,
    slack_s: float = DEFAULT_SLACK_S,
) -> list[dict]:
    """Flag steps whose latest good duration left their trailing baseline.

    For each step, the baseline is the *median* of every good duration
    before the latest one; the latest regresses when it exceeds
    ``baseline * (1 + tolerance) + slack_s``. Steps with fewer than
    ``min_runs`` good samples are never flagged — a baseline of one run
    is noise, and the detector's contract is zero spurious flags on a
    freshly seeded ledger.
    """
    series: dict[str, list[float]] = {}
    for record in records:
        if record.get("status") == "failed":
            continue
        series.setdefault(record["step"], []).append(
            float(record.get("duration_s", 0.0))
        )
    flagged: list[dict] = []
    for step, durations in series.items():
        if len(durations) < max(2, min_runs):
            continue
        latest = durations[-1]
        baseline = _percentile(sorted(durations[:-1]), 0.5)
        threshold = baseline * (1.0 + tolerance) + slack_s
        if latest > threshold:
            flagged.append(
                {
                    "step": step,
                    "latest_s": latest,
                    "baseline_p50_s": baseline,
                    "threshold_s": threshold,
                    "ratio": (latest / baseline) if baseline > 0 else float("inf"),
                    "samples": len(durations),
                }
            )
    return flagged


# -- exports -----------------------------------------------------------------------


def export_json(records: list[dict], **kwargs) -> dict:
    """The heatmap + regression flags as one JSON document."""
    return {
        "schema": LEDGER_SCHEMA,
        "runs": len({record["run_id"] for record in records}),
        "records": len(records),
        "steps": [stats.as_dict() for stats in heatmap(records).values()],
        "regressions": detect_regressions(records, **kwargs),
    }


def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def export_prom(records: list[dict]) -> str:
    """Prometheus text exposition of the heatmap (gauges, one sample per
    step) — the scrape surface for a future serving layer."""
    lines: list[str] = []

    def gauge(name: str, help_text: str, samples: list[tuple[dict, float]]):
        if not samples:
            return
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} gauge")
        for labels, value in samples:
            rendered = ",".join(
                f'{key}="{_prom_escape(str(val))}"' for key, val in labels.items()
            )
            lines.append(f"{name}{{{rendered}}} {value:.9g}")

    stats = list(heatmap(records).values())
    gauge(
        "repro_step_runs_total",
        "Ledger records per workflow step.",
        [({"step": s.step}, float(s.n_records)) for s in stats],
    )
    gauge(
        "repro_step_failures_total",
        "Failed records per workflow step.",
        [({"step": s.step}, float(s.n_failed)) for s in stats],
    )
    gauge(
        "repro_step_duration_seconds",
        "Step duration percentiles across the ledger history.",
        [
            sample
            for s in stats
            for sample in (
                ({"step": s.step, "quantile": "0.5"}, s.p50_s),
                ({"step": s.step, "quantile": "0.95"}, s.p95_s),
            )
        ],
    )
    gauge(
        "repro_step_bytes_moved_total",
        "Task + result pickle bytes the step shipped, summed over runs.",
        [({"step": s.step}, float(s.bytes_moved)) for s in stats],
    )
    gauge(
        "repro_step_cache_hit_ratio",
        "Result-cache hits / lookups for the step (cached runs only).",
        [
            ({"step": s.step}, s.cache_hit_rate)
            for s in stats
            if s.cache_hit_rate is not None
        ],
    )
    gauge(
        "repro_step_utilization_ratio",
        "Mean traced worker utilization for the step.",
        [
            ({"step": s.step}, s.mean_utilization)
            for s in stats
            if s.mean_utilization is not None
        ],
    )
    return "\n".join(lines) + ("\n" if lines else "")


def export_chrome(records: list[dict]) -> dict:
    """The whole ledger history as Chrome trace-event JSON.

    One ``tid`` lane per run, one complete event per step, timestamps
    relative to the earliest run's start — wall-anchored records make
    runs from different processes line up on one timeline. Load in
    ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    events: list[dict] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro run ledger"},
        }
    ]
    run_lanes: dict[str, int] = {}
    t0 = min((record["run"].get("started", record["ts"]) for record in records),
             default=0.0)
    for record in records:
        run_id = record["run_id"]
        lane = run_lanes.get(run_id)
        if lane is None:
            lane = run_lanes[run_id] = len(run_lanes)
            events.append(
                {
                    "ph": "M",
                    "pid": 0,
                    "tid": lane,
                    "name": "thread_name",
                    "args": {"name": f"run {run_id}"},
                }
            )
        duration = float(record.get("duration_s", 0.0))
        end = float(record["ts"]) - t0
        events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": lane,
                "name": record["step"],
                "cat": record["step"],
                "ts": round(max(0.0, end - duration) * 1e6, 3),
                "dur": round(duration * 1e6, 3),
                "args": {
                    "status": record.get("status", "ok"),
                    "backend": record["run"].get("backend"),
                    "run_id": run_id,
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _heat_color(fraction: float) -> str:
    """Green → red on a 0..1 scale (inline CSS for the HTML export)."""
    fraction = max(0.0, min(1.0, fraction))
    red = int(220 * fraction + 35 * (1 - fraction))
    green = int(200 * (1 - fraction) + 60 * fraction)
    return f"rgb({red},{green},60)"


def export_html(records: list[dict], **kwargs) -> str:
    """Self-contained HTML heatmap (no external assets)."""
    stats = list(heatmap(records).values())
    flagged = {f["step"] for f in detect_regressions(records, **kwargs)}
    max_p50 = max((s.p50_s for s in stats), default=0.0) or 1.0
    rows = []
    for s in stats:
        heat = _heat_color(s.p50_s / max_p50)
        fail_heat = _heat_color(min(1.0, s.failure_rate * 2))
        hit = s.cache_hit_rate
        util = s.mean_utilization
        badge = " &#9888; regression" if s.step in flagged else ""
        rows.append(
            "<tr>"
            f"<td>{s.step}{badge}</td>"
            f"<td>{s.n_records}</td>"
            f'<td style="background:{heat}">{s.p50_s:.3f}</td>'
            f"<td>{s.p95_s:.3f}</td>"
            f'<td style="background:{fail_heat}">{s.failure_rate:.0%}</td>'
            f"<td>{s.bytes_moved / 1e6:.2f}</td>"
            f"<td>{'-' if hit is None else f'{hit:.0%}'}</td>"
            f"<td>{'-' if util is None else f'{util:.0%}'}</td>"
            "</tr>"
        )
    n_runs = len({record["run_id"] for record in records})
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        "<title>repro workflow DNA</title>"
        "<style>body{font-family:monospace;background:#111;color:#eee}"
        "table{border-collapse:collapse}td,th{border:1px solid #444;"
        "padding:4px 10px;text-align:right}td:first-child,th:first-child"
        "{text-align:left}</style></head><body>"
        f"<h1>Workflow DNA — {n_runs} run(s), {len(records)} step record(s)</h1>"
        "<table><tr><th>step</th><th>runs</th><th>p50 s</th><th>p95 s</th>"
        "<th>fail</th><th>MB moved</th><th>cache hit</th><th>util</th></tr>"
        + "".join(rows)
        + "</table></body></html>\n"
    )


# -- calibration replay ------------------------------------------------------------


def recalibrate(records: list[dict], store) -> dict:
    """Replay ledgered runs into a :class:`~repro.plan.CalibrationStore`.

    Each successful run contributes what it actually measured: span
    totals (``busy_s``/``n_items`` per step, traced runs) refine compute
    constants exactly as live :meth:`observe_run` feedback does; IPC
    byte counters refine the pickle-byte constants. Untraced runs on the
    ``sequential`` backend contribute their wall durations as compute
    (sequential wall time *is* compute — no pool, no queueing); untraced
    parallel runs without IPC data carry no usable signal and are
    skipped. Returns ``{"runs_applied", "runs_skipped"}``.
    """
    by_run: dict[str, list[dict]] = {}
    for record in records:
        by_run.setdefault(record["run_id"], []).append(record)
    applied = skipped = 0
    for run_records in by_run.values():
        if any(record.get("status") == "failed" for record in run_records):
            skipped += 1
            continue
        n_docs = int(run_records[0]["run"].get("n_docs") or 0)
        backend = run_records[0]["run"].get("backend")
        totals: dict[str, dict] = {}
        ipc_phases: dict[str, dict] = {}
        for record in run_records:
            step = record["step"]
            span_totals = record.get("span_totals")
            if isinstance(span_totals, dict):
                totals[step] = span_totals
            elif backend in ("sequential", "inline"):
                totals[step] = {
                    "busy_s": float(record.get("duration_s", 0.0)),
                    "n_items": n_docs,
                }
            ipc = record.get("ipc")
            if isinstance(ipc, dict):
                ipc_phases[step] = ipc
        if n_docs <= 0 or not (totals or ipc_phases):
            skipped += 1
            continue
        store.observe_totals(totals, ipc_phases, n_docs)
        applied += 1
    return {"runs_applied": applied, "runs_skipped": skipped}


def to_json(payload: object) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
