"""repro — Operator and Workflow Optimization for High-Performance Analytics.

A reproduction of Vandierendonck, Murphy, Arif, Sun & Nikolopoulos,
*Operator and Workflow Optimization for High-Performance Analytics*
(MEDAL @ EDBT/ICDT 2016). The library implements the paper's operators
(TF/IDF, sparse K-means), its four intra-node optimizations (parallel
compute, parallel input, workflow fusion, data-structure selection) and a
deterministic virtual-time multicore machine on which every figure and
table of the paper's evaluation can be regenerated.

Quick start::

    from repro import (
        MIX_PROFILE, generate_corpus, MemStorage, store_corpus,
        SimScheduler, paper_node, build_tfidf_kmeans_workflow,
    )

    corpus = generate_corpus(MIX_PROFILE, scale=0.01)
    storage = MemStorage()
    store_corpus(storage, corpus, prefix="in/")
    workflow = build_tfidf_kmeans_workflow(mode="merged")
    result = workflow.run(
        SimScheduler(paper_node(16)), storage,
        inputs={"tfidf.corpus_prefix": "in/"}, workers=16,
    )
    print(result.breakdown())
"""

from repro.core import (
    DEFAULT_COSTS,
    CostConstants,
    Plan,
    PlanConfig,
    ScoreMatrix,
    Workflow,
    WorkflowPlanner,
    WorkflowResult,
    build_tfidf_kmeans_workflow,
    fuse_workflow,
)
from repro.dicts import HashMap, TreeMap, make_dict
from repro.exec import (
    MachineSpec,
    SimScheduler,
    TaskCost,
    Timeline,
    fast_ssd_node,
    paper_node,
    self_relative_speedups,
)
from repro.io import (
    FsStorage,
    MemStorage,
    read_sparse_arff,
    store_corpus,
    write_sparse_arff,
)
from repro.ops import (
    KMeansOperator,
    KMeansResult,
    SimpleKMeansBaseline,
    TfIdfOperator,
    TfIdfResult,
)
from repro.sparse import CsrMatrix, SparseVector
from repro.text import (
    MIX_PROFILE,
    NSF_ABSTRACTS_PROFILE,
    Corpus,
    CorpusProfile,
    Tokenizer,
    generate_corpus,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Workflow",
    "WorkflowResult",
    "build_tfidf_kmeans_workflow",
    "fuse_workflow",
    "WorkflowPlanner",
    "Plan",
    "PlanConfig",
    "ScoreMatrix",
    "CostConstants",
    "DEFAULT_COSTS",
    # exec
    "MachineSpec",
    "paper_node",
    "fast_ssd_node",
    "SimScheduler",
    "TaskCost",
    "Timeline",
    "self_relative_speedups",
    # operators
    "TfIdfOperator",
    "TfIdfResult",
    "KMeansOperator",
    "KMeansResult",
    "SimpleKMeansBaseline",
    # substrates
    "TreeMap",
    "HashMap",
    "make_dict",
    "SparseVector",
    "CsrMatrix",
    "Tokenizer",
    "Corpus",
    "CorpusProfile",
    "MIX_PROFILE",
    "NSF_ABSTRACTS_PROFILE",
    "generate_corpus",
    "MemStorage",
    "FsStorage",
    "store_corpus",
    "read_sparse_arff",
    "write_sparse_arff",
]
