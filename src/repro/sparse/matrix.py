"""Compressed sparse row document-term matrix.

The TF/IDF operator's output — one sparse vector per document — is held in
CSR form so the whole corpus representation is three flat arrays. Rows are
cheap views, which is what lets the fused workflow hand the TF/IDF scores
to K-means without any serialization (paper §3.3).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import OperatorError
from repro.sparse.vector import SparseVector

__all__ = ["CsrMatrix"]


class CsrMatrix:
    """Row-major sparse matrix: ``indptr``, ``indices``, ``data``.

    The three backing arrays may be plain Python lists (the default the
    operators build) or numpy arrays — including zero-copy views over a
    shared-memory buffer (:meth:`from_arrays`). ``row()`` slices whichever
    backing is present, so both representations serve the same API.
    """

    def __init__(
        self,
        indptr: list[int],
        indices: list[int],
        data: list[float],
        n_cols: int,
    ) -> None:
        if len(indptr) == 0 or indptr[0] != 0:
            raise OperatorError("indptr must start with 0")
        if indptr[-1] != len(indices) or len(indices) != len(data):
            raise OperatorError("indptr/indices/data lengths are inconsistent")
        if any(b < a for a, b in zip(indptr, indptr[1:])):
            raise OperatorError("indptr must be non-decreasing")
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self.n_cols = n_cols

    @classmethod
    def from_rows(
        cls, rows: Iterable[SparseVector], n_cols: int | None = None
    ) -> "CsrMatrix":
        """Pack sparse vectors into CSR; infers ``n_cols`` when omitted."""
        indptr = [0]
        indices: list[int] = []
        data: list[float] = []
        max_index = -1
        for row in rows:
            indices.extend(row.indices)
            data.extend(row.values)
            indptr.append(len(indices))
            if row.indices:
                max_index = max(max_index, row.indices[-1])
        if n_cols is None:
            n_cols = max_index + 1
        elif max_index >= n_cols:
            raise OperatorError(
                f"row index {max_index} out of range for n_cols={n_cols}"
            )
        return cls(indptr, indices, data, n_cols)

    @classmethod
    def from_arrays(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        n_cols: int,
    ) -> "CsrMatrix":
        """Wrap existing flat arrays without copying them.

        The arrays are stored as-is — typically views over a
        shared-memory segment a worker attached to, which is what lets a
        process-backend worker see the whole matrix at zero IPC cost.
        """
        return cls(indptr, indices, data, n_cols)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The CSR triple as flat numpy arrays ``(indptr, indices, data)``.

        List-backed matrices are converted (one copy); array-backed ones
        pass through. Dtypes are fixed (int64/intp/float64) so the triple
        can be placed into a shared segment and resolved on any worker.
        """
        return (
            np.ascontiguousarray(self.indptr, dtype=np.int64),
            np.ascontiguousarray(self.indices, dtype=np.intp),
            np.ascontiguousarray(self.data, dtype=np.float64),
        )

    @property
    def n_rows(self) -> int:
        """Number of rows (documents)."""
        return len(self.indptr) - 1

    @property
    def nnz(self) -> int:
        """Number of stored entries across all rows."""
        return len(self.data)

    def row(self, i: int) -> SparseVector:
        """Materialise row ``i`` as a :class:`SparseVector`."""
        if not 0 <= i < self.n_rows:
            raise OperatorError(f"row {i} out of range [0, {self.n_rows})")
        start, end = self.indptr[i], self.indptr[i + 1]
        vector = SparseVector.__new__(SparseVector)
        vector.indices = self.indices[start:end]
        vector.values = self.data[start:end]
        return vector

    def row_nnz(self, i: int) -> int:
        """Number of stored entries in row ``i`` without materialising it."""
        return self.indptr[i + 1] - self.indptr[i]

    def iter_rows(self) -> Iterator[SparseVector]:
        """Yield every row as a :class:`SparseVector`, in order."""
        for i in range(self.n_rows):
            yield self.row(i)

    def resident_bytes(self) -> int:
        """Modelled footprint: 8-byte values, 4-byte indices and offsets."""
        return 8 * len(self.data) + 4 * len(self.indices) + 4 * len(self.indptr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CsrMatrix({self.n_rows}x{self.n_cols}, nnz={self.nnz})"
        )
