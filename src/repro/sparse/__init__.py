"""Sparse linear-algebra substrate used by TF/IDF output and K-means."""

from repro.sparse.matrix import CsrMatrix
from repro.sparse.ops import (
    cosine_similarity,
    dense_squared_norm,
    mean_of_rows,
    nearest_centroid,
    scale_dense,
    zero_dense,
)
from repro.sparse.vector import SparseVector

__all__ = [
    "SparseVector",
    "CsrMatrix",
    "cosine_similarity",
    "dense_squared_norm",
    "mean_of_rows",
    "nearest_centroid",
    "scale_dense",
    "zero_dense",
]
