"""Free-function kernels over sparse vectors and dense buffers.

These are the numeric inner loops of the K-means operator, kept separate
from the vector class so the operator and the baselines can share them and
so the cost model has one place to meter (flops per kernel call).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.sparse.vector import SparseVector

__all__ = [
    "dense_squared_norm",
    "scale_dense",
    "zero_dense",
    "cosine_similarity",
    "nearest_centroid",
    "mean_of_rows",
]


def dense_squared_norm(dense: Sequence[float]) -> float:
    """Sum of squares of a dense buffer (vectorized; accepts any sequence)."""
    buffer = np.asarray(dense, dtype=np.float64)
    return float(buffer @ buffer)


def scale_dense(dense, factor: float) -> None:
    """Multiply a mutable dense buffer by ``factor`` in place.

    Numpy arrays are scaled without a copy; plain lists go through one
    vectorized round trip (still far cheaper than a Python loop).
    """
    if isinstance(dense, np.ndarray):
        dense *= factor
        return
    dense[:] = (np.asarray(dense, dtype=np.float64) * factor).tolist()


def zero_dense(dense) -> None:
    """Clear a mutable dense buffer in place (recycling, not reallocating)."""
    if isinstance(dense, np.ndarray):
        dense.fill(0.0)
        return
    dense[:] = [0.0] * len(dense)


def cosine_similarity(a: SparseVector, b: SparseVector) -> float:
    """Cosine of the angle between two sparse vectors (0 for zero vectors)."""
    denom = a.norm() * b.norm()
    if denom == 0.0:
        return 0.0
    return a.dot(b) / denom


def nearest_centroid(
    vector: SparseVector,
    centroids: Sequence[Sequence[float]],
    centroid_sq_norms: Sequence[float],
) -> tuple[int, float]:
    """Index and squared distance of the closest dense centroid.

    ``centroid_sq_norms`` must hold the precomputed squared norms so each
    candidate costs O(nnz). Ties resolve to the lowest index, which keeps
    assignments deterministic.
    """
    best_index = 0
    best_distance = vector.squared_distance_to_dense(
        centroids[0], centroid_sq_norms[0]
    )
    for k in range(1, len(centroids)):
        distance = vector.squared_distance_to_dense(
            centroids[k], centroid_sq_norms[k]
        )
        if distance < best_distance:
            best_index = k
            best_distance = distance
    return best_index, best_distance


def mean_of_rows(rows: Sequence[SparseVector], size: int) -> list[float]:
    """Dense mean of sparse rows (used by tests and the dense baseline).

    Accumulates into a numpy buffer (vectorized scatter-add per row) and
    returns a plain list, as before.
    """
    buffer = np.zeros(size, dtype=np.float64)
    for row in rows:
        if row.indices:
            buffer[row.indices] += row.values
    if rows:
        buffer *= 1.0 / len(rows)
    return buffer.tolist()
