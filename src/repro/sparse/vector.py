"""Sparse vectors sorted by term id.

The paper's K-means implementation owes much of its speed to "using sparse
vectors to represent inherently sparse data" (§3.1): a document touches a
few hundred of the several hundred thousand vocabulary terms, so distance
computations must cost O(nnz), not O(|vocabulary|).

A :class:`SparseVector` stores parallel ``indices``/``values`` lists with
indices strictly increasing — the same layout the TF/IDF operator needs for
ARFF output ("sorted by term IDs", §3.2), so the representation is shared
across the whole workflow without conversion.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Iterator, Sequence

from repro.errors import OperatorError

__all__ = ["SparseVector"]


class SparseVector:
    """Immutable-by-convention sparse vector keyed by integer term ids."""

    __slots__ = ("indices", "values")

    def __init__(
        self, indices: Sequence[int] = (), values: Sequence[float] = ()
    ) -> None:
        if len(indices) != len(values):
            raise OperatorError(
                f"indices/values length mismatch: {len(indices)} != {len(values)}"
            )
        if any(b <= a for a, b in zip(indices, indices[1:])):
            raise OperatorError("indices must be strictly increasing")
        self.indices = list(indices)
        self.values = list(values)

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, float]]) -> "SparseVector":
        """Build from (index, value) pairs; duplicates are summed, zeros kept."""
        accumulator: dict[int, float] = {}
        for index, value in pairs:
            accumulator[index] = accumulator.get(index, 0.0) + value
        ordered = sorted(accumulator.items())
        return cls([i for i, _ in ordered], [v for _, v in ordered])

    @classmethod
    def from_dict(cls, mapping: dict[int, float]) -> "SparseVector":
        """Build from an index → value mapping."""
        ordered = sorted(mapping.items())
        return cls([i for i, _ in ordered], [v for _, v in ordered])

    @classmethod
    def from_dense(cls, dense: Sequence[float]) -> "SparseVector":
        """Build from a dense sequence, dropping exact zeros."""
        indices = [i for i, v in enumerate(dense) if v != 0.0]
        return cls(indices, [dense[i] for i in indices])

    # -- basic protocol -------------------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of stored (non-zero) entries."""
        return len(self.indices)

    def get(self, index: int) -> float:
        """Value at ``index`` (0.0 when absent), via binary search."""
        pos = bisect_left(self.indices, index)
        if pos < len(self.indices) and self.indices[pos] == index:
            return self.values[pos]
        return 0.0

    def items(self) -> Iterator[tuple[int, float]]:
        """Iterate over (index, value) pairs in index order."""
        return zip(self.indices, self.values)

    def __len__(self) -> int:
        return len(self.indices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseVector):
            return NotImplemented
        return self.indices == other.indices and self.values == other.values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        head = ", ".join(
            f"{i}:{v:.4g}" for i, v in list(self.items())[:4]
        )
        suffix = ", ..." if self.nnz > 4 else ""
        return f"SparseVector({head}{suffix} nnz={self.nnz})"

    # -- math ---------------------------------------------------------------------

    def dot(self, other: "SparseVector") -> float:
        """Sparse-sparse dot product by merge join (O(nnz_a + nnz_b))."""
        result = 0.0
        a, b = self, other
        i = j = 0
        ai, av, bi, bv = a.indices, a.values, b.indices, b.values
        while i < len(ai) and j < len(bi):
            if ai[i] == bi[j]:
                result += av[i] * bv[j]
                i += 1
                j += 1
            elif ai[i] < bi[j]:
                i += 1
            else:
                j += 1
        return result

    def dot_dense(self, dense: Sequence[float]) -> float:
        """Dot with a dense array in O(nnz); ids beyond the array contribute 0."""
        limit = len(dense)
        return sum(
            value * dense[index]
            for index, value in zip(self.indices, self.values)
            if index < limit
        )

    def squared_norm(self) -> float:
        """Sum of squared values (L2 norm squared)."""
        return sum(v * v for v in self.values)

    def norm(self) -> float:
        """Euclidean (L2) norm."""
        return self.squared_norm() ** 0.5

    def scale(self, factor: float) -> "SparseVector":
        """New vector with every value multiplied by ``factor``."""
        return SparseVector(list(self.indices), [v * factor for v in self.values])

    def normalized(self) -> "SparseVector":
        """Unit-L2 copy; the zero vector normalises to itself."""
        norm = self.norm()
        if norm == 0.0:
            return SparseVector(list(self.indices), list(self.values))
        return self.scale(1.0 / norm)

    def add(self, other: "SparseVector") -> "SparseVector":
        """Element-wise sum via merge join."""
        out_i: list[int] = []
        out_v: list[float] = []
        i = j = 0
        ai, av, bi, bv = self.indices, self.values, other.indices, other.values
        while i < len(ai) or j < len(bi):
            if j >= len(bi) or (i < len(ai) and ai[i] < bi[j]):
                out_i.append(ai[i])
                out_v.append(av[i])
                i += 1
            elif i >= len(ai) or bi[j] < ai[i]:
                out_i.append(bi[j])
                out_v.append(bv[j])
                j += 1
            else:
                out_i.append(ai[i])
                out_v.append(av[i] + bv[j])
                i += 1
                j += 1
        return SparseVector(out_i, out_v)

    def add_into_dense(self, dense, weight: float = 1.0) -> None:
        """Accumulate ``weight * self`` into a mutable dense buffer in place.

        This is the K-means centroid-accumulation kernel; the buffer is
        recycled across iterations (paper §3.1: "we do not create new
        objects during the iterations").
        """
        for index, value in zip(self.indices, self.values):
            dense[index] += weight * value

    def squared_distance_to_dense(
        self, dense: Sequence[float], dense_sq_norm: float
    ) -> float:
        """||self - dense||² in O(nnz), given the dense vector's squared norm.

        Expands to ``||x||² - 2·x·c + ||c||²``; only the dot needs the
        sparse entries, so precomputing ``||c||²`` once per centroid per
        iteration keeps assignment cost proportional to document nnz.
        """
        return self.squared_norm() - 2.0 * self.dot_dense(dense) + dense_sq_norm

    def to_dense(self, size: int) -> list[float]:
        """Materialise as a dense list of the given length."""
        if self.indices and self.indices[-1] >= size:
            raise OperatorError(
                f"vector has index {self.indices[-1]} >= requested size {size}"
            )
        dense = [0.0] * size
        for index, value in zip(self.indices, self.values):
            dense[index] = value
        return dense
