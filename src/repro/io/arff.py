"""Attribute-Relation File Format (ARFF) reader and writer.

The paper's discrete workflow stores TF/IDF scores in ARFF — WEKA's file
format [Hall et al., SIGKDD Explorations 2009] — and §3.2/§3.3 blame it for
serialising I/O: "the ARFF format does not facilitate parallel output".
This module implements the format for real (WEKA can load our files) so
the discrete workflow pays genuine serialization, parsing and conversion
work, not a stub.

Supported subset: numeric attributes, dense rows (comma-separated) and
sparse rows (``{index value, index value}``), ``%`` comments and quoted
attribute names — everything the TF/IDF–K-means pipeline needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import ArffFormatError
from repro.sparse.matrix import CsrMatrix
from repro.sparse.vector import SparseVector

__all__ = [
    "ArffRelation",
    "write_sparse_arff",
    "read_sparse_arff",
    "arff_lines",
    "parse_arff_lines",
]


@dataclass
class ArffRelation:
    """Parsed ARFF file: relation name, attribute names, row matrix."""

    name: str
    attributes: list[str]
    rows: CsrMatrix


def _quote(name: str) -> str:
    """Quote an attribute name when ARFF requires it (or it is empty)."""
    if not name or any(ch in name for ch in " \t,%{}'\""):
        escaped = name.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    return name


def _unquote(name: str) -> str:
    """Strip surrounding quotes and undo escaping in one left-to-right pass.

    A scanner, not sequential ``str.replace`` calls: chained replacements
    process the text multiple times, so a replacement's output can be
    re-interpreted as an escape by a later pass — backslash-quote
    sequences in attribute names would not survive a write→read round
    trip. One pass consumes each ``\\x`` pair exactly once.
    """
    if len(name) >= 2 and name[0] == name[-1] and name[0] in "'\"":
        body = name[1:-1]
        out: list[str] = []
        index = 0
        while index < len(body):
            if body[index] == "\\" and index + 1 < len(body):
                out.append(body[index + 1])
                index += 2
            else:
                out.append(body[index])
                index += 1
        return "".join(out)
    return name


def _format_value(value: float) -> str:
    """Numeric rendering: integers compactly, floats exactly.

    ``repr`` emits the shortest string that round-trips the double, so a
    discrete workflow (which passes scores through ARFF) computes
    *bit-identical* results to a fused one — materialization must never
    change answers. NaN and ±inf have no ARFF representation and are
    rejected (callers add row/attribute context).
    """
    if not math.isfinite(value):
        raise ArffFormatError(f"non-finite value {value!r}")
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_cell(
    value: float, row_index: int, attr_index: int, attributes: list[str]
) -> str:
    """Render one matrix cell, naming the row/attribute on bad values."""
    if not math.isfinite(value):
        if 0 <= attr_index < len(attributes):
            attribute = repr(attributes[attr_index])
        else:
            attribute = f"#{attr_index}"
        raise ArffFormatError(
            f"non-finite value {value!r} at row {row_index}, "
            f"attribute {attribute}"
        )
    return _format_value(value)


def arff_lines(
    relation: str,
    attributes: Iterable[str],
    rows: Iterable[SparseVector],
    sparse: bool = True,
) -> Iterator[str]:
    """Yield the ARFF serialization line by line (header, then one per row).

    Streaming generation keeps peak memory at one row and lets callers
    meter bytes as they are produced — which is how the serial output phase
    charges its I/O.
    """
    attributes = list(attributes)
    yield f"@relation {_quote(relation)}"
    yield ""
    for attribute in attributes:
        yield f"@attribute {_quote(attribute)} numeric"
    yield ""
    yield "@data"
    if sparse:
        for row_index, row in enumerate(rows):
            entries = ",".join(
                f"{index} {_format_cell(value, row_index, index, attributes)}"
                for index, value in row.items()
            )
            yield "{" + entries + "}"
    else:
        for row_index, row in enumerate(rows):
            dense = row.to_dense(len(attributes))
            yield ",".join(
                _format_cell(value, row_index, attr_index, attributes)
                for attr_index, value in enumerate(dense)
            )


def write_sparse_arff(
    relation: str,
    attributes: list[str],
    rows: Iterable[SparseVector],
) -> str:
    """Serialise to a single ARFF document string (sparse rows)."""
    return "\n".join(arff_lines(relation, attributes, rows, sparse=True)) + "\n"


def _header_body(line: str, keyword: str) -> str | None:
    """Body of a header line, or ``None`` if it does not start with
    ``keyword`` as a whole word.

    Matching must stop at a word boundary: a bare ``startswith`` would
    accept ``@relationfoo`` as a relation named ``foo`` (and, worse,
    ``@datafoo`` as the start of the data section).
    """
    if line[: len(keyword)].lower() != keyword:
        return None
    rest = line[len(keyword) :]
    if rest and not rest[0].isspace():
        return None
    return rest.strip()


def parse_arff_lines(lines: Iterable[str]) -> ArffRelation:
    """Parse an ARFF document from an iterable of lines."""
    relation_name: str | None = None
    attributes: list[str] = []
    data_rows: list[SparseVector] = []
    in_data = False

    for raw_line in lines:
        line = raw_line.strip()
        if not line or line.startswith("%"):
            continue
        if not in_data:
            relation_body = _header_body(line, "@relation")
            attribute_body = _header_body(line, "@attribute")
            if relation_body is not None:
                relation_name = _unquote(relation_body)
            elif attribute_body is not None:
                name, attr_type = _split_attribute(attribute_body)
                if attr_type.lower() not in ("numeric", "real", "integer"):
                    raise ArffFormatError(
                        f"unsupported attribute type {attr_type!r} for {name!r}"
                    )
                attributes.append(name)
            elif _header_body(line, "@data") is not None:
                if relation_name is None:
                    raise ArffFormatError("@data before @relation")
                if not attributes:
                    raise ArffFormatError("@data with no attributes declared")
                in_data = True
            else:
                raise ArffFormatError(f"unrecognised header line: {line!r}")
        else:
            data_rows.append(_parse_row(line, len(attributes)))

    if relation_name is None:
        raise ArffFormatError("missing @relation declaration")
    if not in_data:
        raise ArffFormatError("missing @data section")
    return ArffRelation(
        name=relation_name,
        attributes=attributes,
        rows=CsrMatrix.from_rows(data_rows, n_cols=len(attributes)),
    )


def read_sparse_arff(document: str) -> ArffRelation:
    """Parse an ARFF document held in a string."""
    return parse_arff_lines(document.splitlines())


def _split_attribute(rest: str) -> tuple[str, str]:
    """Split an @attribute body into (name, type), honouring quotes."""
    rest = rest.strip()
    if rest.startswith(("'", '"')):
        quote = rest[0]
        index = 1
        while index < len(rest):
            if rest[index] == "\\":
                index += 2
                continue
            if rest[index] == quote:
                break
            index += 1
        else:
            raise ArffFormatError(f"unterminated quoted attribute name: {rest!r}")
        name = _unquote(rest[: index + 1])
        attr_type = rest[index + 1 :].strip()
    else:
        parts = rest.split(None, 1)
        if len(parts) != 2:
            raise ArffFormatError(f"malformed @attribute line: {rest!r}")
        name, attr_type = parts
    if not attr_type:
        raise ArffFormatError(f"attribute {name!r} missing a type")
    return name, attr_type


def _parse_row(line: str, n_attributes: int) -> SparseVector:
    if line.startswith("{"):
        if not line.endswith("}"):
            raise ArffFormatError(f"unterminated sparse row: {line!r}")
        body = line[1:-1].strip()
        if not body:
            return SparseVector()
        pairs: list[tuple[int, float]] = []
        for entry in body.split(","):
            parts = entry.split()
            if len(parts) != 2:
                raise ArffFormatError(f"malformed sparse entry {entry!r}")
            try:
                index, value = int(parts[0]), float(parts[1])
            except ValueError as exc:
                raise ArffFormatError(f"bad sparse entry {entry!r}: {exc}") from None
            if not math.isfinite(value):
                raise ArffFormatError(
                    f"non-finite value {parts[1]!r} in sparse entry {entry!r}"
                )
            if not 0 <= index < n_attributes:
                raise ArffFormatError(
                    f"sparse index {index} out of range [0, {n_attributes})"
                )
            pairs.append((index, value))
        pairs.sort()
        if any(b[0] == a[0] for a, b in zip(pairs, pairs[1:])):
            raise ArffFormatError(f"duplicate index in sparse row: {line!r}")
        return SparseVector([i for i, _ in pairs], [v for _, v in pairs])

    values = line.split(",")
    if len(values) != n_attributes:
        raise ArffFormatError(
            f"dense row has {len(values)} values, expected {n_attributes}"
        )
    try:
        dense = [float(v) for v in values]
    except ValueError as exc:
        raise ArffFormatError(f"bad dense row {line!r}: {exc}") from None
    for attr_index, value in enumerate(dense):
        if not math.isfinite(value):
            raise ArffFormatError(
                f"non-finite value {values[attr_index].strip()!r} "
                f"at attribute #{attr_index} in dense row {line!r}"
            )
    return SparseVector.from_dense(dense)
