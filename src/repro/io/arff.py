"""Attribute-Relation File Format (ARFF) reader and writer.

The paper's discrete workflow stores TF/IDF scores in ARFF — WEKA's file
format [Hall et al., SIGKDD Explorations 2009] — and §3.2/§3.3 blame it for
serialising I/O: "the ARFF format does not facilitate parallel output".
This module implements the format for real (WEKA can load our files) so
the discrete workflow pays genuine serialization, parsing and conversion
work, not a stub.

Supported subset: numeric attributes, dense rows (comma-separated) and
sparse rows (``{index value, index value}``), ``%`` comments and quoted
attribute names — everything the TF/IDF–K-means pipeline needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import ArffFormatError
from repro.sparse.matrix import CsrMatrix
from repro.sparse.vector import SparseVector

__all__ = [
    "ArffRelation",
    "write_sparse_arff",
    "read_sparse_arff",
    "arff_lines",
    "parse_arff_lines",
]


@dataclass
class ArffRelation:
    """Parsed ARFF file: relation name, attribute names, row matrix."""

    name: str
    attributes: list[str]
    rows: CsrMatrix


def _quote(name: str) -> str:
    """Quote an attribute name when ARFF requires it."""
    if any(ch in name for ch in " \t,%{}'\""):
        escaped = name.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    return name


def _unquote(name: str) -> str:
    if len(name) >= 2 and name[0] == name[-1] and name[0] in "'\"":
        return name[1:-1].replace("\\'", "'").replace("\\\\", "\\")
    return name


def _format_value(value: float) -> str:
    """Numeric rendering: integers compactly, floats exactly.

    ``repr`` emits the shortest string that round-trips the double, so a
    discrete workflow (which passes scores through ARFF) computes
    *bit-identical* results to a fused one — materialization must never
    change answers.
    """
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def arff_lines(
    relation: str,
    attributes: Iterable[str],
    rows: Iterable[SparseVector],
    sparse: bool = True,
) -> Iterator[str]:
    """Yield the ARFF serialization line by line (header, then one per row).

    Streaming generation keeps peak memory at one row and lets callers
    meter bytes as they are produced — which is how the serial output phase
    charges its I/O.
    """
    attributes = list(attributes)
    yield f"@relation {_quote(relation)}"
    yield ""
    for attribute in attributes:
        yield f"@attribute {_quote(attribute)} numeric"
    yield ""
    yield "@data"
    if sparse:
        for row in rows:
            entries = ",".join(
                f"{index} {_format_value(value)}" for index, value in row.items()
            )
            yield "{" + entries + "}"
    else:
        for row in rows:
            dense = row.to_dense(len(attributes))
            yield ",".join(_format_value(v) for v in dense)


def write_sparse_arff(
    relation: str,
    attributes: list[str],
    rows: Iterable[SparseVector],
) -> str:
    """Serialise to a single ARFF document string (sparse rows)."""
    return "\n".join(arff_lines(relation, attributes, rows, sparse=True)) + "\n"


def parse_arff_lines(lines: Iterable[str]) -> ArffRelation:
    """Parse an ARFF document from an iterable of lines."""
    relation_name: str | None = None
    attributes: list[str] = []
    data_rows: list[SparseVector] = []
    in_data = False

    for raw_line in lines:
        line = raw_line.strip()
        if not line or line.startswith("%"):
            continue
        lowered = line.lower()
        if not in_data:
            if lowered.startswith("@relation"):
                relation_name = _unquote(line[len("@relation") :].strip())
            elif lowered.startswith("@attribute"):
                rest = line[len("@attribute") :].strip()
                name, attr_type = _split_attribute(rest)
                if attr_type.lower() not in ("numeric", "real", "integer"):
                    raise ArffFormatError(
                        f"unsupported attribute type {attr_type!r} for {name!r}"
                    )
                attributes.append(name)
            elif lowered.startswith("@data"):
                if relation_name is None:
                    raise ArffFormatError("@data before @relation")
                if not attributes:
                    raise ArffFormatError("@data with no attributes declared")
                in_data = True
            else:
                raise ArffFormatError(f"unrecognised header line: {line!r}")
        else:
            data_rows.append(_parse_row(line, len(attributes)))

    if relation_name is None:
        raise ArffFormatError("missing @relation declaration")
    if not in_data:
        raise ArffFormatError("missing @data section")
    return ArffRelation(
        name=relation_name,
        attributes=attributes,
        rows=CsrMatrix.from_rows(data_rows, n_cols=len(attributes)),
    )


def read_sparse_arff(document: str) -> ArffRelation:
    """Parse an ARFF document held in a string."""
    return parse_arff_lines(document.splitlines())


def _split_attribute(rest: str) -> tuple[str, str]:
    """Split an @attribute body into (name, type), honouring quotes."""
    rest = rest.strip()
    if rest.startswith(("'", '"')):
        quote = rest[0]
        index = 1
        while index < len(rest):
            if rest[index] == "\\":
                index += 2
                continue
            if rest[index] == quote:
                break
            index += 1
        else:
            raise ArffFormatError(f"unterminated quoted attribute name: {rest!r}")
        name = _unquote(rest[: index + 1])
        attr_type = rest[index + 1 :].strip()
    else:
        parts = rest.split(None, 1)
        if len(parts) != 2:
            raise ArffFormatError(f"malformed @attribute line: {rest!r}")
        name, attr_type = parts
    if not attr_type:
        raise ArffFormatError(f"attribute {name!r} missing a type")
    return name, attr_type


def _parse_row(line: str, n_attributes: int) -> SparseVector:
    if line.startswith("{"):
        if not line.endswith("}"):
            raise ArffFormatError(f"unterminated sparse row: {line!r}")
        body = line[1:-1].strip()
        if not body:
            return SparseVector()
        pairs: list[tuple[int, float]] = []
        for entry in body.split(","):
            parts = entry.split()
            if len(parts) != 2:
                raise ArffFormatError(f"malformed sparse entry {entry!r}")
            try:
                index, value = int(parts[0]), float(parts[1])
            except ValueError as exc:
                raise ArffFormatError(f"bad sparse entry {entry!r}: {exc}") from None
            if not 0 <= index < n_attributes:
                raise ArffFormatError(
                    f"sparse index {index} out of range [0, {n_attributes})"
                )
            pairs.append((index, value))
        pairs.sort()
        if any(b[0] == a[0] for a, b in zip(pairs, pairs[1:])):
            raise ArffFormatError(f"duplicate index in sparse row: {line!r}")
        return SparseVector([i for i, _ in pairs], [v for _, v in pairs])

    values = line.split(",")
    if len(values) != n_attributes:
        raise ArffFormatError(
            f"dense row has {len(values)} values, expected {n_attributes}"
        )
    try:
        dense = [float(v) for v in values]
    except ValueError as exc:
        raise ArffFormatError(f"bad dense row {line!r}: {exc}") from None
    return SparseVector.from_dense(dense)
