"""Storage backends with explicit I/O cost accounting.

Workflows in *discrete* mode (paper §3.3) communicate through files; every
read and write therefore reports a :class:`~repro.exec.task.TaskCost`
carrying bytes moved and files opened. The scheduler turns those into
virtual time against the machine's disk model — so storing an intermediate
data set "to a local hard disk" costs what it cost the paper.

Two interchangeable backends:

* :class:`MemStorage` — an in-memory dict of path → text. It is the
  default for simulation: contents are real (operators parse real bytes),
  only the *timing* is modelled.
* :class:`FsStorage` — a directory on the host filesystem, for functional
  use and for inspecting outputs with external tools (e.g. loading the
  ARFF into WEKA).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Iterable, Iterator

from repro.errors import StorageError
from repro.exec.task import TaskCost

__all__ = ["Storage", "MemStorage", "FsStorage"]


class Storage(ABC):
    """Path-addressed text-file store that meters its traffic."""

    @abstractmethod
    def read(self, path: str) -> tuple[str, TaskCost]:
        """Return ``(contents, cost)``; cost covers the open and the bytes."""

    @abstractmethod
    def write(self, path: str, data: str) -> TaskCost:
        """Store ``data`` under ``path``, replacing any previous contents."""

    @abstractmethod
    def exists(self, path: str) -> bool: ...

    @abstractmethod
    def size(self, path: str) -> int:
        """Size in bytes of the stored file."""

    @abstractmethod
    def delete(self, path: str) -> None:
        """Remove ``path``; missing paths are ignored."""

    @abstractmethod
    def list(self, prefix: str = "") -> Iterator[str]:
        """Yield stored paths starting with ``prefix``, sorted."""

    # -- shared helpers -----------------------------------------------------------

    def read_many(
        self,
        paths: "Iterable[str]",
        *,
        workers: int = 1,
        prefetch: int | None = None,
        recorder=None,
        retry=None,
    ) -> Iterator[tuple[str, str, "TaskCost"]]:
        """Read many files concurrently; yield ``(path, contents, cost)``.

        Results arrive strictly in input order with per-file costs still
        metered for the simulator; ``workers`` reader threads keep at most
        ``prefetch`` files in flight (paper §3.2's parallel input). An armed
        :class:`~repro.exec.spans.SpanRecorder` passed as ``recorder``
        captures one span per file; a ``retry``
        :class:`~repro.exec.resilience.RetryPolicy` re-attempts transient
        ``OSError`` reads. See :func:`repro.io.parallel_read.read_paths`.
        """
        from repro.io.parallel_read import read_paths

        return read_paths(
            self,
            paths,
            workers=workers,
            prefetch=prefetch,
            recorder=recorder,
            retry=retry,
        )

    def read_data(self, path: str) -> str:
        """Contents only, discarding the cost (functional use)."""
        data, _ = self.read(path)
        return data

    def total_bytes(self, prefix: str = "") -> int:
        """Aggregate size of all files under ``prefix``."""
        return sum(self.size(path) for path in self.list(prefix))


class MemStorage(Storage):
    """In-memory storage; contents are real, timing comes from the model."""

    def __init__(self) -> None:
        self._files: dict[str, str] = {}

    def read(self, path: str) -> tuple[str, TaskCost]:
        try:
            data = self._files[path]
        except KeyError:
            raise StorageError(f"no such file: {path!r}") from None
        return data, TaskCost(disk_read_bytes=len(data), disk_opens=1)

    def write(self, path: str, data: str) -> TaskCost:
        self._files[path] = data
        return TaskCost(disk_write_bytes=len(data), disk_opens=1)

    def exists(self, path: str) -> bool:
        return path in self._files

    def size(self, path: str) -> int:
        try:
            return len(self._files[path])
        except KeyError:
            raise StorageError(f"no such file: {path!r}") from None

    def delete(self, path: str) -> None:
        self._files.pop(path, None)

    def list(self, prefix: str = "") -> Iterator[str]:
        return iter(sorted(p for p in self._files if p.startswith(prefix)))


class FsStorage(Storage):
    """Directory-backed storage on the host filesystem."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    def _resolve(self, path: str) -> str:
        full = os.path.abspath(os.path.join(self.root, path))
        if not full.startswith(self.root + os.sep) and full != self.root:
            raise StorageError(f"path escapes storage root: {path!r}")
        return full

    def read(self, path: str) -> tuple[str, TaskCost]:
        full = self._resolve(path)
        try:
            with open(full, "r", encoding="utf-8") as handle:
                data = handle.read()
        except FileNotFoundError:
            raise StorageError(f"no such file: {path!r}") from None
        return data, TaskCost(disk_read_bytes=len(data), disk_opens=1)

    def write(self, path: str, data: str) -> TaskCost:
        full = self._resolve(path)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        with open(full, "w", encoding="utf-8") as handle:
            handle.write(data)
        return TaskCost(disk_write_bytes=len(data), disk_opens=1)

    def exists(self, path: str) -> bool:
        return os.path.isfile(self._resolve(path))

    def size(self, path: str) -> int:
        full = self._resolve(path)
        try:
            return os.path.getsize(full)
        except FileNotFoundError:
            raise StorageError(f"no such file: {path!r}") from None

    def delete(self, path: str) -> None:
        try:
            os.remove(self._resolve(path))
        except FileNotFoundError:
            pass

    def list(self, prefix: str = "") -> Iterator[str]:
        found = []
        for dirpath, _, filenames in os.walk(self.root):
            for filename in filenames:
                rel = os.path.relpath(os.path.join(dirpath, filename), self.root)
                rel = rel.replace(os.sep, "/")
                if rel.startswith(prefix):
                    found.append(rel)
        return iter(sorted(found))
