"""I/O substrate: ARFF codec, metered storage, corpus persistence, parallel input."""

from repro.io.arff import (
    ArffRelation,
    arff_lines,
    parse_arff_lines,
    read_sparse_arff,
    write_sparse_arff,
)
from repro.io.corpus_io import (
    corpus_paths,
    load_corpus,
    read_document,
    store_corpus,
)
from repro.io.parallel_read import (
    DocumentStream,
    corpus_stream,
    default_prefetch,
    read_paths,
)
from repro.io.storage import FsStorage, MemStorage, Storage

__all__ = [
    "ArffRelation",
    "arff_lines",
    "parse_arff_lines",
    "read_sparse_arff",
    "write_sparse_arff",
    "Storage",
    "MemStorage",
    "FsStorage",
    "store_corpus",
    "load_corpus",
    "corpus_paths",
    "read_document",
    "DocumentStream",
    "corpus_stream",
    "default_prefetch",
    "read_paths",
]
