"""I/O substrate: ARFF codec, metered storage backends, corpus persistence."""

from repro.io.arff import (
    ArffRelation,
    arff_lines,
    parse_arff_lines,
    read_sparse_arff,
    write_sparse_arff,
)
from repro.io.corpus_io import (
    corpus_paths,
    load_corpus,
    read_document,
    store_corpus,
)
from repro.io.storage import FsStorage, MemStorage, Storage

__all__ = [
    "ArffRelation",
    "arff_lines",
    "parse_arff_lines",
    "read_sparse_arff",
    "write_sparse_arff",
    "Storage",
    "MemStorage",
    "FsStorage",
    "store_corpus",
    "load_corpus",
    "corpus_paths",
    "read_document",
]
