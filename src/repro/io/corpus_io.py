"""Persisting and loading corpora through a :class:`Storage` backend.

The TF/IDF operator's input is a directory of text files, one per
document — that layout is what makes the paper's *parallel input*
optimization possible (independent files can be read concurrently, §3.2).
"""

from __future__ import annotations

from repro.exec.task import TaskCost
from repro.io.storage import Storage
from repro.text.corpus import Corpus, Document

__all__ = ["store_corpus", "load_corpus", "corpus_paths", "read_document"]


def corpus_paths(storage: Storage, prefix: str) -> list[str]:
    """Paths of all documents stored under ``prefix``, in name order."""
    return list(storage.list(prefix))


def store_corpus(storage: Storage, corpus: Corpus, prefix: str = "") -> TaskCost:
    """Write each document to ``<prefix><doc.name>``; returns total I/O cost."""
    total = TaskCost()
    for doc in corpus:
        total.add(storage.write(prefix + doc.name, doc.text))
    return total


def read_document(
    storage: Storage, path: str, doc_id: int
) -> tuple[Document, TaskCost]:
    """Read one document file; the returned cost is the task's I/O bill."""
    text, cost = storage.read(path)
    name = path.rsplit("/", 1)[-1]
    return Document(doc_id=doc_id, name=name, text=text), cost


def load_corpus(storage: Storage, prefix: str, name: str = "corpus") -> Corpus:
    """Load every document under ``prefix`` into a fresh corpus.

    Functional helper (costs discarded); simulated workflows read the files
    inside their own metered tasks instead.
    """
    corpus = Corpus(name=name)
    for path in corpus_paths(storage, prefix):
        corpus.add(path.rsplit("/", 1)[-1], storage.read_data(path))
    return corpus
