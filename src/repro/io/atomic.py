"""Crash-safe file replacement for every on-disk artifact we persist.

Writing JSON (or any serialized state) straight into its destination
means a crash mid-``dump`` leaves a truncated, unloadable file — and the
calibration store, the result cache's index, and the committed benchmark
trajectory are all files whose loss costs real re-measurement. Every
writer therefore goes through one idiom: serialize into a temporary file
*in the destination's directory* (same filesystem, so the final step is
a metadata operation) and ``os.replace`` it over the target. Readers see
either the old content or the new content, never a prefix of the new.
"""

from __future__ import annotations

import json
import os
import tempfile

__all__ = ["atomic_write_bytes", "atomic_write_text", "atomic_write_json"]


def atomic_write_bytes(path: str, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via a same-directory temp + replace."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        # The temp file must not outlive a failed write (including an
        # interrupt between write and replace): the whole point is that a
        # crash leaves only the old file behind.
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_text(path: str, text: str) -> None:
    """UTF-8 text variant of :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: str, payload, *, indent: int = 2) -> None:
    """Serialize ``payload`` as JSON and atomically replace ``path``.

    Serialization happens *before* the target is touched, so a payload
    that fails to encode leaves the existing file intact too.
    """
    text = json.dumps(payload, indent=indent, sort_keys=True) + "\n"
    atomic_write_text(path, text)
