"""Parallel input: overlapped, ordered corpus reading with bounded prefetch.

The paper's optimization #2 (§3.2) reads the many input files of a corpus
concurrently so that disk latency overlaps with computation instead of
serializing in front of it. This module is that optimization for the real
execution path:

* :func:`read_paths` reads a list of files on a pool of **reader threads**
  — sized independently of the compute pool, since file reads release the
  GIL — and yields ``(path, text, cost)`` triples strictly in input order,
  no matter which read finished first.
* A **bounded prefetch window** provides backpressure: at most ``prefetch``
  files are in flight (submitted but not yet delivered) at any moment, so
  a fast disk cannot balloon memory ahead of a slow consumer. While the
  consumer processes document *i*, the pool is already reading documents
  *i+1 … i+prefetch*.
* :class:`DocumentStream` wraps the triples into
  :class:`~repro.text.corpus.Document` objects and meters the traffic: the
  per-file :class:`~repro.exec.task.TaskCost` aggregate (so simulated and
  real runs bill the same I/O) and ``wait_seconds`` — the time the consumer
  actually spent blocked on reads, which :func:`repro.core.pipeline.run_pipeline`
  reports as the ``read`` phase.

Errors propagate eagerly: a missing file raises
:class:`~repro.errors.StorageError` naming the offending path, and all
not-yet-started reads are cancelled.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Iterator

from repro.errors import ConfigurationError, StorageError
from repro.exec.task import TaskCost
from repro.io.corpus_io import corpus_paths
from repro.io.storage import Storage
from repro.text.corpus import Document

__all__ = [
    "read_paths",
    "DocumentStream",
    "corpus_stream",
    "default_prefetch",
    "DEFAULT_PREFETCH_PER_WORKER",
]

#: Default in-flight files per reader thread. Deep enough that the window
#: never drains while the consumer tokenizes one document, shallow enough
#: that peak buffered text stays a few documents per reader.
DEFAULT_PREFETCH_PER_WORKER = 4


def default_prefetch(workers: int) -> int:
    """Prefetch window used when the caller does not pick one."""
    return max(2, workers * DEFAULT_PREFETCH_PER_WORKER)


def read_paths(
    storage: Storage,
    paths: Iterable[str],
    *,
    workers: int = 1,
    prefetch: int | None = None,
) -> Iterator[tuple[str, str, TaskCost]]:
    """Yield ``(path, contents, cost)`` for every path, in input order.

    ``workers`` is the reader-thread count; ``workers=1`` reads inline with
    no pool (the serial baseline). ``prefetch`` bounds the number of files
    in flight — submitted to the pool but not yet delivered — and defaults
    to :func:`default_prefetch`.
    """
    if workers < 1:
        raise ConfigurationError(f"read workers must be >= 1, got {workers}")
    paths = list(paths)
    if workers == 1:
        for path in paths:
            text, cost = storage.read(path)
            yield path, text, cost
        return
    if prefetch is None:
        prefetch = default_prefetch(workers)
    if prefetch < 1:
        raise ConfigurationError(f"prefetch must be >= 1, got {prefetch}")
    yield from _read_overlapped(storage, paths, workers, prefetch)


def _read_overlapped(
    storage: Storage, paths: list[str], workers: int, prefetch: int
) -> Iterator[tuple[str, str, TaskCost]]:
    pool = ThreadPoolExecutor(max_workers=workers, thread_name_prefix="repro-read")
    pending: deque = deque()
    remaining = iter(paths)
    try:
        for path in itertools.islice(remaining, prefetch):
            pending.append((path, pool.submit(storage.read, path)))
        while pending:
            path, future = pending.popleft()
            try:
                text, cost = future.result()
            except BaseException:
                for _, queued in pending:
                    queued.cancel()
                raise
            yield path, text, cost
            # Top up *after* the yield: in-flight files never exceed the
            # prefetch window even while the consumer is busy.
            for nxt in itertools.islice(remaining, 1):
                pending.append((nxt, pool.submit(storage.read, nxt)))
    finally:
        # Abandoned mid-iteration (consumer error / early exit): drop the
        # window before waiting out whatever already started.
        for _, queued in pending:
            queued.cancel()
        pool.shutdown(wait=True)


class DocumentStream:
    """Single-use, ordered stream of documents read with overlap.

    Iterating yields :class:`~repro.text.corpus.Document` objects with
    sequential ids, in path order. The length is known upfront
    (``len(stream)``), which lets consumers pick chunk grains before the
    first byte arrives. After (even partial) consumption the stream
    carries its traffic accounting:

    ``total_cost``
        Aggregate per-file :class:`TaskCost` — the same I/O bill the
        simulator charges.
    ``wait_seconds``
        Wall-clock time the *consumer* spent blocked waiting for reads;
        with enough reader threads this approaches zero and the input
        phase disappears behind compute.
    ``bytes_read`` / ``n_read``
        Text bytes and file count actually delivered.
    """

    def __init__(
        self,
        storage: Storage,
        paths: Iterable[str],
        *,
        workers: int = 1,
        prefetch: int | None = None,
        name: str = "corpus",
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"read workers must be >= 1, got {workers}")
        self.storage = storage
        self.paths = list(paths)
        self.workers = workers
        self.prefetch = prefetch if prefetch is not None else default_prefetch(workers)
        self.name = name
        self.total_cost = TaskCost()
        self.wait_seconds = 0.0
        self.bytes_read = 0
        self.n_read = 0
        self._consumed = False

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self) -> Iterator[Document]:
        if self._consumed:
            raise StorageError(
                f"document stream {self.name!r} is single-use; build a new one"
            )
        self._consumed = True
        reads = self.storage.read_many(
            self.paths, workers=self.workers, prefetch=self.prefetch
        )
        doc_id = 0
        while True:
            blocked = time.perf_counter()
            try:
                path, text, cost = next(reads)
            except StopIteration:
                self.wait_seconds += time.perf_counter() - blocked
                return
            self.wait_seconds += time.perf_counter() - blocked
            self.total_cost.add(cost)
            self.bytes_read += len(text)
            self.n_read += 1
            yield Document(
                doc_id=doc_id, name=path.rsplit("/", 1)[-1], text=text
            )
            doc_id += 1


def corpus_stream(
    storage: Storage,
    prefix: str = "",
    *,
    workers: int = 1,
    prefetch: int | None = None,
    name: str = "corpus",
) -> DocumentStream:
    """Stream every document stored under ``prefix``, in name order.

    The streaming twin of :func:`repro.io.corpus_io.load_corpus`: instead
    of materializing a :class:`~repro.text.corpus.Corpus`, documents flow
    to the consumer as reads complete, ``workers`` files at a time.
    """
    return DocumentStream(
        storage,
        corpus_paths(storage, prefix),
        workers=workers,
        prefetch=prefetch,
        name=name,
    )
