"""Parallel input: overlapped, ordered corpus reading with bounded prefetch.

The paper's optimization #2 (§3.2) reads the many input files of a corpus
concurrently so that disk latency overlaps with computation instead of
serializing in front of it. This module is that optimization for the real
execution path:

* :func:`read_paths` reads a list of files on a pool of **reader threads**
  — sized independently of the compute pool, since file reads release the
  GIL — and yields ``(path, text, cost)`` triples strictly in input order,
  no matter which read finished first.
* A **bounded prefetch window** provides backpressure: at most ``prefetch``
  files are in flight (submitted but not yet delivered) at any moment, so
  a fast disk cannot balloon memory ahead of a slow consumer. While the
  consumer processes document *i*, the pool is already reading documents
  *i+1 … i+prefetch*.
* :class:`DocumentStream` wraps the triples into
  :class:`~repro.text.corpus.Document` objects and meters the traffic: the
  per-file :class:`~repro.exec.task.TaskCost` aggregate (so simulated and
  real runs bill the same I/O) and ``wait_seconds`` — the time the consumer
  actually spent blocked on reads, which :func:`repro.core.pipeline.run_pipeline`
  reports as the ``read`` phase.

Errors propagate eagerly: a missing file raises
:class:`~repro.errors.StorageError` naming the offending path, and all
not-yet-started reads are cancelled.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Iterable, Iterator

from repro.errors import ConfigurationError, StorageError
from repro.exec.resilience import RetryPolicy, run_attempts
from repro.exec.spans import SpanRecorder
from repro.exec.task import TaskCost
from repro.io.corpus_io import corpus_paths
from repro.io.storage import Storage
from repro.text.corpus import Document

__all__ = [
    "read_paths",
    "DocumentStream",
    "corpus_stream",
    "default_prefetch",
    "DEFAULT_PREFETCH_PER_WORKER",
]

#: Span phase label for file reads (matches
#: :data:`repro.core.pipeline.PHASE_READ`; defined here too so this
#: module does not import the pipeline).
_READ_PHASE = "read"

#: Default in-flight files per reader thread. Deep enough that the window
#: never drains while the consumer tokenizes one document, shallow enough
#: that peak buffered text stays a few documents per reader.
DEFAULT_PREFETCH_PER_WORKER = 4


def default_prefetch(workers: int) -> int:
    """Prefetch window used when the caller does not pick one."""
    return max(2, workers * DEFAULT_PREFETCH_PER_WORKER)


def read_paths(
    storage: Storage,
    paths: Iterable[str],
    *,
    workers: int = 1,
    prefetch: int | None = None,
    recorder: SpanRecorder | None = None,
    retry: RetryPolicy | None = None,
) -> Iterator[tuple[str, str, TaskCost]]:
    """Yield ``(path, contents, cost)`` for every path, in input order.

    ``workers`` is the reader-thread count; ``workers=1`` reads inline with
    no pool (the serial baseline). ``prefetch`` bounds the number of files
    in flight — submitted to the pool but not yet delivered — and defaults
    to :func:`default_prefetch`. When ``recorder`` is an armed
    :class:`~repro.exec.spans.SpanRecorder`, each file read is captured as
    a ``read``-phase span on the thread that performed it. A ``retry``
    policy re-reads a file whose read failed with a *transient*
    :class:`OSError` (deterministic backoff, per the policy); a read that
    exhausts the budget raises :class:`~repro.errors.StorageError` naming
    the failing path. Missing files (:class:`StorageError` from the
    storage itself) stay eager — they are not transient.
    """
    if workers < 1:
        raise ConfigurationError(f"read workers must be >= 1, got {workers}")
    paths = list(paths)
    read = _reader(storage, recorder, retry)
    if workers == 1:
        for path in paths:
            text, cost = read(path)
            yield path, text, cost
        return
    if prefetch is None:
        prefetch = default_prefetch(workers)
    if prefetch < 1:
        raise ConfigurationError(f"prefetch must be >= 1, got {prefetch}")
    yield from _read_overlapped(read, paths, workers, prefetch)


def _reader(
    storage: Storage,
    recorder: SpanRecorder | None,
    retry: RetryPolicy | None = None,
):
    """Plain ``storage.read``, or a wrapper that records one span per file.

    With a ``retry`` policy, the read is additionally hardened against
    transient :class:`OSError` (EIO, EAGAIN, a flaky network mount): it is
    re-attempted under the policy's deterministic backoff, and exhaustion
    surfaces as a :class:`StorageError` that names the failing path and
    the attempt count. Only ``OSError`` is retried — a
    :class:`StorageError` from the storage itself (missing file) is a
    *permanent* condition and stays eager.
    """
    if recorder is None or not recorder.enabled:
        base = storage.read
    else:

        def traced_read(path: str) -> tuple[str, TaskCost]:
            t_start = recorder.now()
            text, cost = storage.read(path)
            recorder.record(
                t_start,
                recorder.now(),
                phase=_READ_PHASE,
                task_id=recorder.next_task_id(_READ_PHASE),
                n_items=1,
                out_bytes=len(text),
            )
            return text, cost

        base = traced_read
    if retry is None or not retry.enabled:
        return base
    io_retry = replace(retry, retryable_exceptions=(OSError,))

    def resilient_read(path: str) -> tuple[str, TaskCost]:
        try:
            return run_attempts(io_retry, f"read:{path}", lambda attempt: base(path))
        except OSError as exc:
            attempts = getattr(exc, "attempts", 1)
            raise StorageError(
                f"read of {path!r} failed after {attempts} attempt(s): {exc}"
            ) from exc

    return resilient_read


def _read_overlapped(
    read, paths: list[str], workers: int, prefetch: int
) -> Iterator[tuple[str, str, TaskCost]]:
    pool = ThreadPoolExecutor(max_workers=workers, thread_name_prefix="repro-read")
    pending: deque = deque()
    remaining = iter(paths)
    try:
        for path in itertools.islice(remaining, prefetch):
            pending.append((path, pool.submit(read, path)))
        while pending:
            path, future = pending.popleft()
            try:
                text, cost = future.result()
            except BaseException:
                for _, queued in pending:
                    queued.cancel()
                raise
            yield path, text, cost
            # Top up *after* the yield: in-flight files never exceed the
            # prefetch window even while the consumer is busy.
            for nxt in itertools.islice(remaining, 1):
                pending.append((nxt, pool.submit(read, nxt)))
    finally:
        # Abandoned mid-iteration (consumer error / early exit): drop the
        # window before waiting out whatever already started.
        for _, queued in pending:
            queued.cancel()
        pool.shutdown(wait=True)


class DocumentStream:
    """Single-use, ordered stream of documents read with overlap.

    Iterating yields :class:`~repro.text.corpus.Document` objects with
    sequential ids, in path order. The length is known upfront
    (``len(stream)``), which lets consumers pick chunk grains before the
    first byte arrives. After (even partial) consumption the stream
    carries its traffic accounting:

    ``total_cost``
        Aggregate per-file :class:`TaskCost` — the same I/O bill the
        simulator charges.
    ``wait_seconds``
        Wall-clock time the *consumer* spent blocked waiting for reads;
        with enough reader threads this approaches zero and the input
        phase disappears behind compute.
    ``bytes_read`` / ``n_read``
        Text bytes and file count actually delivered.

    Setting ``spans`` to an armed :class:`SpanRecorder` before iterating
    captures one ``read``-phase span per file. :meth:`close` tears down the
    reader pool early — safe to call at any point, including after normal
    exhaustion — so a consumer that aborts mid-stream does not leak reader
    threads.
    """

    def __init__(
        self,
        storage: Storage,
        paths: Iterable[str],
        *,
        workers: int = 1,
        prefetch: int | None = None,
        name: str = "corpus",
        retry: RetryPolicy | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"read workers must be >= 1, got {workers}")
        self.storage = storage
        self.paths = list(paths)
        self.workers = workers
        self.prefetch = prefetch if prefetch is not None else default_prefetch(workers)
        self.name = name
        #: Optional :class:`~repro.exec.resilience.RetryPolicy` for
        #: transient read failures (see :func:`read_paths`).
        self.retry = retry
        self.total_cost = TaskCost()
        self.wait_seconds = 0.0
        self.bytes_read = 0
        self.n_read = 0
        self.spans: SpanRecorder | None = None
        self._consumed = False
        self._active: Iterator[Document] | None = None

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self) -> Iterator[Document]:
        if self._consumed:
            raise StorageError(
                f"document stream {self.name!r} is single-use; build a new one"
            )
        self._consumed = True
        self._active = self._generate()
        return self._active

    def close(self) -> None:
        """Tear down the reader pool if iteration was abandoned mid-stream.

        Closing the active generator runs its ``finally`` clause, which
        closes the underlying :func:`read_paths` generator and shuts the
        reader pool down. Idempotent; a no-op when iteration never started
        or already finished cleanly.
        """
        active, self._active = self._active, None
        if active is not None:
            active.close()  # type: ignore[attr-defined]

    def _generate(self) -> Iterator[Document]:
        reads = self.storage.read_many(
            self.paths,
            workers=self.workers,
            prefetch=self.prefetch,
            recorder=self.spans,
            retry=self.retry,
        )
        try:
            doc_id = 0
            while True:
                blocked = time.perf_counter()
                try:
                    path, text, cost = next(reads)
                except StopIteration:
                    self.wait_seconds += time.perf_counter() - blocked
                    return
                self.wait_seconds += time.perf_counter() - blocked
                self.total_cost.add(cost)
                self.bytes_read += len(text)
                self.n_read += 1
                yield Document(
                    doc_id=doc_id, name=path.rsplit("/", 1)[-1], text=text
                )
                doc_id += 1
        finally:
            close = getattr(reads, "close", None)
            if close is not None:
                close()


def corpus_stream(
    storage: Storage,
    prefix: str = "",
    *,
    workers: int = 1,
    prefetch: int | None = None,
    name: str = "corpus",
    retry: RetryPolicy | None = None,
) -> DocumentStream:
    """Stream every document stored under ``prefix``, in name order.

    The streaming twin of :func:`repro.io.corpus_io.load_corpus`: instead
    of materializing a :class:`~repro.text.corpus.Corpus`, documents flow
    to the consumer as reads complete, ``workers`` files at a time.
    """
    return DocumentStream(
        storage,
        corpus_paths(storage, prefix),
        workers=workers,
        prefetch=prefetch,
        name=name,
        retry=retry,
    )
