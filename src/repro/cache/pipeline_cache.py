"""Phase-level result cache for ``run_pipeline``, with incremental recompute.

:class:`PipelineCache` wraps a :class:`~repro.cache.store.CacheStore` and
hands each run a :class:`RunCacheSession` fingerprinted against the
materialized corpus. The session fronts the three real phases:

* **Full-phase serve** — each phase's output is stored under a key from
  :mod:`repro.cache.keys` (corpus content × semantic config × code
  version). A warm run serves all three phases with zero operator
  recompute and bit-identical output.
* **Incremental recompute** — the word count and transform additionally
  store *per-shard* entries (contiguous document runs). On a changed
  corpus, only shards whose content digest changed are recomputed — via
  the caller-supplied ``compute_subset``/``compute_rows`` callbacks,
  which run on whatever backend the run configured — and composed with
  the cached shards. The document-frequency/vocabulary merge is plain
  integer adds over per-shard tables (order-independent), and transform
  shards are additionally keyed on the global vocabulary+idf fingerprint
  so any vocabulary shift invalidates them wholesale.
* **Safety rails** — k-means is cached whole (its blocking and merge
  order are part of the output contract; there is no shard-composable
  form). A run that quarantined documents no longer corresponds to the
  fingerprinted corpus, so the session disables itself for stores. A
  corrupt entry is deleted and treated as a miss by the store layer.

Served word-count dictionaries are
:class:`~repro.dicts.snapshot.SnapshotDict` views (as on any backend
path); downstream output is bit-identical regardless.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.cache import keys as cache_keys
from repro.cache.store import CacheStore
from repro.dicts.snapshot import SnapshotDict
from repro.ops.kmeans import PHASE_KMEANS, KMeansResult
from repro.ops.tfidf import PHASE_TRANSFORM, TfIdfResult
from repro.ops.wordcount import PHASE_INPUT_WC, WordCountResult
from repro.sparse.matrix import CsrMatrix
from repro.sparse.vector import SparseVector

__all__ = ["PipelineCache", "RunCacheSession", "PhaseCacheStats"]


@dataclass
class PhaseCacheStats:
    """Hit/miss and savings accounting for one phase of one run."""

    hits: int = 0
    misses: int = 0
    shard_hits: int = 0
    shard_misses: int = 0
    #: Bytes of stored payload served instead of recomputed.
    bytes_saved: int = 0
    #: Recorded compute seconds avoided, net of the time spent serving.
    seconds_saved: float = 0.0
    #: Wall seconds spent on lookup + deserialization + composition.
    serve_s: float = 0.0
    #: Entries written by this run (full + shard).
    stored: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "shard_hits": self.shard_hits,
            "shard_misses": self.shard_misses,
            "bytes_saved": self.bytes_saved,
            "seconds_saved": self.seconds_saved,
            "serve_s": self.serve_s,
            "stored": self.stored,
        }


class PipelineCache:
    """A result cache shared across runs (one per on-disk store)."""

    def __init__(
        self,
        store: CacheStore | str,
        shard_docs: int = cache_keys.DEFAULT_SHARD_DOCS,
        max_bytes: int | None = None,
        max_age_s: float | None = None,
    ) -> None:
        if isinstance(store, str):
            store = CacheStore(store, max_bytes=max_bytes,
                               max_age_s=max_age_s)
        self.store = store
        self.shard_docs = max(1, shard_docs)

    @classmethod
    def ensure(cls, value) -> "PipelineCache | None":
        """Coerce ``None`` / path / store / cache into a cache (or None)."""
        if value is None or isinstance(value, cls):
            return value
        return cls(value)

    def begin_run(self, docs, tfidf, kmeans) -> "RunCacheSession | None":
        """Fingerprint ``docs`` and open a session; ``None`` when empty.

        An empty corpus neither stores nor serves — there is nothing to
        key on and the uncached path's empty-input behavior (including
        its errors) must be preserved exactly.
        """
        docs = list(docs)
        if not docs:
            return None
        fingerprint = cache_keys.CorpusFingerprint.from_docs(
            docs, shard_docs=self.shard_docs
        )
        return RunCacheSession(self, fingerprint, docs, tfidf, kmeans)

    def flush(self) -> None:
        self.store.flush()


class RunCacheSession:
    """One run's view of the cache: fixed corpus, fixed operator configs."""

    def __init__(self, cache: PipelineCache, fingerprint, docs, tfidf, kmeans):
        self.cache = cache
        self.store = cache.store
        self.fp = fingerprint
        self.docs = docs
        self._wc_cfg = cache_keys.wordcount_config(tfidf)
        self._tr_cfg = cache_keys.tfidf_config(tfidf)
        self._km_cfg = cache_keys.kmeans_config(kmeans)
        self.wc_key = cache_keys.phase_key(
            "wc", self._wc_cfg, fingerprint.corpus_digest
        )
        self.tr_key = cache_keys.phase_key(
            "tr", self._tr_cfg, fingerprint.corpus_digest
        )
        #: Tiled-transform manifest entry: same corpus × config, distinct
        #: kind so tiled and resident runs never serve each other's shape.
        self.tr_tiled_key = cache_keys.phase_key(
            "trt", self._tr_cfg, fingerprint.corpus_digest
        )
        # km chains the *untiled* transform key on purpose: tiled and
        # resident transforms are bit-identical, so one stored clustering
        # serves both.
        self.km_key = cache_keys.phase_key("km", self._km_cfg, self.tr_key)
        self.stats: dict[str, PhaseCacheStats] = {
            PHASE_INPUT_WC: PhaseCacheStats(),
            PHASE_TRANSFORM: PhaseCacheStats(),
            PHASE_KMEANS: PhaseCacheStats(),
        }
        #: Set when a phase output stopped corresponding to the
        #: fingerprinted corpus (quarantine dropped documents) — storing
        #: would poison the cache for every later run.
        self.disabled = False

    # -- planner integration ---------------------------------------------------------

    def cached_phases(self, prefer_tiled: bool = False) -> frozenset[str]:
        """Phases whose *full* result is present (for plan routing).

        ``prefer_tiled=True`` checks the tiled-manifest entry for the
        transform instead — what a budget-constrained run would serve.
        """
        cached = set()
        if self.wc_key in self.store:
            cached.add(PHASE_INPUT_WC)
        tr_key = self.tr_tiled_key if prefer_tiled else self.tr_key
        if tr_key in self.store:
            cached.add(PHASE_TRANSFORM)
        if self.km_key in self.store:
            cached.add(PHASE_KMEANS)
        return frozenset(cached)

    # -- phase 1: word count -----------------------------------------------------------

    def wordcount(self, step, compute_all, compute_subset) -> WordCountResult:
        """Serve, incrementally compose, or fully compute phase 1.

        ``compute_all()`` runs the phase exactly as the uncached pipeline
        would; ``compute_subset(sub_docs)`` runs the same step over a
        document subset (changed shards only) on the same backend.
        """
        stats = self.stats[PHASE_INPUT_WC]
        t0 = time.perf_counter()
        hit = self.store.get(self.wc_key)
        if hit is not None:
            payload, stored_s, stored_bytes = hit
            result = self._serve_wordcount(payload, step.dict_kind, step.scale)
            serve_s = time.perf_counter() - t0
            stats.hits += 1
            stats.bytes_saved += stored_bytes
            stats.seconds_saved += max(0.0, stored_s - serve_s)
            stats.serve_s += serve_s
            return result
        stats.misses += 1

        shard_keys = [
            cache_keys.shard_key("wc", self._wc_cfg, digest)
            for digest in self.fp.shard_digests
        ]
        shard_payloads: list[dict | None] = []
        hit_seconds = 0.0
        for key in shard_keys:
            entry = self.store.get(key)
            if entry is None:
                shard_payloads.append(None)
            else:
                payload, stored_s, stored_bytes = entry
                shard_payloads.append(payload)
                stats.bytes_saved += stored_bytes
                hit_seconds += stored_s
        n_hits = sum(1 for p in shard_payloads if p is not None)
        stats.shard_hits += n_hits
        stats.shard_misses += len(shard_payloads) - n_hits
        lookup_s = time.perf_counter() - t0

        if n_hits == 0:
            # Nothing to compose with: run the uncached path verbatim.
            t1 = time.perf_counter()
            result = compute_all()
            compute_s = time.perf_counter() - t1
            self._store_wordcount(result, compute_s, shard_keys, stats)
            return result

        # Incremental path: recompute only the changed/added shards (one
        # backend invocation over their concatenated documents), then
        # compose per-shard entries in document order. The df merge is
        # plain integer adds over per-shard tables — order-independent.
        missing = [
            at for at, payload in enumerate(shard_payloads) if payload is None
        ]
        sub_docs = [
            doc
            for at in missing
            for doc in self.docs[self.fp.shards[at][0]:self.fp.shards[at][1]]
        ]
        computed: dict[int, dict] = {}
        compute_s = 0.0
        if missing:
            t1 = time.perf_counter()
            sub_wc = compute_subset(sub_docs)
            compute_s = time.perf_counter() - t1
            if len(sub_wc.doc_tfs) != len(sub_docs):
                # Quarantine dropped documents mid-subset: alignment with
                # the fingerprint is gone. Fall back to the plain path
                # and stop storing for this run.
                self.disabled = True
                return compute_all()
            per_doc_s = compute_s / max(1, len(sub_docs))
            cursor = 0
            for at in missing:
                start, stop = self.fp.shards[at]
                count = stop - start
                entries = [
                    list(tf.items())
                    for tf in sub_wc.doc_tfs[cursor:cursor + count]
                ]
                tokens = sub_wc.doc_token_counts[cursor:cursor + count]
                computed[at] = {
                    "entries": entries,
                    "tokens": list(tokens),
                    "df": _shard_df(entries),
                    "seconds": per_doc_s * count,
                }
                cursor += count

        t2 = time.perf_counter()
        doc_tfs: list = []
        doc_tokens: list[int] = []
        df_total: dict[str, int] = {}
        paths: list[str] = []
        input_bytes = 0
        for at, item in enumerate(self.docs):
            if isinstance(item, str):
                paths.append(f"mem-{at}")
                input_bytes += len(item)
            else:
                paths.append(item.name)
                input_bytes += len(item.text)
        for at in range(len(shard_payloads)):
            payload = shard_payloads[at] or computed[at]
            for entries in payload["entries"]:
                doc_tfs.append(SnapshotDict(entries, kind=step.dict_kind))
            doc_tokens.extend(payload["tokens"])
            for term, count in payload["df"]:
                df_total[term] = df_total.get(term, 0) + count
        result = WordCountResult(
            paths=paths,
            doc_tfs=doc_tfs,
            doc_token_counts=doc_tokens,
            df=SnapshotDict(sorted(df_total.items()), kind=step.dict_kind),
            dict_kind=step.dict_kind,
            input_bytes=input_bytes,
            total_tokens=sum(doc_tokens),
            scale=step.scale,
        )
        stats.serve_s += lookup_s + (time.perf_counter() - t2)
        stats.seconds_saved += hit_seconds
        # Persist the newly computed shards and the composed full result,
        # so the next identical corpus is a single full-phase hit.
        for at, payload in computed.items():
            self.store.put(shard_keys[at], payload, seconds=payload["seconds"])
            stats.stored += 1
        self.store.put(
            self.wc_key,
            _wordcount_payload(result),
            seconds=hit_seconds + compute_s,
        )
        stats.stored += 1
        return result

    def _serve_wordcount(self, payload, dict_kind, scale) -> WordCountResult:
        return WordCountResult(
            paths=list(payload["paths"]),
            doc_tfs=[
                SnapshotDict(entries, kind=dict_kind)
                for entries in payload["entries"]
            ],
            doc_token_counts=list(payload["tokens"]),
            df=SnapshotDict(payload["df"], kind=dict_kind),
            dict_kind=dict_kind,
            input_bytes=payload["input_bytes"],
            total_tokens=payload["total_tokens"],
            scale=scale,
        )

    def _store_wordcount(self, result, compute_s, shard_keys, stats) -> None:
        """Store a fully computed phase-1 result: full entry + every shard."""
        if self.disabled or len(result.doc_tfs) != self.fp.n_docs:
            self.disabled = True
            return
        self.store.put(
            self.wc_key, _wordcount_payload(result), seconds=compute_s
        )
        stats.stored += 1
        per_doc_s = compute_s / max(1, self.fp.n_docs)
        for at, (start, stop) in enumerate(self.fp.shards):
            entries = [
                list(tf.items()) for tf in result.doc_tfs[start:stop]
            ]
            self.store.put(
                shard_keys[at],
                {
                    "entries": entries,
                    "tokens": list(result.doc_token_counts[start:stop]),
                    "df": _shard_df(entries),
                    "seconds": per_doc_s * (stop - start),
                },
                seconds=per_doc_s * (stop - start),
            )
            stats.stored += 1

    # -- phase 2a: transform ------------------------------------------------------------

    def transform(self, tfidf_op, wc, compute_all, compute_rows) -> TfIdfResult:
        """Serve, incrementally compose, or fully compute the transform.

        ``compute_all()`` is the uncached phase; ``compute_rows(vocabulary,
        idf, chunks)`` transforms pre-extracted entry-list chunks (one per
        missing shard) on the run's backend and returns one row list per
        chunk. Shard entries are keyed on the global vocabulary+idf
        fingerprint: a corpus change that shifts either invalidates every
        transform shard, which is what keeps composition bit-identical.
        """
        stats = self.stats[PHASE_TRANSFORM]
        t0 = time.perf_counter()
        hit = self.store.get(self.tr_key)
        if hit is not None:
            payload, stored_s, stored_bytes = hit
            result = self._serve_transform(payload, wc)
            serve_s = time.perf_counter() - t0
            stats.hits += 1
            stats.bytes_saved += stored_bytes
            stats.seconds_saved += max(0.0, stored_s - serve_s)
            stats.serve_s += serve_s
            return result
        stats.misses += 1

        aligned = (
            not self.disabled
            and wc.n_docs == self.fp.n_docs
            and len(wc.doc_tfs) == self.fp.n_docs
        )
        if not aligned:
            # Fused/quarantined word counts have no parent-side entries
            # to shard over; run the plain path and store nothing.
            self.disabled = self.disabled or wc.n_docs != self.fp.n_docs
            return compute_all()

        # Serial prefix, exactly as transform_wordcount's: vocabulary,
        # idf, and the term-id index from the (possibly served) df table.
        from repro.exec.task import TaskCost

        vocabulary, idf, _index = tfidf_op.build_vocabulary(wc, TaskCost())
        vocab_fp = cache_keys.vocab_fingerprint(vocabulary, idf)
        shard_keys = [
            cache_keys.shard_key("tr", self._tr_cfg, digest, extra=vocab_fp)
            for digest in self.fp.shard_digests
        ]
        shard_payloads: list[dict | None] = []
        hit_seconds = 0.0
        for key in shard_keys:
            entry = self.store.get(key)
            if entry is None:
                shard_payloads.append(None)
            else:
                payload, stored_s, stored_bytes = entry
                shard_payloads.append(payload)
                stats.bytes_saved += stored_bytes
                hit_seconds += stored_s
        n_hits = sum(1 for p in shard_payloads if p is not None)
        stats.shard_hits += n_hits
        stats.shard_misses += len(shard_payloads) - n_hits
        lookup_s = time.perf_counter() - t0

        if n_hits == 0:
            t1 = time.perf_counter()
            result = compute_all()
            compute_s = time.perf_counter() - t1
            self._store_transform(result, compute_s, shard_keys, stats)
            return result

        missing = [
            at for at, payload in enumerate(shard_payloads) if payload is None
        ]
        compute_s = 0.0
        computed: dict[int, dict] = {}
        if missing:
            chunks = [
                [
                    list(tf.items())
                    for tf in wc.doc_tfs[
                        self.fp.shards[at][0]:self.fp.shards[at][1]
                    ]
                ]
                for at in missing
            ]
            t1 = time.perf_counter()
            chunk_rows = compute_rows(vocabulary, idf, chunks)
            compute_s = time.perf_counter() - t1
            if sum(len(rows) for rows in chunk_rows) != sum(
                len(chunk) for chunk in chunks
            ):
                self.disabled = True
                return compute_all()
            n_sub = sum(len(chunk) for chunk in chunks)
            per_doc_s = compute_s / max(1, n_sub)
            for at, rows in zip(missing, chunk_rows):
                computed[at] = {
                    "rows": [
                        (list(row.indices), list(row.values)) for row in rows
                    ],
                    "seconds": per_doc_s * len(rows),
                }

        t2 = time.perf_counter()
        rows: list[SparseVector] = []
        for at in range(len(shard_payloads)):
            payload = shard_payloads[at] or computed[at]
            for indices, values in payload["rows"]:
                rows.append(SparseVector(indices, values))
        result = TfIdfResult(
            matrix=CsrMatrix.from_rows(rows, n_cols=len(vocabulary)),
            vocabulary=vocabulary,
            idf=idf,
            wordcount=wc,
        )
        stats.serve_s += lookup_s + (time.perf_counter() - t2)
        stats.seconds_saved += hit_seconds
        for at, payload in computed.items():
            self.store.put(shard_keys[at], payload, seconds=payload["seconds"])
            stats.stored += 1
        self.store.put(
            self.tr_key,
            _transform_payload(result),
            seconds=hit_seconds + compute_s,
        )
        stats.stored += 1
        return result

    def _serve_transform(self, payload, wc) -> TfIdfResult:
        matrix = CsrMatrix(
            list(payload["indptr"]),
            list(payload["indices"]),
            list(payload["data"]),
            payload["n_cols"],
        )
        return TfIdfResult(
            matrix=matrix,
            vocabulary=list(payload["vocabulary"]),
            idf=list(payload["idf"]),
            wordcount=wc,
        )

    def _store_transform(self, result, compute_s, shard_keys, stats) -> None:
        if self.disabled or result.matrix.n_rows != self.fp.n_docs:
            self.disabled = True
            return
        self.store.put(
            self.tr_key, _transform_payload(result), seconds=compute_s
        )
        stats.stored += 1
        per_doc_s = compute_s / max(1, self.fp.n_docs)
        rows = list(result.matrix.iter_rows())
        for at, (start, stop) in enumerate(self.fp.shards):
            self.store.put(
                shard_keys[at],
                {
                    "rows": [
                        (list(row.indices), list(row.values))
                        for row in rows[start:stop]
                    ],
                    "seconds": per_doc_s * (stop - start),
                },
                seconds=per_doc_s * (stop - start),
            )
            stats.stored += 1

    # -- phase 2b: tiled transform --------------------------------------------------------

    def transform_tiled(self, tfidf_op, wc, store, compute_all) -> TfIdfResult:
        """Serve or compute the *tiled* transform (full phase only).

        Entries are keyed on the tile manifest: one small manifest entry
        (vocabulary, idf, per-tile metadata, digest) plus one raw-bytes
        entry per tile, served one tile at a time into the run's fresh
        :class:`~repro.tiles.store.TileStore` — the serve path never
        materializes the matrix, preserving the run's memory budget.
        There is no shard-incremental form: tile boundaries are part of
        the manifest digest, so a changed corpus recomputes the phase.
        A missing or corrupt tile entry deletes the whole family and
        falls back to recompute.
        """
        stats = self.stats[PHASE_TRANSFORM]
        t0 = time.perf_counter()
        hit = self.store.get(self.tr_tiled_key)
        if hit is not None:
            payload, stored_s, stored_bytes = hit
            served = self._serve_transform_tiled(payload, wc, store)
            if served is not None:
                result, tile_bytes = served
                serve_s = time.perf_counter() - t0
                stats.hits += 1
                stats.bytes_saved += stored_bytes + tile_bytes
                stats.seconds_saved += max(0.0, stored_s - serve_s)
                stats.serve_s += serve_s
                return result
            # A damaged family was deleted inside the serve attempt;
            # recompute below exactly as on a plain miss.
        stats.misses += 1
        t1 = time.perf_counter()
        result = compute_all()
        compute_s = time.perf_counter() - t1
        self._store_transform_tiled(result, store, compute_s, stats)
        return result

    def _tile_key(self, manifest_digest: str, name: str) -> str:
        return cache_keys.shard_key(
            "trtile", self._tr_cfg, manifest_digest, extra=name
        )

    def _serve_transform_tiled(self, payload, wc, store):
        """Adopt cached tile blobs into ``store``; ``None`` on any damage."""
        from repro.errors import TileError
        from repro.tiles.matrix import TiledCsrMatrix

        tile_keys = [
            key for key in payload.get("tile_keys", ()) if isinstance(key, str)
        ]
        try:
            store.reset()
            tile_bytes = 0
            for key in tile_keys:
                entry = self.store.get(key)
                if entry is None:
                    raise TileError(f"missing cached tile entry {key}")
                blob, _stored_s, stored_bytes = entry
                store.adopt_tile(blob)  # verifies the CRC before adopting
                tile_bytes += stored_bytes
            manifest = store.seal(payload["n_cols"])
            if manifest.digest() != payload["manifest_digest"]:
                raise TileError("cached tile manifest digest mismatch")
        except (TileError, KeyError, ValueError, TypeError):
            # One bad piece invalidates the family: a partial adoption
            # must not survive to serve a later run.
            for key in tile_keys:
                self.store.delete(key)
            self.store.delete(self.tr_tiled_key)
            store.reset()
            return None
        result = TfIdfResult(
            matrix=TiledCsrMatrix(manifest, store=store),
            vocabulary=list(payload["vocabulary"]),
            idf=list(payload["idf"]),
            wordcount=wc,
        )
        return result, tile_bytes

    def _store_transform_tiled(self, result, store, compute_s, stats) -> None:
        matrix = result.matrix
        manifest = getattr(matrix, "manifest", None)
        if (
            self.disabled
            or manifest is None
            or matrix.n_rows != self.fp.n_docs
        ):
            self.disabled = self.disabled or manifest is None
            return
        digest = manifest.digest()
        tile_keys = []
        per_tile_s = compute_s / max(1, len(manifest.tiles))
        for meta in manifest.tiles:
            key = self._tile_key(digest, meta.name)
            # One tile's raw bytes at a time — the store path stays
            # inside the run's memory budget.
            self.store.put(key, store.tile_bytes(meta), seconds=per_tile_s)
            tile_keys.append(key)
            stats.stored += 1
        self.store.put(
            self.tr_tiled_key,
            {
                "vocabulary": list(result.vocabulary),
                "idf": list(result.idf),
                "n_cols": manifest.n_cols,
                "manifest_digest": digest,
                "tiles": [
                    {
                        "name": meta.name,
                        "row_start": meta.row_start,
                        "n_rows": meta.n_rows,
                        "nnz": meta.nnz,
                        "nbytes": meta.nbytes,
                        "checksum": meta.checksum,
                    }
                    for meta in manifest.tiles
                ],
                "tile_keys": tile_keys,
            },
            seconds=compute_s,
        )
        stats.stored += 1

    # -- phase 3: k-means ---------------------------------------------------------------

    def kmeans_fit(self, compute) -> KMeansResult:
        """Serve or compute the clustering (full phase only — blocking and
        merge order are part of the output contract, nothing to shard)."""
        stats = self.stats[PHASE_KMEANS]
        t0 = time.perf_counter()
        hit = self.store.get(self.km_key)
        if hit is not None:
            payload, stored_s, stored_bytes = hit
            centroids = np.frombuffer(
                payload["centroids"], dtype=np.dtype(payload["dtype"])
            ).reshape(payload["shape"]).copy()
            result = KMeansResult(
                assignments=list(payload["assignments"]),
                centroids=centroids,
                n_iters=payload["n_iters"],
                inertia=payload["inertia"],
                converged=payload["converged"],
                inertia_history=list(payload["inertia_history"]),
            )
            serve_s = time.perf_counter() - t0
            stats.hits += 1
            stats.bytes_saved += stored_bytes
            stats.seconds_saved += max(0.0, stored_s - serve_s)
            stats.serve_s += serve_s
            return result
        stats.misses += 1
        t1 = time.perf_counter()
        result = compute()
        compute_s = time.perf_counter() - t1
        if not self.disabled and len(result.assignments) == self.fp.n_docs:
            centroids = np.ascontiguousarray(result.centroids)
            self.store.put(
                self.km_key,
                {
                    "assignments": list(result.assignments),
                    "centroids": centroids.tobytes(),
                    "dtype": centroids.dtype.str,
                    "shape": tuple(centroids.shape),
                    "n_iters": result.n_iters,
                    "inertia": result.inertia,
                    "converged": result.converged,
                    "inertia_history": list(result.inertia_history),
                },
                seconds=compute_s,
            )
            stats.stored += 1
        return result

    # -- accounting ---------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able accounting view (embedded in results and benchmarks)."""
        phases = {
            phase: stats.as_dict()
            for phase, stats in self.stats.items()
        }
        totals = PhaseCacheStats()
        for stats in self.stats.values():
            totals.hits += stats.hits
            totals.misses += stats.misses
            totals.shard_hits += stats.shard_hits
            totals.shard_misses += stats.shard_misses
            totals.bytes_saved += stats.bytes_saved
            totals.seconds_saved += stats.seconds_saved
            totals.serve_s += stats.serve_s
            totals.stored += stats.stored
        snapshot = totals.as_dict()
        snapshot["phases"] = phases
        snapshot["dir"] = self.store.root
        snapshot["disabled"] = self.disabled
        return snapshot

    def finish(self) -> None:
        """Persist the store index (atomic) at the end of the run."""
        self.store.flush()


def _shard_df(entries_per_doc) -> list[tuple[str, int]]:
    """Per-shard document-frequency table from per-document entries."""
    df: dict[str, int] = {}
    for entries in entries_per_doc:
        for term, _count in entries:
            df[term] = df.get(term, 0) + 1
    return sorted(df.items())


def _wordcount_payload(result: WordCountResult) -> dict:
    return {
        "paths": list(result.paths),
        "entries": [list(tf.items()) for tf in result.doc_tfs],
        "tokens": list(result.doc_token_counts),
        "df": list(result.df.items_sorted()),
        "input_bytes": result.input_bytes,
        "total_tokens": result.total_tokens,
    }


def _transform_payload(result: TfIdfResult) -> dict:
    matrix = result.matrix
    return {
        "indptr": list(matrix.indptr),
        "indices": list(matrix.indices),
        "data": list(matrix.data),
        "n_cols": matrix.n_cols,
        "vocabulary": list(result.vocabulary),
        "idf": list(result.idf),
    }
