"""On-disk result store: pickle payloads, an atomic JSON index, LRU eviction.

Layout under the store root::

    index.json          # key -> {bytes, seconds, used} + an access clock
    objects/<key>.pkl   # one pickle per entry

The index is the only metadata file and is rewritten atomically
(:func:`repro.io.atomic.atomic_write_json`) — killing a process mid-save
leaves either the old index or the new one, never a truncated file.
Payload files get the same temp-file + ``os.replace`` treatment, so a
partially written object can never be observed under its final name.

Corruption is *demoted*, never raised: an unreadable index is rebuilt
from the object files on disk, an unpicklable entry is deleted and
reported as a miss. The cache is an accelerator; the worst a damaged
store may cost is a recompute.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import time

from repro.errors import CacheError
from repro.io.atomic import atomic_write_json

__all__ = ["CacheStore"]

_INDEX_NAME = "index.json"
_OBJECTS_DIR = "objects"


class CacheStore:
    """Keyed pickle store with bounded size, LRU eviction, and TTL.

    ``max_age_s`` is honored *at lookup*: an entry stored longer ago
    than the budget demotes to a miss and its files are deleted — stale
    results must never be served, but nothing pays an expiry sweep on
    the hot path. ``invalidate`` is the explicit form (one key or the
    whole store), the surface behind ``repro cache invalidate``.
    """

    def __init__(
        self,
        root: str,
        max_bytes: int | None = None,
        max_age_s: float | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise CacheError(f"max_bytes must be positive, got {max_bytes}")
        if max_age_s is not None and max_age_s <= 0:
            raise CacheError(f"max_age_s must be positive, got {max_age_s}")
        self.root = root
        self.max_bytes = max_bytes
        self.max_age_s = max_age_s
        self._objects = os.path.join(root, _OBJECTS_DIR)
        os.makedirs(self._objects, exist_ok=True)
        self._clock = 0
        #: key -> {"bytes": int, "seconds": float, "used": int,
        #: "stored_at": float (epoch seconds)}
        self._index: dict[str, dict] = {}
        self._load_index()

    # -- index persistence ---------------------------------------------------------

    def _index_path(self) -> str:
        return os.path.join(self.root, _INDEX_NAME)

    def _load_index(self) -> None:
        try:
            with open(self._index_path(), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            entries = payload["entries"]
            if not isinstance(entries, dict):
                raise ValueError("entries must be an object")
            self._index = {
                key: {
                    "bytes": int(meta["bytes"]),
                    "seconds": float(meta.get("seconds", 0.0)),
                    "used": int(meta.get("used", 0)),
                    # Pre-TTL indexes lack stored_at; the payload file's
                    # mtime is the honest fallback (entries are written
                    # once, so mtime is the store time).
                    "stored_at": float(
                        meta.get("stored_at")
                        or self._mtime(key)
                    ),
                }
                for key, meta in entries.items()
            }
            self._clock = int(payload.get("clock", 0))
        except FileNotFoundError:
            self._index = {}
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupt index: rebuild what we can from the objects on disk.
            # Entries recovered this way lose their recorded compute time
            # (seconds-saved accounting restarts at zero for them).
            self._index = {}
            self._clock = 0
            for name in sorted(os.listdir(self._objects)):
                if not name.endswith(".pkl"):
                    continue
                path = os.path.join(self._objects, name)
                try:
                    size = os.path.getsize(path)
                except OSError:
                    continue
                try:
                    mtime = os.path.getmtime(path)
                except OSError:
                    mtime = time.time()
                self._index[name[: -len(".pkl")]] = {
                    "bytes": size, "seconds": 0.0, "used": 0,
                    "stored_at": mtime,
                }
        # Entries whose payload file vanished are unusable.
        self._index = {
            key: meta
            for key, meta in self._index.items()
            if os.path.exists(self._object_path(key))
        }

    def flush(self) -> None:
        """Persist the index (atomic replace; crash-safe)."""
        atomic_write_json(
            self._index_path(),
            {"version": 1, "clock": self._clock, "entries": self._index},
        )

    # -- entries --------------------------------------------------------------------

    def _object_path(self, key: str) -> str:
        if os.sep in key or key.startswith("."):
            raise CacheError(f"invalid cache key {key!r}")
        return os.path.join(self._objects, key + ".pkl")

    def _mtime(self, key: str) -> float:
        try:
            return os.path.getmtime(self._object_path(key))
        except (OSError, CacheError):
            return time.time()

    def _expired(self, meta: dict) -> bool:
        if self.max_age_s is None:
            return False
        stored_at = float(meta.get("stored_at", 0.0))
        return (time.time() - stored_at) > self.max_age_s

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    @property
    def total_bytes(self) -> int:
        return sum(meta["bytes"] for meta in self._index.values())

    def get(self, key: str):
        """``(payload, stored_seconds, stored_bytes)`` or ``None`` on miss.

        A present-but-unreadable entry (truncated file, unpicklable
        bytes) is deleted and reported as a miss.
        """
        meta = self._index.get(key)
        if meta is None:
            return None
        if self._expired(meta):
            self.delete(key)
            return None
        try:
            with open(self._object_path(key), "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, ValueError,
                AttributeError, ImportError, IndexError):
            self.delete(key)
            return None
        self._clock += 1
        meta["used"] = self._clock
        return payload, meta["seconds"], meta["bytes"]

    def put(self, key: str, payload, seconds: float = 0.0) -> int:
        """Store ``payload`` under ``key``; returns the stored byte count.

        The pickle streams directly into the temp file — no transient
        ``dumps`` copy of the whole payload in memory, which matters for
        matrix-sized entries under a bounded-memory run.
        """
        path = self._object_path(key)
        fd, tmp_path = tempfile.mkstemp(
            prefix=key + ".", suffix=".tmp", dir=self._objects
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
                nbytes = handle.tell()
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self._clock += 1
        self._index[key] = {
            "bytes": nbytes, "seconds": seconds, "used": self._clock,
            "stored_at": time.time(),
        }
        self._evict()
        return nbytes

    def delete(self, key: str) -> None:
        self._index.pop(key, None)
        try:
            os.unlink(self._object_path(key))
        except OSError:
            pass

    def invalidate(self, key: str | None = None) -> int:
        """Delete one entry (or every entry); returns how many fell.

        The explicit-invalidation path behind ``repro cache
        invalidate``; the index is flushed so a crash right after still
        sees the deletion.
        """
        victims = [key] if key is not None else list(self._index)
        dropped = 0
        for victim in victims:
            if victim in self._index:
                self.delete(victim)
                dropped += 1
        self.flush()
        return dropped

    def purge_expired(self) -> int:
        """Delete every entry older than ``max_age_s``; returns the count."""
        victims = [
            key for key, meta in self._index.items() if self._expired(meta)
        ]
        for victim in victims:
            self.delete(victim)
        if victims:
            self.flush()
        return len(victims)

    def _evict(self) -> None:
        """Drop least-recently-used entries until under ``max_bytes``.

        The newest entry always survives, even when it alone exceeds the
        budget — evicting what was just stored would make the store
        useless below a pathological budget.
        """
        if self.max_bytes is None:
            return
        while self.total_bytes > self.max_bytes and len(self._index) > 1:
            victim = min(self._index, key=lambda k: self._index[k]["used"])
            self.delete(victim)
