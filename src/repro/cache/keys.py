"""Deterministic cache keys: corpus content, operator config, code version.

Every operator on the real execution path is deterministic and proven
bit-identical across backends, shm modes, and worker counts — so a phase
result is fully determined by three things: *what went in* (the corpus
content), *how it was processed* (the operator's semantic configuration),
and *which code did the processing*. A cache key is a SHA-256 over
exactly those three, nothing else:

* **Corpus content** — per-document ``sha256(name || text)`` digests,
  folded in order into one corpus digest. Document *order* is part of
  the key: row order is part of the output contract.
* **Operator config** — only knobs that change output *values*. The
  dictionary implementation, grain, backend, worker count, and shm mode
  are deliberately excluded: the equivalence suite proves they never
  change a byte of output, so including them would fragment the cache
  across configurations the planner is free to vary.
* **Code version** — a digest of the source bytes of every module the
  operators execute. Editing a kernel invalidates the whole cache;
  editing a doc string does too (cheap, safe, and zero-maintenance
  compared to hand-bumped format versions).

Incremental recompute adds *shards*: contiguous runs of documents whose
member digests fold into a shard digest. A changed corpus shares shard
digests with its predecessor wherever runs of documents survived, which
is what lets the word count and transform recompute only changed shards.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

__all__ = [
    "CACHE_FORMAT_VERSION",
    "DEFAULT_SHARD_DOCS",
    "CorpusFingerprint",
    "code_version",
    "config_fingerprint",
    "tfidf_config",
    "wordcount_config",
    "kmeans_config",
    "phase_key",
    "shard_key",
    "vocab_fingerprint",
]

#: Bumped when payload *schemas* change shape (entries layout, matrix
#: serialization, ...) without any source edit that code_version() sees —
#: e.g. a store-format migration. Folded into every key.
CACHE_FORMAT_VERSION = 1

#: Documents per shard for incremental recompute. Small enough that a
#: single edited document invalidates little work, large enough that the
#: per-shard store/lookup overhead stays negligible.
DEFAULT_SHARD_DOCS = 32


def _sha(*parts: bytes) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(len(part).to_bytes(8, "little"))
        digest.update(part)
    return digest.hexdigest()


def _doc_digest(name: str, text: str) -> str:
    return _sha(name.encode("utf-8"), text.encode("utf-8"))


@dataclass
class CorpusFingerprint:
    """Per-document and whole-corpus content digests, plus shard digests."""

    doc_digests: list[str]
    shard_docs: int = DEFAULT_SHARD_DOCS
    #: ``(start, stop)`` document ranges, one per shard, covering
    #: ``range(n_docs)`` contiguously.
    shards: list[tuple[int, int]] = field(default_factory=list)
    shard_digests: list[str] = field(default_factory=list)
    corpus_digest: str = ""

    @classmethod
    def from_docs(cls, docs, shard_docs: int = DEFAULT_SHARD_DOCS):
        """Fingerprint a materialized document sequence.

        ``docs`` holds :class:`~repro.text.corpus.Document` objects or
        plain strings; naming mirrors the operators' path derivation so
        the fingerprint keys exactly what the word count will see.
        """
        doc_digests: list[str] = []
        for at, item in enumerate(docs):
            if isinstance(item, str):
                name, text = f"mem-{at}", item
            else:
                name, text = item.name, item.text
            doc_digests.append(_doc_digest(name, text))
        fp = cls(doc_digests=doc_digests, shard_docs=max(1, shard_docs))
        n = len(doc_digests)
        for start in range(0, n, fp.shard_docs):
            stop = min(n, start + fp.shard_docs)
            fp.shards.append((start, stop))
            fp.shard_digests.append(
                _sha(*(d.encode("ascii") for d in doc_digests[start:stop]))
            )
        fp.corpus_digest = _sha(
            str(n).encode("ascii"),
            *(d.encode("ascii") for d in doc_digests),
        )
        return fp

    @property
    def n_docs(self) -> int:
        return len(self.doc_digests)


# -- code version -----------------------------------------------------------------

#: Modules whose source participates in every key: everything that can
#: change an output byte of wc / transform / kmeans.
_VERSIONED_MODULES = (
    "repro.ops.kernels",
    "repro.ops.wordcount",
    "repro.ops.tfidf",
    "repro.ops.kmeans",
    "repro.text.tokenizer",
    "repro.sparse.vector",
    "repro.sparse.matrix",
    "repro.dicts.snapshot",
    "repro.tiles.format",
    "repro.tiles.matrix",
)

_code_version_cache: str | None = None


def code_version() -> str:
    """Digest of the operator modules' source bytes (memoized per process)."""
    global _code_version_cache
    if _code_version_cache is None:
        import importlib

        digest = hashlib.sha256()
        digest.update(str(CACHE_FORMAT_VERSION).encode("ascii"))
        for module_name in _VERSIONED_MODULES:
            module = importlib.import_module(module_name)
            path = module.__file__
            with open(path, "rb") as handle:
                digest.update(module_name.encode("ascii"))
                digest.update(handle.read())
        _code_version_cache = digest.hexdigest()
    return _code_version_cache


# -- operator configuration --------------------------------------------------------


def config_fingerprint(config: dict) -> str:
    """Canonical-JSON digest of a semantic-config mapping."""
    return _sha(
        json.dumps(config, sort_keys=True, separators=(",", ":")).encode("utf-8")
    )


def _tokenizer_config(tokenizer) -> dict:
    return {
        "class": type(tokenizer).__qualname__,
        "drop_stopwords": tokenizer.drop_stopwords,
        "min_length": tokenizer.min_length,
        "max_length": tokenizer.max_length,
    }


def wordcount_config(tfidf) -> dict:
    """Knobs of a :class:`~repro.ops.tfidf.TfIdfOperator` that change
    phase-1 output values (dictionary kind & reserve excluded: views only)."""
    return {"op": "wordcount", "tokenizer": _tokenizer_config(tfidf.tokenizer)}


def tfidf_config(tfidf) -> dict:
    """Knobs that change transform output values."""
    return {
        "op": "tfidf",
        "tokenizer": _tokenizer_config(tfidf.tokenizer),
        "min_df": tfidf.min_df,
    }


def kmeans_config(kmeans) -> dict:
    """Knobs that change k-means output values. Blocking (``grain_docs``)
    is part of the merge-order contract, so it participates."""
    return {
        "op": "kmeans",
        "class": type(kmeans).__qualname__,
        "n_clusters": kmeans.n_clusters,
        "max_iters": kmeans.max_iters,
        "seed": kmeans.seed,
        "init": kmeans.init,
        "grain_docs": kmeans.grain_docs,
    }


# -- key derivation ---------------------------------------------------------------


def phase_key(kind: str, config: dict, content_digest: str) -> str:
    """Full-phase key: ``kind`` + code version + config + input digest."""
    return f"{kind}-" + _sha(
        code_version().encode("ascii"),
        config_fingerprint(config).encode("ascii"),
        content_digest.encode("ascii"),
    )


def shard_key(kind: str, config: dict, shard_digest: str, extra: str = "") -> str:
    """Per-shard key; ``extra`` carries cross-shard context (the transform
    shard's vocabulary fingerprint) so global changes invalidate shards."""
    return f"{kind}-shard-" + _sha(
        code_version().encode("ascii"),
        config_fingerprint(config).encode("ascii"),
        shard_digest.encode("ascii"),
        extra.encode("ascii"),
    )


def vocab_fingerprint(vocabulary: list[str], idf: list[float]) -> str:
    """Digest of the (vocabulary, idf) tables a transform shard depends on.

    The per-document TF entries are shard-local, but the scores are not:
    they multiply global idf values through a global term-id index. Any
    corpus change that shifts the vocabulary or idf therefore changes
    this digest and invalidates every transform shard — exactly the
    invalidation rule that keeps incremental transforms bit-identical.
    """
    import struct

    return _sha(
        "\x00".join(vocabulary).encode("utf-8"),
        struct.pack(f"<{len(idf)}d", *idf),
    )
