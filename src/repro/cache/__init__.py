"""Deterministic phase-level result cache (ROADMAP item 3).

Every real-path operator is deterministic and bit-identical across
backends, shm modes, and worker counts — the preconditions that make
memoization *provably* safe (the read/write-set argument of the
workflow-optimization literature). This package exploits that:

* :mod:`repro.cache.keys` — content/config/code-version keying,
* :mod:`repro.cache.store` — crash-safe on-disk store with LRU eviction,
* :mod:`repro.cache.pipeline_cache` — the phase-level serve/compose/
  compute logic ``run_pipeline(cache=...)`` drives.

See ``docs/caching.md`` for the key-derivation and invalidation rules.
"""

from repro.cache.keys import (
    CACHE_FORMAT_VERSION,
    DEFAULT_SHARD_DOCS,
    CorpusFingerprint,
    code_version,
)
from repro.cache.pipeline_cache import (
    PhaseCacheStats,
    PipelineCache,
    RunCacheSession,
)
from repro.cache.store import CacheStore

__all__ = [
    "CACHE_FORMAT_VERSION",
    "DEFAULT_SHARD_DOCS",
    "CorpusFingerprint",
    "code_version",
    "CacheStore",
    "PipelineCache",
    "RunCacheSession",
    "PhaseCacheStats",
]
