"""Corpus statistics: Heaps'-law fitting and Zipf rank profiles.

The reproduction's synthetic corpora are generated *from* a Heaps curve
and a Zipf-like rank distribution; this module goes the other way — given
any corpus (synthetic or real), it measures vocabulary growth and the
frequency-rank profile and fits the generator's parameters. Used by the
Table 1 benchmark to verify the generator and by users who want to build
a :class:`~repro.text.synth.CorpusProfile` for their own data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import OperatorError
from repro.text.corpus import Corpus
from repro.text.synth import CorpusProfile
from repro.text.tokenizer import Tokenizer

__all__ = [
    "HeapsFit",
    "vocabulary_growth",
    "fit_heaps",
    "zipf_profile",
    "profile_from_corpus",
]


@dataclass(frozen=True)
class HeapsFit:
    """Fitted Heaps'-law parameters ``V(N) = k * N**beta``."""

    k: float
    beta: float
    #: Coefficient of determination of the log-log regression.
    r_squared: float

    def predict(self, n_tokens: float) -> float:
        """Expected vocabulary after ``n_tokens`` tokens."""
        if n_tokens <= 0:
            return 0.0
        return self.k * n_tokens**self.beta


def vocabulary_growth(
    corpus: Corpus, tokenizer: Tokenizer | None = None, points: int = 32
) -> list[tuple[int, int]]:
    """(tokens seen, distinct words) samples along one corpus pass."""
    if not len(corpus):
        raise OperatorError("cannot analyse an empty corpus")
    tokenizer = tokenizer or Tokenizer()
    vocabulary: set[str] = set()
    samples: list[tuple[int, int]] = []
    total = 0
    docs_per_point = max(1, len(corpus) // points)
    for index, doc in enumerate(corpus):
        tokens = tokenizer.tokens(doc.text)
        total += len(tokens)
        vocabulary.update(tokens)
        if index % docs_per_point == docs_per_point - 1 or index == len(corpus) - 1:
            samples.append((total, len(vocabulary)))
    return samples


def fit_heaps(
    corpus: Corpus, tokenizer: Tokenizer | None = None, points: int = 32
) -> HeapsFit:
    """Least-squares fit of Heaps' law in log-log space."""
    samples = [
        (n, v) for n, v in vocabulary_growth(corpus, tokenizer, points) if n > 0 and v > 0
    ]
    if len(samples) < 2:
        raise OperatorError("need at least two growth samples to fit Heaps' law")
    xs = [math.log(n) for n, _ in samples]
    ys = [math.log(v) for _, v in samples]
    n = len(xs)
    mean_x, mean_y = sum(xs) / n, sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        raise OperatorError("degenerate growth curve (all samples equal)")
    beta = sxy / sxx
    intercept = mean_y - beta * mean_x
    predictions = [intercept + beta * x for x in xs]
    ss_res = sum((y - p) ** 2 for y, p in zip(ys, predictions))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return HeapsFit(k=math.exp(intercept), beta=beta, r_squared=r_squared)


def zipf_profile(
    corpus: Corpus, tokenizer: Tokenizer | None = None, top: int = 100
) -> list[tuple[int, int]]:
    """(rank, frequency) pairs for the corpus's ``top`` most common terms."""
    tokenizer = tokenizer or Tokenizer()
    counts: dict[str, int] = {}
    for doc in corpus:
        for token in tokenizer.tokens(doc.text):
            counts[token] = counts.get(token, 0) + 1
    if not counts:
        raise OperatorError("corpus has no tokens")
    ranked = sorted(counts.values(), reverse=True)[:top]
    return list(enumerate(ranked, start=1))


def profile_from_corpus(
    corpus: Corpus,
    tokenizer: Tokenizer | None = None,
    name: str | None = None,
) -> CorpusProfile:
    """Build a generator profile matching a measured corpus.

    The returned profile generates synthetic corpora with the same
    document count, document length and vocabulary-growth behaviour —
    useful for scaling a private data set up or down for what-if studies.
    """
    stats = corpus.stats(tokenizer or Tokenizer())
    fit = fit_heaps(corpus, tokenizer)
    return CorpusProfile(
        name=name or f"fitted-{corpus.name}",
        n_docs=stats.documents,
        mean_doc_tokens=max(1, round(stats.mean_tokens_per_doc)),
        heaps_k=fit.k,
        heaps_beta=min(0.99, max(0.01, fit.beta)),
        paper_documents=stats.documents,
        paper_bytes=stats.total_bytes,
        paper_distinct_words=stats.distinct_words,
    )
