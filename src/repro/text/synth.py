"""Synthetic corpus generation matched to the paper's data sets.

The paper evaluates on two corpora (Table 1):

=============  =========  ========  ==============
Input          Documents  Bytes     Distinct words
=============  =========  ========  ==============
Mix            23 432     62.8 MB   184 743
NSF Abstracts  101 483    310.9 MB  267 914
=============  =========  ========  ==============

Neither corpus is redistributable, so this module generates statistical
stand-ins: documents of Zipf-distributed pseudo-words whose vocabulary
grows by Heaps' law, calibrated so that a full-scale generation matches the
Table 1 row. The experiments only depend on those aggregate statistics —
document count (loop trip counts), tokens and bytes per document (CPU and
I/O work) and vocabulary size (dictionary sizes) — not on what the words
mean.

Every document is generated independently and deterministically from
``(seed, profile, doc index)``, so corpora are reproducible at any scale
and generation order is irrelevant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.text.corpus import Corpus

__all__ = [
    "CorpusProfile",
    "MIX_PROFILE",
    "NSF_ABSTRACTS_PROFILE",
    "generate_corpus",
    "generate_document_text",
    "synth_word",
    "heaps_vocabulary",
]

# -- deterministic word table -----------------------------------------------------

_RAW_COMMON_WORDS = (
    "the of and to in is for that with are on as by this be from at an it "
    "or was which data can has have not will each between used using these "
    "we all its also may than such into other more research study results "
    "new two one system model analysis based high information time process "
    "different systems develop provide under work over method project first "
    "where both through during program development important number use "
    "studies university science found effects large problem theory methods "
    "general group processes role applications design field order techniques "
    "specific structure function approach properties present level provide "
    "chemical materials energy surface species cell cells molecular students "
    "support national award grant investigate understanding determine related "
    "include particular experiments measurements models dynamics control "
    "performance behavior response activity production growth temperature "
    "conditions interactions mechanisms environmental physical experimental "
    "computer software algorithms network networks parallel distributed "
    "memory processor database query queries storage cluster workload"
).split()

_SYLLABLE_CONSONANTS = "bcdfghjklmnprstvwz"
_SYLLABLE_VOWELS = "aeiou"
_SYLLABLE_BASE = len(_SYLLABLE_CONSONANTS) * len(_SYLLABLE_VOWELS)  # 90


def _is_syllabic(word: str) -> bool:
    """True when ``word`` is a sequence of consonant+vowel syllables.

    Such words could collide with generated pseudo-words, so they are
    filtered out of the common-word table to keep rank→word injective.
    """
    if len(word) % 2 or not word:
        return False
    return all(
        word[i] in _SYLLABLE_CONSONANTS and word[i + 1] in _SYLLABLE_VOWELS
        for i in range(0, len(word), 2)
    )


# Deduplicate (the raw table is hand-written) and drop syllabic-shaped words.
_COMMON_WORDS = tuple(
    dict.fromkeys(word for word in _RAW_COMMON_WORDS if not _is_syllabic(word))
)


def synth_word(rank: int) -> str:
    """Deterministic, injective mapping from frequency rank to a word.

    Low ranks map to real common English words (short, like natural
    frequent words); higher ranks map to pronounceable syllabic
    pseudo-words whose length grows with the rank, mimicking the
    rank/length correlation of natural vocabularies.
    """
    if rank < 0:
        raise ConfigurationError(f"word rank must be >= 0, got {rank}")
    if rank < len(_COMMON_WORDS):
        return _COMMON_WORDS[rank]
    residue = rank - len(_COMMON_WORDS)
    syllables = []
    while True:
        digit = residue % _SYLLABLE_BASE
        syllables.append(
            _SYLLABLE_CONSONANTS[digit % len(_SYLLABLE_CONSONANTS)]
            + _SYLLABLE_VOWELS[digit // len(_SYLLABLE_CONSONANTS)]
        )
        residue //= _SYLLABLE_BASE
        if residue == 0:
            break
        residue -= 1  # bijective numeration: no leading-zero collisions
    if len(syllables) < 2:
        syllables.append("x" + _SYLLABLE_VOWELS[rank % len(_SYLLABLE_VOWELS)])
    return "".join(reversed(syllables))


def heaps_vocabulary(k: float, beta: float, n_tokens: float) -> float:
    """Heaps'-law vocabulary estimate: ``V(N) = k * N**beta``."""
    if n_tokens <= 0:
        return 0.0
    return k * n_tokens**beta


# -- profiles ----------------------------------------------------------------------


@dataclass(frozen=True)
class CorpusProfile:
    """Statistical description of a corpus for the generator.

    ``paper_*`` fields record the Table 1 row this profile models so that
    benchmarks can report measured-vs-paper numbers; the generator itself
    only consumes the other fields.
    """

    name: str
    #: Number of documents at full scale.
    n_docs: int
    #: Mean tokens per document (document lengths are lognormal around it).
    mean_doc_tokens: int
    #: Heaps' law coefficient, calibrated against the paper vocabulary.
    heaps_k: float
    #: Heaps' law exponent.
    heaps_beta: float
    #: Lognormal sigma of document lengths.
    doc_length_sigma: float = 0.35
    #: Tokens per generated sentence (adds the period/capital bytes).
    sentence_len: int = 13
    #: Paper's Table 1 row, for reporting.
    paper_documents: int = 0
    paper_bytes: int = 0
    paper_distinct_words: int = 0

    def __post_init__(self) -> None:
        if self.n_docs < 1:
            raise ConfigurationError("profile needs at least one document")
        if self.mean_doc_tokens < 1:
            raise ConfigurationError("mean_doc_tokens must be >= 1")
        if not 0 < self.heaps_beta < 1:
            raise ConfigurationError("heaps_beta must lie in (0, 1)")

    @property
    def total_tokens(self) -> int:
        """Nominal token count of the full-scale corpus."""
        return self.n_docs * self.mean_doc_tokens

    def expected_vocabulary(self, n_tokens: float | None = None) -> int:
        """Heaps estimate of distinct words after ``n_tokens`` tokens."""
        if n_tokens is None:
            n_tokens = self.total_tokens
        return int(round(heaps_vocabulary(self.heaps_k, self.heaps_beta, n_tokens)))

    def scaled(self, scale: float) -> "CorpusProfile":
        """Profile with the document count scaled down (or up) by ``scale``.

        Per-document statistics and the Heaps curve are unchanged, so a
        scaled corpus is a faithful prefix-sized sample of the full one.
        """
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        return replace(
            self,
            name=self.name if scale == 1.0 else f"{self.name}@{scale:g}",
            n_docs=max(1, int(round(self.n_docs * scale))),
        )


def _calibrated_profile(
    name: str,
    documents: int,
    paper_bytes: int,
    distinct_words: int,
    beta: float = 0.53,
    bytes_per_token: float = 5.6,
) -> CorpusProfile:
    """Build a profile whose full-scale generation matches a Table 1 row."""
    mean_doc_tokens = max(1, int(round(paper_bytes / documents / bytes_per_token)))
    total_tokens = documents * mean_doc_tokens
    heaps_k = distinct_words / total_tokens**beta
    return CorpusProfile(
        name=name,
        n_docs=documents,
        mean_doc_tokens=mean_doc_tokens,
        heaps_k=heaps_k,
        heaps_beta=beta,
        paper_documents=documents,
        paper_bytes=paper_bytes,
        paper_distinct_words=distinct_words,
    )


#: Table 1, row "Mix": 23 432 documents, 62.8 MB, 184 743 distinct words.
MIX_PROFILE = _calibrated_profile(
    "mix", documents=23_432, paper_bytes=65_853_849, distinct_words=184_743
)

#: Table 1, row "NSF Abstracts": 101 483 documents, 310.9 MB, 267 914 words.
NSF_ABSTRACTS_PROFILE = _calibrated_profile(
    "nsf-abstracts",
    documents=101_483,
    paper_bytes=325_998_182,
    distinct_words=267_914,
)


# -- generation ---------------------------------------------------------------------


def _doc_rng(profile: CorpusProfile, seed: int, index: int) -> random.Random:
    return random.Random(f"{profile.name}/{seed}/{index}")


def generate_document_text(
    profile: CorpusProfile, index: int, seed: int = 0
) -> str:
    """Generate the text of document ``index`` of the profile's corpus.

    The document samples existing vocabulary log-uniformly over ranks
    (a Zipf(≈1) frequency profile) and introduces the expected number of
    brand-new words for its position in the corpus-wide token stream, per
    the profile's Heaps curve.
    """
    rng = _doc_rng(profile, seed, index)
    length = max(8, int(round(profile.mean_doc_tokens * rng.lognormvariate(
        0.0, profile.doc_length_sigma
    ))))

    # Position of this document in the nominal global token stream.
    start = index * profile.mean_doc_tokens
    vocab_before = max(1.0, heaps_vocabulary(
        profile.heaps_k, profile.heaps_beta, max(1, start)
    ))
    expected_new = heaps_vocabulary(
        profile.heaps_k, profile.heaps_beta, start + length
    ) - heaps_vocabulary(profile.heaps_k, profile.heaps_beta, max(1, start))
    n_new = int(expected_new)
    if rng.random() < expected_new - n_new:
        n_new += 1
    n_new = min(n_new, length)

    tokens: list[str] = []
    for _ in range(length - n_new):
        # Log-uniform rank over the vocabulary seen so far = Zipf-like.
        rank = int(vocab_before ** rng.random()) - 1
        tokens.append(synth_word(max(0, rank)))
    first_new_rank = int(vocab_before)
    new_tokens = [synth_word(first_new_rank + j) for j in range(n_new)]
    for token in new_tokens:
        tokens.insert(rng.randrange(len(tokens) + 1), token)

    # Assemble sentences: capitalised first word, period at the end.
    sentences = []
    for at in range(0, len(tokens), profile.sentence_len):
        sentence = tokens[at : at + profile.sentence_len]
        sentence[0] = sentence[0].capitalize()
        sentences.append(" ".join(sentence) + ".")
    return " ".join(sentences)


def generate_corpus(
    profile: CorpusProfile, scale: float = 1.0, seed: int = 0
) -> Corpus:
    """Generate a corpus for ``profile`` at the given scale.

    ``scale`` multiplies the document count only; per-document statistics
    stay at full-scale values so measured per-document costs extrapolate
    linearly. Benchmarks typically run at ``scale`` between 0.005 and 0.05.
    """
    scaled_profile = profile.scaled(scale)
    corpus = Corpus(name=scaled_profile.name)
    for index in range(scaled_profile.n_docs):
        corpus.add(
            f"{scaled_profile.name}-{index:06d}.txt",
            generate_document_text(scaled_profile, index, seed=seed),
        )
    return corpus
