"""Text substrate: tokenization, corpora and synthetic data generation."""

from repro.text.analysis import (
    HeapsFit,
    fit_heaps,
    profile_from_corpus,
    vocabulary_growth,
    zipf_profile,
)
from repro.text.corpus import Corpus, CorpusStats, Document
from repro.text.normalize import fold_text, is_word_char
from repro.text.stopwords import ENGLISH_STOPWORDS, is_stopword
from repro.text.synth import (
    MIX_PROFILE,
    NSF_ABSTRACTS_PROFILE,
    CorpusProfile,
    generate_corpus,
    generate_document_text,
    heaps_vocabulary,
    synth_word,
)
from repro.text.tokenizer import TokenizedDocument, Tokenizer

__all__ = [
    "Corpus",
    "CorpusStats",
    "Document",
    "Tokenizer",
    "TokenizedDocument",
    "fold_text",
    "is_word_char",
    "ENGLISH_STOPWORDS",
    "is_stopword",
    "CorpusProfile",
    "MIX_PROFILE",
    "NSF_ABSTRACTS_PROFILE",
    "generate_corpus",
    "generate_document_text",
    "heaps_vocabulary",
    "synth_word",
    "HeapsFit",
    "fit_heaps",
    "vocabulary_growth",
    "zipf_profile",
    "profile_from_corpus",
]
