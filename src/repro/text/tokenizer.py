"""Document tokenizer with work metering.

Tokenization is half of the TF/IDF operator's phase 1 ("data input,
tokenization and hash table operations", §3.2). The tokenizer therefore
reports how many bytes and tokens it processed, which the operator converts
into simulated CPU time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.text.normalize import fold_text
from repro.text.stopwords import is_stopword

__all__ = ["Tokenizer", "TokenizedDocument"]


@dataclass
class TokenizedDocument:
    """Token stream of one document plus the work needed to produce it."""

    tokens: list[str]
    bytes_processed: int

    @property
    def n_tokens(self) -> int:
        return len(self.tokens)


class Tokenizer:
    """Splits raw text into folded word tokens.

    Parameters
    ----------
    drop_stopwords:
        Remove common English words from the stream.
    min_length / max_length:
        Discard tokens outside these length bounds. ``max_length`` guards
        against pathological unbroken runs (base64 blobs, URLs).
    """

    def __init__(
        self,
        drop_stopwords: bool = False,
        min_length: int = 1,
        max_length: int = 64,
    ) -> None:
        self.drop_stopwords = drop_stopwords
        self.min_length = min_length
        self.max_length = max_length

    def tokenize(self, text: str) -> TokenizedDocument:
        """Tokenize ``text``, reporting bytes processed for cost accounting."""
        folded = fold_text(text)
        raw = folded.split()
        tokens = [
            token
            for token in raw
            if self.min_length <= len(token) <= self.max_length
            and not (self.drop_stopwords and is_stopword(token))
        ]
        return TokenizedDocument(tokens=tokens, bytes_processed=len(text))

    def tokens(self, text: str) -> list[str]:
        """Convenience: tokenize and return only the token list."""
        return self.tokenize(text).tokens
