"""Document and corpus model.

A :class:`Corpus` is the in-memory form of a directory of text files — the
input of the TF/IDF operator. It also carries the summary statistics the
paper reports in Table 1 (documents, bytes, distinct words).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import OperatorError
from repro.text.tokenizer import Tokenizer

__all__ = ["Document", "Corpus", "CorpusStats"]


@dataclass
class Document:
    """One text document."""

    doc_id: int
    name: str
    text: str

    @property
    def n_bytes(self) -> int:
        """Size of the document's raw text in bytes (UTF-8 length ~ ASCII)."""
        return len(self.text)


@dataclass(frozen=True)
class CorpusStats:
    """Table 1 summary of a corpus."""

    documents: int
    total_bytes: int
    distinct_words: int
    total_tokens: int

    @property
    def mean_bytes_per_doc(self) -> float:
        return self.total_bytes / self.documents if self.documents else 0.0

    @property
    def mean_tokens_per_doc(self) -> float:
        return self.total_tokens / self.documents if self.documents else 0.0


@dataclass
class Corpus:
    """Ordered collection of documents."""

    name: str
    documents: list[Document] = field(default_factory=list)

    def add(self, name: str, text: str) -> Document:
        """Append a document, assigning the next id."""
        doc = Document(doc_id=len(self.documents), name=name, text=text)
        self.documents.append(doc)
        return doc

    @classmethod
    def from_texts(cls, name: str, texts: Iterable[str]) -> "Corpus":
        """Build a corpus from raw strings, naming documents ``doc-NNNNNN``."""
        corpus = cls(name=name)
        for i, text in enumerate(texts):
            corpus.add(f"doc-{i:06d}", text)
        return corpus

    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self.documents)

    def __getitem__(self, index: int) -> Document:
        return self.documents[index]

    @property
    def total_bytes(self) -> int:
        """Total raw text size of the corpus in bytes."""
        return sum(doc.n_bytes for doc in self.documents)

    def stats(self, tokenizer: Tokenizer | None = None) -> CorpusStats:
        """Compute the Table 1 statistics by a full tokenization pass."""
        if not self.documents:
            raise OperatorError(f"corpus {self.name!r} is empty")
        tokenizer = tokenizer or Tokenizer()
        vocabulary: set[str] = set()
        total_tokens = 0
        total_bytes = 0
        for doc in self.documents:
            tokenized = tokenizer.tokenize(doc.text)
            vocabulary.update(tokenized.tokens)
            total_tokens += tokenized.n_tokens
            total_bytes += tokenized.bytes_processed
        return CorpusStats(
            documents=len(self.documents),
            total_bytes=total_bytes,
            distinct_words=len(vocabulary),
            total_tokens=total_tokens,
        )
