"""Default English stop-word list.

TF/IDF already down-weights ubiquitous terms, so stopping is optional in
this library (the paper's operator does not mention stopping either); the
list is provided for the examples and for users who want smaller
vocabularies.
"""

from __future__ import annotations

__all__ = ["ENGLISH_STOPWORDS", "is_stopword"]

ENGLISH_STOPWORDS = frozenset(
    """
    a about above after again against all am an and any are arent as at be
    because been before being below between both but by cant cannot could
    couldnt did didnt do does doesnt doing dont down during each few for from
    further had hadnt has hasnt have havent having he her here hers herself
    him himself his how i if in into is isnt it its itself lets me more most
    mustnt my myself no nor not of off on once only or other ought our ours
    ourselves out over own same shant she should shouldnt so some such than
    that the their theirs them themselves then there these they this those
    through to too under until up very was wasnt we were werent what when
    where which while who whom why with wont would wouldnt you your yours
    yourself yourselves
    """.split()
)


def is_stopword(token: str) -> bool:
    """True when ``token`` (already folded) is an English stop word."""
    return token in ENGLISH_STOPWORDS
