"""Character-level normalization used by the tokenizer.

Keeps the pipeline honest about what a "word" is: case-folded runs of
letters and digits, with everything else acting as a separator. The
translation table is built once at import time; per-call work is a single
``str.translate`` pass, which is the cheapest full scan CPython offers and
maps naturally onto the simulator's bytes-processed cost metric.
"""

from __future__ import annotations

__all__ = ["fold_text", "is_word_char"]

_TABLE = {}
for code in range(256):
    char = chr(code)
    if char.isalnum():
        _TABLE[code] = char.lower()
    elif char == "'":
        # Keep intra-word apostrophes out: don't -> dont, matching common
        # analytics tokenizers.
        _TABLE[code] = None
    else:
        _TABLE[code] = " "


def fold_text(text: str) -> str:
    """Lowercase ``text`` and replace every non-alphanumeric with a space.

    Non-Latin-1 characters are treated as separators so that downstream
    token streams contain only predictable ASCII-ish words.
    """
    return text.translate(_TABLE) if text.isascii() else _fold_slow(text)


def _fold_slow(text: str) -> str:
    chars = []
    for char in text:
        if char.isascii() and char.isalnum():
            chars.append(char.lower())
        elif char == "'":
            continue
        else:
            chars.append(" ")
    return "".join(chars)


def is_word_char(char: str) -> bool:
    """True when the character survives folding as part of a word."""
    return char.isascii() and char.isalnum()
