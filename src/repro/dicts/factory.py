"""Factory and registry for dictionary implementations.

Operators never instantiate a concrete dictionary type directly: they
receive a *kind* string from the workflow plan (``"map"``,
``"unordered_map"`` or ``"dict"``) and call :func:`make_dict`. This is the
seam the paper's fourth optimization turns: the planner assigns a possibly
different kind to each workflow phase.
"""

from __future__ import annotations

from typing import Callable

from repro.dicts.api import Dictionary
from repro.dicts.btree import BTreeMap
from repro.dicts.builtin import BuiltinDict
from repro.dicts.hashmap import DEFAULT_RESERVE, HashMap
from repro.dicts.treemap import TreeMap
from repro.errors import ConfigurationError

__all__ = [
    "make_dict",
    "register_dict_kind",
    "available_kinds",
    "dict_candidate_pairs",
    "DEFAULT_KIND",
    "PLANNER_KINDS",
]

#: Kind used when a plan does not specify one.
DEFAULT_KIND = "map"

#: Kinds planners enumerate by default. The paper's experiments compare
#: ``std::map`` against ``std::unordered_map``; ``btree`` and ``dict`` stay
#: registered for direct use but are not part of the default search space.
PLANNER_KINDS = ("map", "unordered_map")

_REGISTRY: dict[str, Callable[[int], Dictionary]] = {
    "map": lambda reserve: TreeMap(),
    "unordered_map": lambda reserve: HashMap(reserve=reserve),
    "btree": lambda reserve: BTreeMap(),
    "dict": lambda reserve: BuiltinDict(),
}


def make_dict(kind: str = DEFAULT_KIND, reserve: int = DEFAULT_RESERVE) -> Dictionary:
    """Instantiate a dictionary of the requested ``kind``.

    Parameters
    ----------
    kind:
        One of :func:`available_kinds` (``"map"``, ``"unordered_map"``,
        ``"dict"`` unless extended).
    reserve:
        Pre-sizing hint; only meaningful for hash-based kinds. Defaults to
        the paper's 4K pre-size.
    """
    try:
        builder = _REGISTRY[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown dictionary kind {kind!r}; available: {available_kinds()}"
        ) from None
    return builder(reserve)


def register_dict_kind(kind: str, builder: Callable[[int], Dictionary]) -> None:
    """Register a custom dictionary implementation under ``kind``.

    ``builder`` receives the reserve hint and must return a fresh
    :class:`Dictionary`. Registering an existing kind replaces it, which is
    useful in tests; production code should pick fresh names.
    """
    if not kind:
        raise ConfigurationError("dictionary kind must be a non-empty string")
    _REGISTRY[kind] = builder


def available_kinds() -> list[str]:
    """Sorted list of registered dictionary kinds."""
    return sorted(_REGISTRY)


def dict_candidate_pairs(
    kinds: tuple[str, ...] = PLANNER_KINDS, *, mixed: bool = True
) -> list[tuple[str, str]]:
    """Candidate ``(wc_kind, transform_kind)`` pairs for planners.

    The single source of truth for dictionary-candidate enumeration: both
    the virtual-time :class:`repro.core.planner.WorkflowPlanner` and the
    real-execution :class:`repro.plan.AdaptivePlanner` call this instead of
    hard-coding the list. Uniform pairs come first (same kind in both
    phases), then — when ``mixed`` is true — the cross pairs that let the
    planner assign a different implementation per phase, the paper's
    fourth optimization.
    """
    for kind in kinds:
        if kind not in _REGISTRY:
            raise ConfigurationError(
                f"unknown dictionary kind {kind!r}; available: {available_kinds()}"
            )
    pairs = [(kind, kind) for kind in kinds]
    if mixed:
        pairs.extend(
            (a, b) for a in kinds for b in kinds if a != b
        )
    return pairs
