"""Dictionary substrate: the paper's §3.4 data-structure study.

Provides from-scratch implementations of the two standardized structures
the paper compares — a red-black tree (``std::map`` analogue) and an
open-addressing hash table (``std::unordered_map`` analogue) — behind a
common instrumented :class:`~repro.dicts.api.Dictionary` protocol, plus
cost profiles that convert their operation counts into simulated CPU time
and memory traffic.
"""

from repro.dicts.api import Dictionary, OpStats
from repro.dicts.btree import BTreeMap
from repro.dicts.builtin import BuiltinDict
from repro.dicts.cost import (
    BTREE_PROFILE,
    BUILTIN_PROFILE,
    HASHMAP_PROFILE,
    TREEMAP_PROFILE,
    DictCostProfile,
    profile_for_kind,
)
from repro.dicts.counter import CountingDict, count_tokens
from repro.dicts.factory import (
    DEFAULT_KIND,
    available_kinds,
    make_dict,
    register_dict_kind,
)
from repro.dicts.hashmap import HashMap
from repro.dicts.treemap import TreeMap

__all__ = [
    "Dictionary",
    "OpStats",
    "TreeMap",
    "HashMap",
    "BTreeMap",
    "BuiltinDict",
    "CountingDict",
    "count_tokens",
    "DictCostProfile",
    "TREEMAP_PROFILE",
    "HASHMAP_PROFILE",
    "BTREE_PROFILE",
    "BUILTIN_PROFILE",
    "profile_for_kind",
    "make_dict",
    "register_dict_kind",
    "available_kinds",
    "DEFAULT_KIND",
]
