"""B-tree map — a cache-conscious ordered dictionary.

The paper compares the two structures the C++ standard library offers;
an obvious "future work" question is whether a *cache-friendly* ordered
structure gets the best of both: sorted iteration like ``std::map`` with
far fewer dependent pointer chases per lookup. A B-tree answers it — each
node holds up to ``2·order − 1`` keys scanned within one or two cache
lines, so a lookup costs O(log_B n) node visits instead of O(log₂ n).

Instrumentation: node visits count as ``probes`` (one cache-line-ish
touch each) and within-node binary-search steps as ``comparisons``, so
the cost profile can weigh pointer chases and in-node work separately.

This is an extension beyond the paper; the ablation benchmark
``benchmarks/test_ablation_btree.py`` places it in the Figure 4 design
space.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Any, Iterator

from repro.dicts.api import Dictionary
from repro.errors import ConfigurationError

__all__ = ["BTreeMap", "DEFAULT_ORDER", "BTREE_NODE_HEADER_BYTES"]

#: Minimum degree (t): nodes hold t-1 .. 2t-1 keys.
DEFAULT_ORDER = 16

#: Fixed per-node footprint besides the key/value/child arrays.
BTREE_NODE_HEADER_BYTES = 32

#: Modelled bytes per key slot (key ref + value ref).
_SLOT_BYTES = 16


class _Node:
    __slots__ = ("keys", "values", "children")

    def __init__(self, leaf: bool) -> None:
        self.keys: list[Any] = []
        self.values: list[Any] = []
        self.children: list["_Node"] = [] if leaf else []
        if not leaf:
            self.children = []

    @property
    def leaf(self) -> bool:
        return not self.children


class BTreeMap(Dictionary):
    """Ordered dictionary backed by a B-tree of minimum degree ``order``.

    Deletion uses the lazy standard approach (rebalance on the way down);
    iteration is an in-order walk yielding sorted keys, so
    :meth:`items_sorted` is free just like the red-black tree's.
    """

    kind = "btree"

    def __init__(self, order: int = DEFAULT_ORDER) -> None:
        super().__init__()
        if order < 2:
            raise ConfigurationError(f"order must be >= 2, got {order}")
        self._t = order
        self._root = _Node(leaf=True)
        self._size = 0
        self._n_nodes = 1
        self._key_bytes = 0
        self.stats.alloc_bytes += self._node_bytes()

    # -- sizing ---------------------------------------------------------------

    def _node_bytes(self) -> int:
        return BTREE_NODE_HEADER_BYTES + (2 * self._t - 1) * _SLOT_BYTES

    def resident_bytes(self) -> int:
        return self._n_nodes * self._node_bytes() + self._key_bytes

    # -- search ----------------------------------------------------------------

    def _search_node(self, node: _Node, key: Any) -> tuple[_Node, int, bool]:
        """Descend to the node containing (or that would contain) ``key``."""
        while True:
            self.stats.probes += 1
            index = bisect_left(node.keys, key)
            # Binary search within the node: log2 of the node's fill.
            self.stats.comparisons += max(1, len(node.keys)).bit_length()
            if index < len(node.keys) and node.keys[index] == key:
                return node, index, True
            if node.leaf:
                return node, index, False
            node = node.children[index]

    def get(self, key: Any, default: Any = None) -> Any:
        self.stats.lookups += 1
        node, index, found = self._search_node(self._root, key)
        if found:
            self.stats.hits += 1
            return node.values[index]
        self.stats.misses += 1
        return default

    def __contains__(self, key: Any) -> bool:
        self.stats.lookups += 1
        _, _, found = self._search_node(self._root, key)
        if found:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        return found

    def __len__(self) -> int:
        return self._size

    # -- insertion -------------------------------------------------------------

    def _split_child(self, parent: _Node, index: int) -> None:
        t = self._t
        child = parent.children[index]
        sibling = _Node(leaf=child.leaf)
        self._n_nodes += 1
        self.stats.alloc_bytes += self._node_bytes()

        parent.keys.insert(index, child.keys[t - 1])
        parent.values.insert(index, child.values[t - 1])
        parent.children.insert(index + 1, sibling)

        sibling.keys = child.keys[t:]
        sibling.values = child.values[t:]
        child.keys = child.keys[: t - 1]
        child.values = child.values[: t - 1]
        if not child.leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]
        # Splitting moves half a node's worth of entries.
        self.stats.rehash_moves += t

    def put(self, key: Any, value: Any) -> None:
        root = self._root
        if len(root.keys) == 2 * self._t - 1:
            new_root = _Node(leaf=False)
            new_root.children.append(root)
            self._root = new_root
            self._n_nodes += 1
            self.stats.alloc_bytes += self._node_bytes()
            self._split_child(new_root, 0)
        self._insert_nonfull(self._root, key, value)

    def _insert_nonfull(self, node: _Node, key: Any, value: Any) -> None:
        while True:
            self.stats.probes += 1
            index = bisect_left(node.keys, key)
            self.stats.comparisons += max(1, len(node.keys)).bit_length()
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value
                self.stats.updates += 1
                return
            if node.leaf:
                node.keys.insert(index, key)
                node.values.insert(index, value)
                self._size += 1
                self.stats.inserts += 1
                if isinstance(key, str):
                    self._key_bytes += len(key)
                    self.stats.alloc_bytes += len(key)
                return
            child = node.children[index]
            if len(child.keys) == 2 * self._t - 1:
                self._split_child(node, index)
                if key > node.keys[index]:
                    index += 1
                elif key == node.keys[index]:
                    node.values[index] = value
                    self.stats.updates += 1
                    return
            node = node.children[index]

    # -- deletion ---------------------------------------------------------------

    def remove(self, key: Any) -> bool:
        if key not in self._unmetered_view():
            return False
        self._delete(self._root, key)
        self._size -= 1
        if isinstance(key, str):
            self._key_bytes -= len(key)
        if not self._root.leaf and not self._root.keys:
            self._root = self._root.children[0]
            self._n_nodes -= 1
        return True

    def _unmetered_view(self) -> set:
        """Key set without touching counters (internal pre-check)."""
        keys = set()
        stack = [self._root]
        while stack:
            node = stack.pop()
            keys.update(node.keys)
            stack.extend(node.children)
        return keys

    def _delete(self, node: _Node, key: Any) -> None:
        t = self._t
        index = bisect_left(node.keys, key)
        self.stats.probes += 1
        if index < len(node.keys) and node.keys[index] == key:
            if node.leaf:
                node.keys.pop(index)
                node.values.pop(index)
                return
            left, right = node.children[index], node.children[index + 1]
            if len(left.keys) >= t:
                pred_node = left
                while not pred_node.leaf:
                    pred_node = pred_node.children[-1]
                node.keys[index] = pred_node.keys[-1]
                node.values[index] = pred_node.values[-1]
                self._delete(left, pred_node.keys[-1])
            elif len(right.keys) >= t:
                succ_node = right
                while not succ_node.leaf:
                    succ_node = succ_node.children[0]
                node.keys[index] = succ_node.keys[0]
                node.values[index] = succ_node.values[0]
                self._delete(right, succ_node.keys[0])
            else:
                self._merge_children(node, index)
                self._delete(left, key)
            return
        if node.leaf:
            return  # not present (guarded by remove())
        child = node.children[index]
        if len(child.keys) < t:
            index = self._fill_child(node, index)
            child = node.children[index]
        self._delete(child, key)

    def _merge_children(self, node: _Node, index: int) -> None:
        left, right = node.children[index], node.children[index + 1]
        left.keys.append(node.keys.pop(index))
        left.values.append(node.values.pop(index))
        left.keys.extend(right.keys)
        left.values.extend(right.values)
        left.children.extend(right.children)
        node.children.pop(index + 1)
        self._n_nodes -= 1
        self.stats.rehash_moves += len(right.keys)

    def _fill_child(self, node: _Node, index: int) -> int:
        """Ensure child ``index`` has >= t keys; returns the (possibly
        shifted) index to continue the descent at."""
        t = self._t
        child = node.children[index]
        if index > 0 and len(node.children[index - 1].keys) >= t:
            left = node.children[index - 1]
            child.keys.insert(0, node.keys[index - 1])
            child.values.insert(0, node.values[index - 1])
            node.keys[index - 1] = left.keys.pop()
            node.values[index - 1] = left.values.pop()
            if not left.leaf:
                child.children.insert(0, left.children.pop())
            return index
        if index < len(node.children) - 1 and len(
            node.children[index + 1].keys
        ) >= t:
            right = node.children[index + 1]
            child.keys.append(node.keys[index])
            child.values.append(node.values[index])
            node.keys[index] = right.keys.pop(0)
            node.values[index] = right.values.pop(0)
            if not right.leaf:
                child.children.append(right.children.pop(0))
            return index
        if index < len(node.children) - 1:
            self._merge_children(node, index)
            return index
        self._merge_children(node, index - 1)
        return index - 1

    # -- iteration ---------------------------------------------------------------

    def items(self) -> Iterator[tuple[Any, Any]]:
        yield from self._walk(self._root)

    def _walk(self, node: _Node) -> Iterator[tuple[Any, Any]]:
        if node.leaf:
            for key, value in zip(node.keys, node.values):
                self.stats.iterations += 1
                yield key, value
            return
        for i, (key, value) in enumerate(zip(node.keys, node.values)):
            yield from self._walk(node.children[i])
            self.stats.iterations += 1
            yield key, value
        yield from self._walk(node.children[-1])

    def items_sorted(self) -> list[tuple[Any, Any]]:
        # In-order walk is already sorted (like kind == "map").
        return list(self.items())

    def clear(self) -> None:
        self._root = _Node(leaf=True)
        self._size = 0
        self._n_nodes = 1
        self._key_bytes = 0
        self.stats.alloc_bytes += self._node_bytes()

    # -- validation ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert B-tree invariants (used by property tests)."""
        t = self._t

        def check(node: _Node, is_root: bool, lo, hi) -> int:
            assert len(node.keys) <= 2 * t - 1, "overfull node"
            if not is_root:
                assert len(node.keys) >= t - 1, "underfull node"
            assert node.keys == sorted(node.keys), "unsorted node keys"
            for key in node.keys:
                if lo is not None:
                    assert key > lo
                if hi is not None:
                    assert key < hi
            if node.leaf:
                return 1
            assert len(node.children) == len(node.keys) + 1
            bounds = [lo] + list(node.keys) + [hi]
            depths = {
                check(child, False, bounds[i], bounds[i + 1])
                for i, child in enumerate(node.children)
            }
            assert len(depths) == 1, "leaves at different depths"
            return depths.pop() + 1

        check(self._root, True, None, None)
        assert len(list(self.items())) == self._size
