"""Counting adapters built on the :class:`~repro.dicts.api.Dictionary` protocol.

Word counting is the hot phase of TF/IDF (paper §3.2): every token of every
document performs one ``increment`` against a per-document term-frequency
dictionary, and every *distinct* term of a document performs one increment
against the global document-frequency dictionary. These adapters keep that
logic in one place so the operators stay small.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.dicts.api import Dictionary, OpStats

__all__ = ["CountingDict", "count_tokens"]


class CountingDict:
    """Thin counting facade over any :class:`Dictionary` implementation.

    The facade does not change the underlying structure's behaviour or
    statistics; it only packages the common counting idioms (increment,
    bulk-count, merge) used by the word-count and document-frequency steps.
    """

    def __init__(self, backing: Dictionary) -> None:
        self.backing = backing

    @property
    def kind(self) -> str:
        """Kind of the underlying dictionary (``map``/``unordered_map``/...)."""
        return self.backing.kind

    @property
    def stats(self) -> OpStats:
        return self.backing.stats

    def increment(self, key: Any, amount: int = 1) -> int:
        return self.backing.increment(key, amount)

    def count_all(self, keys: Iterable[Any]) -> int:
        """Increment once per key; returns the number of keys consumed."""
        consumed = 0
        for key in keys:
            self.backing.increment(key)
            consumed += 1
        return consumed

    def merge_counts(self, other: "CountingDict | Dictionary") -> None:
        """Add another counter's totals into this one (worker merge step)."""
        source = other.backing if isinstance(other, CountingDict) else other
        for key, value in source.items():
            self.backing.increment(key, value)

    def get(self, key: Any, default: int = 0) -> int:
        return self.backing.get(key, default)

    def items(self) -> Iterator[tuple[Any, int]]:
        return self.backing.items()

    def items_sorted(self) -> list[tuple[Any, int]]:
        return self.backing.items_sorted()

    def clear(self) -> None:
        self.backing.clear()

    def resident_bytes(self) -> int:
        return self.backing.resident_bytes()

    def __len__(self) -> int:
        return len(self.backing)

    def __contains__(self, key: Any) -> bool:
        return key in self.backing

    def total(self) -> int:
        """Sum of all counts (total token occurrences)."""
        return sum(value for _, value in self.backing.items())


def count_tokens(tokens: Iterable[str], counter: Dictionary) -> int:
    """Count ``tokens`` into ``counter``; return the number of tokens seen."""
    seen = 0
    for token in tokens:
        counter.increment(token)
        seen += 1
    return seen
