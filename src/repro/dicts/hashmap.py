"""Open-addressing hash map — the stand-in for ``std::unordered_map``.

The paper (§3.4) pre-sizes its ``std::unordered_map`` to 4K buckets and
still finds insertion slow because of (i) resize operations that rehash
every element and (ii) memory pressure from the deliberately sparse,
very large backing array. Lookups, in contrast, are amortised O(1) and
beat the tree. This module reproduces both behaviours:

* linear-probing open addressing over a power-of-two slot array;
* growth by doubling at a fixed load factor, counting every migrated
  entry in ``stats.rehash_moves``;
* ``resident_bytes`` charges the whole backing array (sparse slots
  included), so memory scales with *capacity*, not live entries — the
  source of the paper's 12.8 GB vs 420 MB contrast.

Probes are counted per slot inspected; the cost model charges hash maps
per probe plus a rehash term, while trees are charged per comparison.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.dicts.api import Dictionary
from repro.errors import ConfigurationError

__all__ = ["HashMap", "SLOT_BYTES", "DEFAULT_RESERVE", "MAX_LOAD_FACTOR"]

#: Modelled bytes per slot of the backing array. 64 bytes covers the key
#: pointer, stored hash, value, state byte and the node allocation that a
#: typical ``std::unordered_map`` pays per element, amortised over slots
#: at the target load factor.
SLOT_BYTES = 64

#: Paper setup: "the unordered map is pre-sized to hold 4K items".
DEFAULT_RESERVE = 4096

#: Grow when live entries exceed this fraction of capacity.
MAX_LOAD_FACTOR = 0.7

_EMPTY = object()
_TOMBSTONE = object()


def _next_power_of_two(value: int) -> int:
    power = 1
    while power < value:
        power <<= 1
    return power


class HashMap(Dictionary):
    """Unordered dictionary with linear probing and doubling growth.

    Parameters
    ----------
    reserve:
        Initial number of entries the table should hold without resizing.
        The paper pre-sizes to 4096; passing a smaller value exposes the
        rehash cascades the paper warns about.
    """

    kind = "unordered_map"

    def __init__(self, reserve: int = DEFAULT_RESERVE) -> None:
        super().__init__()
        if reserve < 1:
            raise ConfigurationError(f"reserve must be >= 1, got {reserve}")
        self._initial_capacity = _next_power_of_two(
            max(8, int(reserve / MAX_LOAD_FACTOR) + 1)
        )
        self._capacity = self._initial_capacity
        self._keys: list[Any] = [_EMPTY] * self._capacity
        self._values: list[Any] = [None] * self._capacity
        self._size = 0
        self._used = 0  # live entries + tombstones
        self._key_bytes = 0
        self.stats.alloc_bytes += self._capacity * SLOT_BYTES

    # -- core operations --------------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        self.stats.lookups += 1
        index = self._probe(key)
        if index is None:
            self.stats.misses += 1
            return default
        self.stats.hits += 1
        return self._values[index]

    def put(self, key: Any, value: Any) -> None:
        if (self._used + 1) > self._capacity * MAX_LOAD_FACTOR:
            self._grow()
        mask = self._capacity - 1
        index = hash(key) & mask
        first_tombstone = None
        while True:
            self.stats.probes += 1
            slot = self._keys[index]
            if slot is _EMPTY:
                target = first_tombstone if first_tombstone is not None else index
                self._keys[target] = key
                self._values[target] = value
                self._size += 1
                if first_tombstone is None:
                    self._used += 1
                self._key_bytes += self._footprint(key)
                self.stats.inserts += 1
                return
            if slot is _TOMBSTONE:
                if first_tombstone is None:
                    first_tombstone = index
            elif slot == key:
                self._values[index] = value
                self.stats.updates += 1
                return
            index = (index + 1) & mask

    def remove(self, key: Any) -> bool:
        index = self._probe(key)
        if index is None:
            return False
        self._key_bytes -= self._footprint(self._keys[index])
        self._keys[index] = _TOMBSTONE
        self._values[index] = None
        self._size -= 1
        return True

    def __contains__(self, key: Any) -> bool:
        self.stats.lookups += 1
        found = self._probe(key) is not None
        if found:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        return found

    def __len__(self) -> int:
        return self._size

    def items(self) -> Iterator[tuple[Any, Any]]:
        for slot, value in zip(self._keys, self._values):
            if slot is not _EMPTY and slot is not _TOMBSTONE:
                self.stats.iterations += 1
                yield slot, value

    def clear(self) -> None:
        self._capacity = self._initial_capacity
        self._keys = [_EMPTY] * self._capacity
        self._values = [None] * self._capacity
        self._size = 0
        self._used = 0
        self._key_bytes = 0
        self.stats.alloc_bytes += self._capacity * SLOT_BYTES

    def resident_bytes(self) -> int:
        # The whole backing array is resident, sparse slots included: this is
        # the memory-pressure effect of §3.4.
        return self._capacity * SLOT_BYTES + self._key_bytes

    # -- introspection -----------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Current number of slots in the backing array."""
        return self._capacity

    @property
    def load_factor(self) -> float:
        """Fraction of slots holding live entries."""
        return self._size / self._capacity

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _footprint(key: Any) -> int:
        if isinstance(key, str):
            return len(key)
        return 0

    def _probe(self, key: Any) -> int | None:
        mask = self._capacity - 1
        index = hash(key) & mask
        while True:
            self.stats.probes += 1
            slot = self._keys[index]
            if slot is _EMPTY:
                return None
            if slot is not _TOMBSTONE and slot == key:
                return index
            index = (index + 1) & mask

    def _grow(self) -> None:
        old_keys = self._keys
        old_values = self._values
        self._capacity <<= 1
        self._keys = [_EMPTY] * self._capacity
        self._values = [None] * self._capacity
        self._used = 0
        self.stats.alloc_bytes += self._capacity * SLOT_BYTES
        mask = self._capacity - 1
        self.stats.rehashes += 1
        for slot, value in zip(old_keys, old_values):
            if slot is _EMPTY or slot is _TOMBSTONE:
                continue
            index = hash(slot) & mask
            while self._keys[index] is not _EMPTY:
                index = (index + 1) & mask
            self._keys[index] = slot
            self._values[index] = value
            self._used += 1
            self.stats.rehash_moves += 1

    def check_invariants(self) -> None:
        """Assert structural invariants (used by property tests)."""
        live = sum(
            1 for slot in self._keys if slot is not _EMPTY and slot is not _TOMBSTONE
        )
        assert live == self._size, "live slot count out of sync with size"
        assert self._used >= self._size, "used must include tombstones"
        assert self._capacity & (self._capacity - 1) == 0, "capacity not power of two"
        assert self._size <= self._capacity * MAX_LOAD_FACTOR + 1, "overfull table"
