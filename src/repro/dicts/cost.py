"""Per-operation cost profiles for dictionary implementations.

The simulated machine (:mod:`repro.exec`) accounts two resources per task:
CPU seconds and memory traffic. Dictionaries report *logical* work in
:class:`~repro.dicts.api.OpStats`; a :class:`DictCostProfile` converts those
counters into the two resources.

The profiles encode the asymmetry the paper measures in §3.4:

* ``map`` (red-black tree): every comparison is a dependent pointer chase
  (relatively expensive per event) but the tree's working set is compact —
  memory proportional to live entries — so its traffic per operation is
  moderate and it keeps scaling when many threads share the memory system.
* ``unordered_map`` (hash table): probes are cheap CPU-wise and lookups are
  amortised O(1), but every probe lands in a sparse, very large array, so
  each one is effectively a cache/TLB miss streaming whole lines from DRAM;
  inserts additionally pay rehash cascades. Under parallelism the aggregate
  traffic saturates memory bandwidth, capping the speedup (3.4x vs 6.1x in
  Figure 4).

The absolute nanosecond values are calibration constants (see
``DESIGN.md`` §5); the *ratios* between them are what generate the paper's
crossovers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dicts.api import OpStats

__all__ = [
    "DictCostProfile",
    "TREEMAP_PROFILE",
    "HASHMAP_PROFILE",
    "BTREE_PROFILE",
    "BUILTIN_PROFILE",
    "profile_for_kind",
]


@dataclass(frozen=True)
class DictCostProfile:
    """Converts :class:`OpStats` deltas into CPU time and memory traffic."""

    name: str
    #: Which :attr:`Dictionary.kind` this profile applies to.
    kind: str
    #: CPU nanoseconds per key comparison (tree descent step).
    comparison_ns: float
    #: CPU nanoseconds per slot probe (hash table step).
    probe_ns: float
    #: Fixed CPU nanoseconds per successful insert (allocation, rebalancing).
    insert_ns: float
    #: Fixed CPU nanoseconds per in-place update.
    update_ns: float
    #: Fixed CPU nanoseconds per lookup on top of comparisons/probes.
    lookup_ns: float
    #: CPU nanoseconds per entry migrated during a rehash.
    rehash_move_ns: float
    #: CPU nanoseconds per entry yielded during iteration.
    iteration_ns: float
    #: CPU nanoseconds per allocated byte (zeroing + page faults); the
    #: pre-sized sparse hash array makes this the hash map's insertion tax.
    alloc_ns_per_byte: float
    #: Memory bytes touched per comparison (node cache lines).
    bytes_per_comparison: int
    #: Memory bytes touched per probe (sparse-array cache lines).
    bytes_per_probe: int
    #: Memory bytes moved per rehashed entry (read old + write new slot).
    bytes_per_rehash_move: int
    #: Memory bytes streamed per iterated entry.
    bytes_per_iteration: int
    #: Memory bytes allocated/touched per fresh insert.
    bytes_per_insert: int

    def cpu_seconds(self, stats: OpStats) -> float:
        """Virtual CPU seconds implied by the given operation counters."""
        nanos = (
            stats.comparisons * self.comparison_ns
            + stats.probes * self.probe_ns
            + stats.inserts * self.insert_ns
            + stats.updates * self.update_ns
            + stats.lookups * self.lookup_ns
            + stats.rehash_moves * self.rehash_move_ns
            + stats.iterations * self.iteration_ns
            + stats.alloc_bytes * self.alloc_ns_per_byte
        )
        return nanos * 1e-9

    def memory_traffic(self, stats: OpStats) -> int:
        """Bytes of DRAM traffic implied by the given operation counters."""
        return (
            stats.comparisons * self.bytes_per_comparison
            + stats.probes * self.bytes_per_probe
            + stats.rehash_moves * self.bytes_per_rehash_move
            + stats.iterations * self.bytes_per_iteration
            + stats.inserts * self.bytes_per_insert
            + stats.alloc_bytes
        )


#: ``std::map`` analogue: costly dependent comparisons, compact footprint.
TREEMAP_PROFILE = DictCostProfile(
    name="red-black tree (std::map)",
    kind="map",
    comparison_ns=11.0,
    probe_ns=0.0,
    insert_ns=60.0,
    update_ns=6.0,
    lookup_ns=8.0,
    rehash_move_ns=0.0,
    iteration_ns=14.0,
    alloc_ns_per_byte=0.25,
    bytes_per_comparison=16,
    bytes_per_probe=0,
    bytes_per_rehash_move=0,
    bytes_per_iteration=64,
    bytes_per_insert=48,
)

#: ``std::unordered_map`` analogue: cheap probes, DRAM-hungry sparse array.
HASHMAP_PROFILE = DictCostProfile(
    name="open-addressing hash table (std::unordered_map)",
    kind="unordered_map",
    comparison_ns=0.0,
    probe_ns=14.0,
    insert_ns=250.0,
    update_ns=5.0,
    lookup_ns=5.0,
    rehash_move_ns=55.0,
    iteration_ns=10.0,
    alloc_ns_per_byte=0.5,
    bytes_per_comparison=0,
    bytes_per_probe=160,
    bytes_per_rehash_move=256,
    bytes_per_iteration=96,
    bytes_per_insert=96,
)

#: B-tree (extension beyond the paper): few pointer chases per lookup
#: (one ``probe`` per node visit, two cache lines each), cheap contiguous
#: in-node comparisons, but array-shift inserts and split copies.
BTREE_PROFILE = DictCostProfile(
    name="B-tree map",
    kind="btree",
    comparison_ns=3.0,
    probe_ns=18.0,
    insert_ns=85.0,
    update_ns=6.0,
    lookup_ns=8.0,
    rehash_move_ns=20.0,
    iteration_ns=10.0,
    alloc_ns_per_byte=0.25,
    bytes_per_comparison=0,
    bytes_per_probe=128,
    bytes_per_rehash_move=32,
    bytes_per_iteration=32,
    bytes_per_insert=32,
)

#: Native Python ``dict`` wrapper: used for fast functional runs; its costs
#: mirror the hash profile since CPython dicts are open-addressed tables.
BUILTIN_PROFILE = DictCostProfile(
    name="builtin dict",
    kind="dict",
    comparison_ns=0.0,
    probe_ns=14.0,
    insert_ns=60.0,
    update_ns=5.0,
    lookup_ns=5.0,
    rehash_move_ns=30.0,
    iteration_ns=8.0,
    alloc_ns_per_byte=0.25,
    bytes_per_comparison=0,
    bytes_per_probe=96,
    bytes_per_rehash_move=128,
    bytes_per_iteration=48,
    bytes_per_insert=64,
)

_PROFILES = {
    profile.kind: profile
    for profile in (TREEMAP_PROFILE, HASHMAP_PROFILE, BTREE_PROFILE, BUILTIN_PROFILE)
}


def profile_for_kind(kind: str) -> DictCostProfile:
    """Return the cost profile matching a :attr:`Dictionary.kind` string."""
    try:
        return _PROFILES[kind]
    except KeyError:
        raise KeyError(
            f"no cost profile for dictionary kind {kind!r}; "
            f"known kinds: {sorted(_PROFILES)}"
        ) from None
