"""Snapshot dictionary: precomputed entries behind the Dictionary protocol.

The real execution backends (:mod:`repro.exec.inline`,
:mod:`repro.exec.process`) count terms inside worker processes using plain
builtin dicts — instrumentation would be wasted there, and the
instrumented structures are expensive to pickle across the IPC boundary.
The workers ship back sorted ``(key, value)`` entry lists; the parent
wraps them in :class:`SnapshotDict` so downstream code (the TF/IDF
transform, ``items_sorted``, ``resident_bytes``) sees a normal
:class:`~repro.dicts.api.Dictionary`.

A snapshot reports the *kind* of the structure it stands in for (so cost
profiles still resolve) but its op stats stay zero: the simulated path is
authoritative for cost accounting, the backend path for wall-clock time.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.dicts.api import Dictionary

__all__ = ["SnapshotDict"]

#: Kinds whose iteration order is sorted by key (tree-like structures).
_SORTED_KINDS = ("map", "btree")

#: Modelled per-entry footprint, matching the tree node estimate.
_ENTRY_BYTES = 64


class SnapshotDict(Dictionary):
    """Dictionary backed by a builtin dict, seeded from entry pairs.

    Fully mutable (``put``/``remove``/``increment`` work), but optimized
    for the snapshot use case: O(n) construction from the entries a worker
    computed, with no per-operation instrumentation.
    """

    def __init__(self, entries=(), kind: str = "map") -> None:
        super().__init__()
        self.kind = kind
        self._data: dict[Any, Any] = dict(entries)

    def get(self, key: Any, default: Any = None) -> Any:
        return self._data.get(key, default)

    def put(self, key: Any, value: Any) -> None:
        self._data[key] = value

    def remove(self, key: Any) -> bool:
        return self._data.pop(key, _MISSING) is not _MISSING

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def items(self) -> Iterator[tuple[Any, Any]]:
        if self.kind in _SORTED_KINDS:
            return iter(sorted(self._data.items()))
        return iter(self._data.items())

    def clear(self) -> None:
        self._data.clear()

    def resident_bytes(self) -> int:
        key_bytes = sum(
            len(key) for key in self._data if isinstance(key, str)
        )
        return _ENTRY_BYTES * len(self._data) + key_bytes


class _Missing:
    __slots__ = ()


_MISSING = _Missing()
