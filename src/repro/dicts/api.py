"""Dictionary protocol and operation statistics.

The paper's fourth optimization is the *selection of internal data
structures*: the dictionaries that map terms to frequencies dominate the
runtime of the TF/IDF operator, and ``std::map`` (a red-black tree) and
``std::unordered_map`` (a hash table) trade off insert cost, lookup cost,
iteration order and memory footprint differently (paper §3.4, Figure 4).

This module defines the common :class:`Dictionary` interface implemented by
:class:`repro.dicts.treemap.TreeMap` and
:class:`repro.dicts.hashmap.HashMap`, together with :class:`OpStats`, the
instrumentation record from which the cost model derives virtual time and
resident memory.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = ["OpStats", "Dictionary"]


@dataclass
class OpStats:
    """Counters for the abstract work performed by a dictionary.

    The counters are *machine-independent*: they count logical events
    (comparisons, probes, rehash moves) rather than elapsed time. The cost
    model in :mod:`repro.dicts.cost` converts them into virtual seconds and
    resident bytes for the simulated machine.
    """

    inserts: int = 0
    updates: int = 0
    lookups: int = 0
    hits: int = 0
    misses: int = 0
    comparisons: int = 0
    probes: int = 0
    rehashes: int = 0
    rehash_moves: int = 0
    iterations: int = 0
    #: Bytes of backing memory allocated (and first-touched) by the
    #: structure — pre-sized hash arrays, tree nodes. Drives the
    #: "memory pressure" cost of §3.4.
    alloc_bytes: int = 0

    def copy(self) -> "OpStats":
        """Return an independent snapshot of the current counters."""
        return OpStats(**vars(self))

    def delta(self, earlier: "OpStats") -> "OpStats":
        """Return counters accumulated since the ``earlier`` snapshot."""
        return OpStats(
            **{name: value - getattr(earlier, name) for name, value in vars(self).items()}
        )

    def merge(self, other: "OpStats") -> None:
        """Add ``other``'s counters into this record (for worker merges)."""
        for name, value in vars(other).items():
            setattr(self, name, getattr(self, name) + value)

    @property
    def total_ops(self) -> int:
        """Total number of top-level dictionary operations performed."""
        return self.inserts + self.updates + self.lookups


class Dictionary(ABC):
    """Mutable mapping with instrumented operations and explicit memory.

    Keys must be mutually comparable (for the tree implementation) and
    hashable (for the hash implementation); the operators in this library
    only use ``str`` and ``int`` keys.
    """

    #: Short identifier used by factories, plans and reports
    #: (e.g. ``"map"`` or ``"unordered_map"``).
    kind: str = "abstract"

    def __init__(self) -> None:
        self.stats = OpStats()

    # -- required primitives -------------------------------------------------

    @abstractmethod
    def get(self, key: Any, default: Any = None) -> Any:
        """Return the value stored under ``key`` or ``default``."""

    @abstractmethod
    def put(self, key: Any, value: Any) -> None:
        """Insert ``key`` or overwrite its existing value."""

    @abstractmethod
    def remove(self, key: Any) -> bool:
        """Delete ``key`` if present; return whether it was present."""

    @abstractmethod
    def __contains__(self, key: Any) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def items(self) -> Iterator[tuple[Any, Any]]:
        """Iterate over ``(key, value)`` pairs in implementation order.

        The tree iterates in sorted key order; the hash map in slot order.
        """

    @abstractmethod
    def clear(self) -> None:
        """Remove all entries, keeping the instance reusable."""

    @abstractmethod
    def resident_bytes(self) -> int:
        """Modelled resident memory of the structure, in bytes."""

    # -- shared conveniences --------------------------------------------------

    def increment(self, key: Any, amount: int = 1) -> int:
        """Add ``amount`` to the integer counter stored under ``key``.

        Missing keys count from zero. Returns the new value. This is the
        hot-path operation of the word-count phase.
        """
        current = self.get(key)
        updated = amount if current is None else current + amount
        self.put(key, updated)
        return updated

    def items_sorted(self) -> list[tuple[Any, Any]]:
        """Return all entries sorted by key.

        For the tree this is a plain in-order walk; for the hash map it
        requires an explicit sort, which is exactly the extra work the paper
        notes when sorted output (ARFF term ids) is needed.
        """
        entries = list(self.items())
        if self.kind == "map":
            return entries
        return sorted(entries, key=lambda pair: pair[0])

    def __getitem__(self, key: Any) -> Any:
        sentinel = _MISSING
        value = self.get(key, sentinel)
        if value is sentinel:
            raise KeyError(key)
        return value

    def __setitem__(self, key: Any, value: Any) -> None:
        self.put(key, value)

    def __iter__(self) -> Iterator[Any]:
        return (key for key, _ in self.items())

    def keys(self) -> Iterator[Any]:
        return iter(self)

    def values(self) -> Iterator[Any]:
        return (value for _, value in self.items())

    def to_dict(self) -> dict:
        """Materialise the contents as a builtin ``dict`` (for tests)."""
        return dict(self.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} kind={self.kind!r} len={len(self)}>"


class _Missing:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<missing>"


_MISSING = _Missing()
