"""Red-black tree map — the reproduction's stand-in for ``std::map``.

The paper (§3.4) observes that the insert-heavy *input+wordcount* phase of
TF/IDF runs faster with ``std::map`` than with ``std::unordered_map``
because tree insertion touches O(log n) nodes with good locality, avoids
rehashing, and keeps memory proportional to the number of live entries.
This module implements that structure from scratch: a textbook (CLRS)
red-black tree with parent pointers and a NIL sentinel, instrumented so
the cost model can account comparisons per operation.

Implementation notes
--------------------
* Standard CLRS insertion/deletion fix-up with a sentinel NIL node.
* Every key comparison increments ``stats.comparisons`` — that counter is
  the basis of the tree's virtual cost (``c_tree * comparisons``).
* ``resident_bytes`` models one heap node per entry (as ``std::map`` does),
  so memory tracks the live entry count exactly; contrast with the hash
  map whose backing array is deliberately sparse.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.dicts.api import Dictionary

__all__ = ["TreeMap", "NODE_OVERHEAD_BYTES"]

_RED = True
_BLACK = False

#: Modelled per-node footprint: three pointers, colour, key and value slots,
#: allocator padding — matches a typical 64-bit ``std::map`` node.
NODE_OVERHEAD_BYTES = 64


class _Node:
    __slots__ = ("key", "value", "left", "right", "parent", "red", "key_bytes")

    def __init__(self, key: Any, value: Any, key_bytes: int) -> None:
        self.key = key
        self.value = value
        self.left: "_Node | None" = None
        self.right: "_Node | None" = None
        self.parent: "_Node | None" = None
        self.red = _RED
        self.key_bytes = key_bytes


def _key_footprint(key: Any) -> int:
    """Bytes attributed to storing ``key`` out-of-line (strings only)."""
    if isinstance(key, str):
        return len(key)
    return 0


class TreeMap(Dictionary):
    """Ordered dictionary backed by a red-black tree.

    Iteration yields entries in ascending key order at no extra cost, which
    is why the TF/IDF output phase (sorted term ids) favours this structure
    even though individual lookups are O(log n).
    """

    kind = "map"

    def __init__(self) -> None:
        super().__init__()
        self._nil = _Node(None, None, 0)
        self._nil.red = _BLACK
        self._root = self._nil
        self._size = 0
        self._key_bytes = 0

    # -- core operations ------------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        self.stats.lookups += 1
        node = self._find(key)
        if node is self._nil:
            self.stats.misses += 1
            return default
        self.stats.hits += 1
        return node.value

    def put(self, key: Any, value: Any) -> None:
        parent = self._nil
        current = self._root
        while current is not self._nil:
            parent = current
            self.stats.comparisons += 1
            if key < current.key:
                current = current.left
            elif key > current.key:
                self.stats.comparisons += 1
                current = current.right
            else:
                self.stats.comparisons += 1
                current.value = value
                self.stats.updates += 1
                return

        node = _Node(key, value, _key_footprint(key))
        node.left = node.right = self._nil
        node.parent = parent
        if parent is self._nil:
            self._root = node
        else:
            self.stats.comparisons += 1
            if key < parent.key:
                parent.left = node
            else:
                parent.right = node
        self._size += 1
        self._key_bytes += node.key_bytes
        self.stats.inserts += 1
        self.stats.alloc_bytes += NODE_OVERHEAD_BYTES + node.key_bytes
        self._insert_fixup(node)

    def remove(self, key: Any) -> bool:
        node = self._find(key)
        if node is self._nil:
            return False
        self._delete_node(node)
        self._size -= 1
        self._key_bytes -= node.key_bytes
        return True

    def __contains__(self, key: Any) -> bool:
        self.stats.lookups += 1
        found = self._find(key) is not self._nil
        if found:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        return found

    def __len__(self) -> int:
        return self._size

    def items(self) -> Iterator[tuple[Any, Any]]:
        node = self._minimum(self._root)
        while node is not self._nil:
            self.stats.iterations += 1
            yield node.key, node.value
            node = self._successor(node)

    def clear(self) -> None:
        self._root = self._nil
        self._size = 0
        self._key_bytes = 0

    def resident_bytes(self) -> int:
        return self._size * NODE_OVERHEAD_BYTES + self._key_bytes

    # -- ordered extras --------------------------------------------------------

    def min_key(self) -> Any:
        """Smallest key, or ``None`` when empty."""
        node = self._minimum(self._root)
        return None if node is self._nil else node.key

    def max_key(self) -> Any:
        """Largest key, or ``None`` when empty."""
        node = self._root
        if node is self._nil:
            return None
        while node.right is not self._nil:
            node = node.right
        return node.key

    def floor_key(self, key: Any) -> Any:
        """Largest stored key ``<= key``, or ``None``."""
        best = None
        node = self._root
        while node is not self._nil:
            self.stats.comparisons += 1
            if node.key == key:
                return node.key
            if node.key < key:
                best = node.key
                node = node.right
            else:
                node = node.left
        return best

    def ceiling_key(self, key: Any) -> Any:
        """Smallest stored key ``>= key``, or ``None``."""
        best = None
        node = self._root
        while node is not self._nil:
            self.stats.comparisons += 1
            if node.key == key:
                return node.key
            if node.key > key:
                best = node.key
                node = node.left
            else:
                node = node.right
        return best

    # -- red-black machinery ----------------------------------------------------

    def _find(self, key: Any) -> _Node:
        node = self._root
        while node is not self._nil:
            self.stats.comparisons += 1
            if key == node.key:
                return node
            node = node.left if key < node.key else node.right
        return node

    def _minimum(self, node: _Node) -> _Node:
        if node is self._nil:
            return node
        while node.left is not self._nil:
            node = node.left
        return node

    def _successor(self, node: _Node) -> _Node:
        if node.right is not self._nil:
            return self._minimum(node.right)
        parent = node.parent
        while parent is not self._nil and node is parent.right:
            node = parent
            parent = parent.parent
        return parent

    def _rotate_left(self, node: _Node) -> None:
        pivot = node.right
        node.right = pivot.left
        if pivot.left is not self._nil:
            pivot.left.parent = node
        pivot.parent = node.parent
        if node.parent is self._nil:
            self._root = pivot
        elif node is node.parent.left:
            node.parent.left = pivot
        else:
            node.parent.right = pivot
        pivot.left = node
        node.parent = pivot

    def _rotate_right(self, node: _Node) -> None:
        pivot = node.left
        node.left = pivot.right
        if pivot.right is not self._nil:
            pivot.right.parent = node
        pivot.parent = node.parent
        if node.parent is self._nil:
            self._root = pivot
        elif node is node.parent.right:
            node.parent.right = pivot
        else:
            node.parent.left = pivot
        pivot.right = node
        node.parent = pivot

    def _insert_fixup(self, node: _Node) -> None:
        while node.parent.red:
            grandparent = node.parent.parent
            if node.parent is grandparent.left:
                uncle = grandparent.right
                if uncle.red:
                    node.parent.red = _BLACK
                    uncle.red = _BLACK
                    grandparent.red = _RED
                    node = grandparent
                else:
                    if node is node.parent.right:
                        node = node.parent
                        self._rotate_left(node)
                    node.parent.red = _BLACK
                    node.parent.parent.red = _RED
                    self._rotate_right(node.parent.parent)
            else:
                uncle = grandparent.left
                if uncle.red:
                    node.parent.red = _BLACK
                    uncle.red = _BLACK
                    grandparent.red = _RED
                    node = grandparent
                else:
                    if node is node.parent.left:
                        node = node.parent
                        self._rotate_right(node)
                    node.parent.red = _BLACK
                    node.parent.parent.red = _RED
                    self._rotate_left(node.parent.parent)
        self._root.red = _BLACK

    def _transplant(self, old: _Node, new: _Node) -> None:
        if old.parent is self._nil:
            self._root = new
        elif old is old.parent.left:
            old.parent.left = new
        else:
            old.parent.right = new
        new.parent = old.parent

    def _delete_node(self, node: _Node) -> None:
        moved = node
        moved_was_red = moved.red
        if node.left is self._nil:
            child = node.right
            self._transplant(node, node.right)
        elif node.right is self._nil:
            child = node.left
            self._transplant(node, node.left)
        else:
            moved = self._minimum(node.right)
            moved_was_red = moved.red
            child = moved.right
            if moved.parent is node:
                child.parent = moved
            else:
                self._transplant(moved, moved.right)
                moved.right = node.right
                moved.right.parent = moved
            self._transplant(node, moved)
            moved.left = node.left
            moved.left.parent = moved
            moved.red = node.red
        if not moved_was_red:
            self._delete_fixup(child)

    def _delete_fixup(self, node: _Node) -> None:
        while node is not self._root and not node.red:
            if node is node.parent.left:
                sibling = node.parent.right
                if sibling.red:
                    sibling.red = _BLACK
                    node.parent.red = _RED
                    self._rotate_left(node.parent)
                    sibling = node.parent.right
                if not sibling.left.red and not sibling.right.red:
                    sibling.red = _RED
                    node = node.parent
                else:
                    if not sibling.right.red:
                        sibling.left.red = _BLACK
                        sibling.red = _RED
                        self._rotate_right(sibling)
                        sibling = node.parent.right
                    sibling.red = node.parent.red
                    node.parent.red = _BLACK
                    sibling.right.red = _BLACK
                    self._rotate_left(node.parent)
                    node = self._root
            else:
                sibling = node.parent.left
                if sibling.red:
                    sibling.red = _BLACK
                    node.parent.red = _RED
                    self._rotate_right(node.parent)
                    sibling = node.parent.left
                if not sibling.right.red and not sibling.left.red:
                    sibling.red = _RED
                    node = node.parent
                else:
                    if not sibling.left.red:
                        sibling.right.red = _BLACK
                        sibling.red = _RED
                        self._rotate_left(sibling)
                        sibling = node.parent.left
                    sibling.red = node.parent.red
                    node.parent.red = _BLACK
                    sibling.left.red = _BLACK
                    self._rotate_right(node.parent)
                    node = self._root
        node.red = _BLACK

    # -- validation (used by property tests) -------------------------------------

    def check_invariants(self) -> None:
        """Assert the red-black invariants; raises ``AssertionError`` if broken.

        Checked: root is black, no red node has a red child, every root-to-NIL
        path has the same black height, and in-order keys are strictly
        increasing.
        """
        assert not self._root.red, "root must be black"
        self._check_subtree(self._root)
        keys = [key for key, _ in self.items()]
        assert all(a < b for a, b in zip(keys, keys[1:])), "keys must be ordered"
        assert len(keys) == self._size, "size counter out of sync"

    def _check_subtree(self, node: _Node) -> int:
        if node is self._nil:
            return 1
        if node.red:
            assert not node.left.red and not node.right.red, "red node with red child"
        left_height = self._check_subtree(node.left)
        right_height = self._check_subtree(node.right)
        assert left_height == right_height, "black-height mismatch"
        return left_height + (0 if node.red else 1)
