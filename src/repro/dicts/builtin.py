"""Native ``dict`` wrapped in the :class:`Dictionary` protocol.

The tree and hash implementations in this package are instrumented models
used for the paper's data-structure study. When the library is used purely
functionally (examples, correctness tests) the CPython ``dict`` is the
sensible engine; this wrapper lets operators stay agnostic while keeping
approximate statistics so simulated runs remain possible.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.dicts.api import Dictionary

__all__ = ["BuiltinDict"]

# CPython dict slots are ~3 machine words plus the sparse index table.
_APPROX_SLOT_BYTES = 32


class BuiltinDict(Dictionary):
    """Protocol adapter around a builtin ``dict``.

    Statistics are approximated: each get/put counts one probe (CPython's
    expected open-addressing behaviour near its target load factor) and
    rehash events are estimated from growth thresholds.
    """

    kind = "dict"

    def __init__(self) -> None:
        super().__init__()
        self._data: dict[Any, Any] = {}
        self._key_bytes = 0

    def get(self, key: Any, default: Any = None) -> Any:
        self.stats.lookups += 1
        self.stats.probes += 1
        if key in self._data:
            self.stats.hits += 1
            return self._data[key]
        self.stats.misses += 1
        return default

    def put(self, key: Any, value: Any) -> None:
        self.stats.probes += 1
        if key in self._data:
            self.stats.updates += 1
        else:
            self.stats.inserts += 1
            self.stats.alloc_bytes += _APPROX_SLOT_BYTES
            if isinstance(key, str):
                self._key_bytes += len(key)
        self._data[key] = value

    def remove(self, key: Any) -> bool:
        if key in self._data:
            if isinstance(key, str):
                self._key_bytes -= len(key)
            del self._data[key]
            return True
        return False

    def __contains__(self, key: Any) -> bool:
        self.stats.lookups += 1
        self.stats.probes += 1
        found = key in self._data
        if found:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        return found

    def __len__(self) -> int:
        return len(self._data)

    def items(self) -> Iterator[tuple[Any, Any]]:
        for key, value in self._data.items():
            self.stats.iterations += 1
            yield key, value

    def clear(self) -> None:
        self._data.clear()
        self._key_bytes = 0

    def resident_bytes(self) -> int:
        return len(self._data) * _APPROX_SLOT_BYTES + self._key_bytes
