"""Shared fixtures and reporting helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper: it runs the
real operators on a scaled synthetic corpus, extrapolates to full scale
through the WorkloadScale mechanism, prints the paper-vs-measured report
and writes it to ``benchmarks/reports/<name>.txt``.

Scale can be raised for higher fidelity (at more wall-clock cost) with
``REPRO_BENCH_SCALE`` (default 0.01 for Mix; NSF uses half of it so both
corpora hold a few hundred documents).
"""

import os

import pytest

from repro.bench import prepare_workload
from repro.text import MIX_PROFILE, NSF_ABSTRACTS_PROFILE

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.01"))

_REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


@pytest.fixture(scope="session")
def mix_workload():
    return prepare_workload(MIX_PROFILE, scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def nsf_workload():
    return prepare_workload(NSF_ABSTRACTS_PROFILE, scale=BENCH_SCALE / 2)


@pytest.fixture(scope="session")
def report():
    """Write a named report to benchmarks/reports/ and echo it."""

    def _write(name: str, text: str) -> None:
        os.makedirs(_REPORT_DIR, exist_ok=True)
        path = os.path.join(_REPORT_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\n{text}\n[report written to {path}]")

    return _write
