"""Figure 3 — discrete vs merged TF/IDF→K-means workflow (NSF Abstracts).

Paper shape: storing the TF/IDF scores on disk between the operators
(discrete) versus handing them over in memory (merged). At 1 thread, I/O
adds 36.9% to the execution time; at 16 threads the discrete workflow is
3.84x slower because the serial ARFF round trip does not parallelise
while everything else does.

The stacked phase breakdown uses the paper's segment names: input+wc,
tfidf-output, kmeans-input, transform, kmeans, output.
"""

import pytest

from repro.bench import FIG3_THREADS, run_paper_workflow
from repro.core import format_breakdown_table, format_comparison_rows

PHASE_ORDER = [
    "input+wc",
    "tfidf-output",
    "kmeans-input",
    "transform",
    "kmeans",
    "output",
]


@pytest.fixture(scope="module")
def figure3_runs(nsf_workload):
    runs = {}
    for workers in FIG3_THREADS:
        for mode in ("discrete", "merged"):
            result = run_paper_workflow(
                nsf_workload, mode=mode, wc_dict_kind="map", workers=workers
            )
            runs[(mode, workers)] = result
    return runs


def test_fig3_stacked_breakdown(benchmark, figure3_runs, report):
    runs = benchmark.pedantic(lambda: figure3_runs, rounds=1, iterations=1)
    breakdowns = {
        f"{mode[:4]}/{workers}T": runs[(mode, workers)].breakdown()
        for workers in FIG3_THREADS
        for mode in ("discrete", "merged")
    }
    table = format_breakdown_table(
        breakdowns,
        phases=PHASE_ORDER,
        title=(
            "Figure 3 — TF/IDF->K-means execution time (s), NSF Abstracts\n"
            "discrete (ARFF on disk) vs merged (in-memory)"
        ),
    )

    ratio_1 = runs[("discrete", 1)].total_s / runs[("merged", 1)].total_s
    ratio_16 = runs[("discrete", 16)].total_s / runs[("merged", 16)].total_s
    rows = format_comparison_rows(
        [
            ("I/O overhead @1T", "+36.9%", f"+{(ratio_1 - 1) * 100:.1f}%"),
            ("discrete/merged @16T", "3.84x", f"{ratio_16:.2f}x"),
        ],
        title="Figure 3 anchors",
    )
    report("fig3_workflow_fusion", table + "\n\n" + rows)

    # Shape 1: discrete is slower at every thread count.
    for workers in FIG3_THREADS:
        assert (
            runs[("discrete", workers)].total_s > runs[("merged", workers)].total_s
        )
    # Shape 2: the penalty is modest at 1 thread...
    assert 1.1 < ratio_1 < 1.8
    # ...and large at 16 threads (paper: 3.84x; accept 2.5-5.5).
    assert 2.5 < ratio_16 < 5.5
    assert ratio_16 > 2 * ratio_1

    # Shape 3: the round-trip phases exist only in discrete mode and are
    # roughly thread-independent (they are serial).
    d1 = runs[("discrete", 1)].breakdown()
    d16 = runs[("discrete", 16)].breakdown()
    for phase in ("tfidf-output", "kmeans-input"):
        assert phase in d1 and phase not in runs[("merged", 1)].breakdown()
        assert d16[phase] == pytest.approx(d1[phase], rel=0.05)


def test_fig3_fusion_rewriter_matches_merged_mode(benchmark, nsf_workload):
    """fuse_workflow(discrete graph) must behave like the merged build."""
    from repro.core import build_tfidf_kmeans_workflow, fuse_workflow
    from repro.exec import SimScheduler, paper_node

    def run():
        fused = build_tfidf_kmeans_workflow(
            mode="discrete", max_iters=10, scale=nsf_workload.scale
        )
        fuse_workflow(fused)
        return fused.run(
            SimScheduler(paper_node(16)),
            nsf_workload.storage,
            inputs={"tfidf.corpus_prefix": nsf_workload.prefix},
            workers=16,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    merged = run_paper_workflow(nsf_workload, mode="merged", workers=16)
    assert result.total_s == pytest.approx(merged.total_s, rel=1e-6)
