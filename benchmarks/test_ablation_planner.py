"""Ablation A1 — the cost-based planner vs fixed configurations.

DESIGN.md calls out the planner (per-phase dictionary choice + fusion +
thread count) as the mechanical form of the paper's four optimizations.
This ablation checks that the plan the pilot-based optimizer picks is at
least as good as every uniform configuration it searched over, when both
are evaluated on the full (benchmark-scale) input.
"""

import pytest

from repro.bench import run_paper_workflow
from repro.core import WorkflowPlanner
from repro.exec import paper_node


@pytest.fixture(scope="module")
def plan(mix_workload):
    planner = WorkflowPlanner(
        paper_node(16),
        dict_kinds=("map", "unordered_map"),
        modes=("merged", "discrete"),
        worker_options=(1, 8, 16),
        mixed_dicts=True,
    )
    return planner.plan(
        mix_workload.storage, mix_workload.prefix, pilot_docs=64, max_iters=5
    )


def test_planner_vs_fixed_configs(benchmark, plan, mix_workload, report):
    plan = benchmark.pedantic(lambda: plan, rounds=1, iterations=1)
    best = plan.best.config

    # Evaluate the planner's pick and the naive configurations for real.
    picked = run_paper_workflow(
        mix_workload,
        mode=best.mode,
        wc_dict_kind=best.wc_dict_kind,
        transform_dict_kind=best.transform_dict_kind,
        workers=best.workers,
        max_iters=5,
    ).total_s
    naive_sequential_discrete = run_paper_workflow(
        mix_workload, mode="discrete", wc_dict_kind="unordered_map", workers=1,
        max_iters=5,
    ).total_s
    naive_parallel_uniform = run_paper_workflow(
        mix_workload, mode="merged", wc_dict_kind="unordered_map", workers=16,
        max_iters=5,
    ).total_s

    report(
        "ablation_planner",
        "A1 — planner pick vs fixed configurations (Mix, virtual s)\n"
        + plan.explain()
        + "\n\n"
        f"  picked config measured:        {picked:8.2f}\n"
        f"  naive discrete/u-map/1T:       {naive_sequential_discrete:8.2f}\n"
        f"  naive merged/u-map/16T:        {naive_parallel_uniform:8.2f}",
    )

    # The planner's choice beats the naive baselines decisively.
    assert picked < naive_sequential_discrete / 3
    assert picked <= naive_parallel_uniform * 1.05
    # And its ranking agrees with reality on the extremes.
    assert plan.best.config.mode == "merged"
    assert plan.best.config.workers == 16


def test_planner_memory_budget_changes_choice(benchmark, plan, mix_workload):
    """Constraining memory must steer the planner away from the
    hash-heavy configurations (the 12.8 GB offenders)."""
    planner = WorkflowPlanner(
        paper_node(16),
        dict_kinds=("map", "unordered_map"),
        modes=("merged",),
        worker_options=(16,),
        mixed_dicts=False,
    )
    constrained = benchmark.pedantic(
        lambda: planner.plan(
            mix_workload.storage,
            mix_workload.prefix,
            pilot_docs=64,
            max_iters=5,
            memory_budget_bytes=2e9,
        ),
        rounds=1,
        iterations=1,
    )
    assert constrained.best.config.wc_dict_kind == "map"
