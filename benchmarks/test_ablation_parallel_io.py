"""Ablation A2 — parallel input (optimization 2) and the storage device.

The paper's phase 1 reads thousands of independent files; intra-node
parallelism "allows on the one hand to read independent files
concurrently, and on the other hand overlapping data processing with disk
and network access latency" (§1). This ablation sweeps the number of
concurrent I/O channels of the simulated disk and swaps the HDD for an
NVMe-class device, isolating how much of the input+wc phase's scaling
comes from the storage model.
"""

import dataclasses

import pytest

from repro.core import build_tfidf_kmeans_workflow
from repro.exec import SimScheduler, fast_ssd_node, paper_node


def input_wc_seconds(workload, machine, workers):
    workflow = build_tfidf_kmeans_workflow(
        mode="merged", wc_dict_kind="map", max_iters=3, scale=workload.scale
    )
    result = workflow.run(
        SimScheduler(machine),
        workload.storage,
        inputs={"tfidf.corpus_prefix": workload.prefix},
        workers=workers,
    )
    return result.breakdown()["input+wc"]


@pytest.fixture(scope="module")
def channel_sweep(mix_workload):
    times = {}
    for channels in (1, 2, 4, 8):
        machine = dataclasses.replace(paper_node(16), io_channels=channels)
        times[channels] = input_wc_seconds(mix_workload, machine, workers=16)
    return times


def test_io_channel_sweep(benchmark, channel_sweep, report):
    times = benchmark.pedantic(lambda: channel_sweep, rounds=1, iterations=1)
    lines = ["A2 — input+wc @16T vs I/O channels (Mix, virtual s)"]
    for channels, elapsed in sorted(times.items()):
        lines.append(f"  {channels} channel(s): {elapsed:7.2f}")
    report("ablation_parallel_io", "\n".join(lines))

    # More channels never hurt, and help when the device is the bottleneck.
    ordered = [times[c] for c in sorted(times)]
    assert all(b <= a + 1e-9 for a, b in zip(ordered, ordered[1:]))


def test_ssd_removes_storage_bottleneck(benchmark, mix_workload):
    hdd_16, ssd_16 = benchmark.pedantic(
        lambda: (
            input_wc_seconds(mix_workload, paper_node(16), workers=16),
            input_wc_seconds(mix_workload, fast_ssd_node(16), workers=16),
        ),
        rounds=1,
        iterations=1,
    )
    assert ssd_16 <= hdd_16

    # On the SSD the phase is compute-bound, so it scales almost linearly.
    ssd_1 = input_wc_seconds(mix_workload, fast_ssd_node(16), workers=1)
    assert ssd_1 / ssd_16 > 8.0


def test_discrete_workflow_gains_more_from_ssd(benchmark, nsf_workload):
    """Fusion matters less on fast storage: the ARFF round trip shrinks.

    This is the planner-relevant interaction between optimizations 2 & 3.
    """
    def run():
        ratios = {}
        for machine, label in ((paper_node(16), "hdd"), (fast_ssd_node(16), "ssd")):
            times = {}
            for mode in ("discrete", "merged"):
                workflow = build_tfidf_kmeans_workflow(
                    mode=mode, max_iters=3, scale=nsf_workload.scale
                )
                times[mode] = workflow.run(
                    SimScheduler(machine),
                    nsf_workload.storage,
                    inputs={"tfidf.corpus_prefix": nsf_workload.prefix},
                    workers=16,
                ).total_s
            ratios[label] = times["discrete"] / times["merged"]
        return ratios

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ratios["ssd"] < ratios["hdd"]
