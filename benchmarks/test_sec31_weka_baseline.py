"""§3.1 — sparse parallel K-means vs WEKA's SimpleKMeans.

Paper text: "Using the 'SimpleKMeans' algorithm, a single-threaded K-Means
algorithm, on the same data sets requires over 2 hours, after which we
aborted the execution. In contrast, executing our implementation
sequentially required 3.3s and 40.9s for the Mix and NSF Abstracts data
sets respectively."

The baseline's pathologies (dense vectors over the full vocabulary,
per-iteration allocation churn) are executed for real at benchmark scale
and projected to full scale with the closed-form model.
"""

from repro.bench import run_paper_workflow
from repro.core import format_comparison_rows
from repro.exec import SimScheduler, paper_node
from repro.ops import SimpleKMeansBaseline
from repro.text import MIX_PROFILE, NSF_ABSTRACTS_PROFILE


def _hours(seconds: float) -> str:
    return f"{seconds / 3600:.1f} h"


def test_sec31_weka_comparison(benchmark, mix_workload, nsf_workload, report):
    def run():
        rows = []
        for workload, profile, paper_ours in (
            (mix_workload, MIX_PROFILE, "3.3 s"),
            (nsf_workload, NSF_ABSTRACTS_PROFILE, "40.9 s"),
        ):
            ours = run_paper_workflow(workload, workers=1).breakdown()["kmeans"]
            baseline = SimpleKMeansBaseline(n_clusters=8, max_iters=10)
            projected = baseline.projected_seconds(
                n_docs=profile.paper_documents,
                vocabulary=profile.paper_distinct_words,
            )
            rows.append(
                (f"{profile.name}: ours sequential", paper_ours, f"{ours:.1f} s")
            )
            rows.append(
                (
                    f"{profile.name}: WEKA SimpleKMeans",
                    "> 2 h (aborted)",
                    _hours(projected),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "sec31_weka_baseline",
        format_comparison_rows(rows, title="§3.1 — K-means vs WEKA SimpleKMeans"),
    )

    # Shape: the baseline projects past the paper's 2-hour abort threshold
    # on both data sets while ours stays in seconds.
    baseline = SimpleKMeansBaseline(n_clusters=8, max_iters=10)
    for profile in (MIX_PROFILE, NSF_ABSTRACTS_PROFILE):
        assert (
            baseline.projected_seconds(
                profile.paper_documents, profile.paper_distinct_words
            )
            > 2 * 3600
        )


def test_sec31_baseline_runs_for_real_at_scale(benchmark, mix_workload):
    """The baseline isn't only a formula: it really clusters (serially)."""
    tfidf = run_paper_workflow(mix_workload, workers=1)
    scores = tfidf.value("tfidf.scores")
    baseline = SimpleKMeansBaseline(n_clusters=8, max_iters=5)
    result = benchmark.pedantic(
        lambda: baseline.run_simulated(SimScheduler(paper_node(1)), scores.matrix),
        rounds=1,
        iterations=1,
    )
    assert len(result.assignments) == scores.matrix.n_rows
    assert all(p.workers == 1 for p in result.timeline.phases)
