"""Figure 1 — self-relative scalability of the K-means operator.

Paper shape: Mix (23 432 docs) saturates around 2.5x regardless of thread
count, while NSF Abstracts (101 483 docs) keeps scaling to roughly 8x —
"as the number of documents grows, so does the parallel scalability".

The mechanism reproduced here is the assignment loop's fixed scheduling
grain (8 192 documents per chunk): Mix yields only ~3 chunks, NSF ~12.
"""

import pytest

from repro.bench import THREAD_SWEEP, run_paper_workflow
from repro.core import format_speedup_table, series_to_csv
from repro.exec import self_relative_speedups


def kmeans_seconds(workload, workers):
    result = run_paper_workflow(
        workload, mode="merged", wc_dict_kind="map", workers=workers
    )
    return result.breakdown()["kmeans"]


@pytest.fixture(scope="module")
def figure1_series(mix_workload, nsf_workload):
    return {
        "Mix": {T: kmeans_seconds(mix_workload, T) for T in THREAD_SWEEP},
        "NSF abstracts": {
            T: kmeans_seconds(nsf_workload, T) for T in THREAD_SWEEP
        },
    }


def test_fig1_kmeans_self_relative_speedup(benchmark, figure1_series, report):
    series = benchmark.pedantic(
        lambda: figure1_series, rounds=1, iterations=1
    )
    table = format_speedup_table(
        series,
        title=(
            "Figure 1 — K-means self-relative speedup "
            "(paper: Mix ~2.5x, NSF ~8x at 20 threads)"
        ),
    )
    report("fig1_kmeans_scaling", table)
    report("fig1_kmeans_scaling_seconds_csv", series_to_csv(series))

    mix = self_relative_speedups(series["Mix"])
    nsf = self_relative_speedups(series["NSF abstracts"])

    # Shape 1: NSF scales far better than Mix at high thread counts.
    assert nsf[20] > 2 * mix[20]
    # Shape 2: Mix saturates early — near its ~2.5-3x ceiling by 8 threads.
    assert mix[20] < 4.0
    assert mix[20] - mix[8] < 0.5
    # Shape 3: NSF lands in the paper's regime (~8x, we accept 6-13).
    assert 6.0 < nsf[20] < 13.0
    # Shape 4: speedups are monotone non-decreasing in threads.
    for speedups in (mix, nsf):
        values = [speedups[T] for T in THREAD_SWEEP]
        assert all(b >= a - 0.05 for a, b in zip(values, values[1:]))


def test_fig1_sequential_anchor_times(benchmark, mix_workload, nsf_workload, report):
    """§3.1: sequential K-means took 3.3s (Mix) and 40.9s (NSF Abstracts)."""
    mix_seq, nsf_seq = benchmark.pedantic(
        lambda: (kmeans_seconds(mix_workload, 1), kmeans_seconds(nsf_workload, 1)),
        rounds=1,
        iterations=1,
    )
    report(
        "fig1_sequential_anchors",
        "sequential K-means (virtual seconds, full-scale)\n"
        f"  Mix: paper 3.3s, measured {mix_seq:.1f}s\n"
        f"  NSF: paper 40.9s, measured {nsf_seq:.1f}s\n"
        "  (iteration counts are not reported by the paper; both anchors\n"
        "   land within ~2x with a shared calibration)",
    )
    assert 1.5 < mix_seq < 12.0
    assert 12.0 < nsf_seq < 90.0
    assert nsf_seq > 3 * mix_seq
