"""§1/§3.4 headline — "a 3.4 fold speedup by interchanging one
standardized data structure for another".

The paper does not pin the exact measurement behind the headline; this
benchmark reports the per-phase and whole-workflow swap gains on the Mix
data set across thread counts, and asserts that a swap of ``std::map`` for
``std::unordered_map`` (or vice versa) yields a multi-fold gain somewhere
— and that the winning structure depends on the phase and thread count,
which is the paper's actual point.
"""

import pytest

from repro.bench import run_paper_workflow
from repro.core import format_comparison_rows


@pytest.fixture(scope="module")
def swap_runs(mix_workload):
    runs = {}
    for workers in (1, 16):
        for kind in ("map", "unordered_map"):
            runs[(kind, workers)] = run_paper_workflow(
                mix_workload, mode="merged", wc_dict_kind=kind, workers=workers
            )
    return runs


def test_sec34_data_structure_swap_gains(benchmark, swap_runs, report):
    runs = benchmark.pedantic(lambda: swap_runs, rounds=1, iterations=1)

    gains = []
    for phase in ("input+wc", "transform"):
        for workers in (1, 16):
            tree = runs[("map", workers)].breakdown()[phase]
            hashed = runs[("unordered_map", workers)].breakdown()[phase]
            ratio = max(tree, hashed) / min(tree, hashed)
            winner = "map" if tree < hashed else "u-map"
            gains.append((phase, workers, ratio, winner))

    rows = [
        (
            f"{phase} @{workers}T swap gain",
            "up to 3.4x (headline)",
            f"{ratio:.2f}x (winner: {winner})",
        )
        for phase, workers, ratio, winner in gains
    ]
    report(
        "sec34_dict_speedup",
        format_comparison_rows(
            rows, title="§3.4 — gain from swapping the dictionary structure"
        ),
    )

    best_gain = max(ratio for _, _, ratio, _ in gains)
    # Shape 1: swapping structures changes some phase by a multi-fold factor.
    assert best_gain > 1.8
    # Shape 2: no single structure wins everywhere — the choice is
    # phase-dependent (the premise of per-phase selection).
    winners = {winner for _, _, _, winner in gains}
    assert winners == {"map", "u-map"}


def test_sec34_winner_depends_on_thread_count(benchmark, swap_runs):
    """§3.4: the optimization problem is non-trivial because the best
    structure for the transform flips with parallelism degree."""
    swap_runs = benchmark.pedantic(lambda: swap_runs, rounds=1, iterations=1)
    t1_map = swap_runs[("map", 1)].breakdown()["transform"]
    t1_hash = swap_runs[("unordered_map", 1)].breakdown()["transform"]
    t16_map = swap_runs[("map", 16)].breakdown()["transform"]
    t16_hash = swap_runs[("unordered_map", 16)].breakdown()["transform"]
    assert t1_hash < t1_map  # hash wins sequential transform
    assert t16_map < t16_hash * 1.6  # tree competitive/winning at 16T
