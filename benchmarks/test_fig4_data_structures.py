"""Figure 4 — std::unordered_map (u-map) vs std::map, Mix data set.

Paper shapes (merged TF/IDF→K-means workflow on Mix):

* the insert-heavy *input+wc* phase is faster with the tree (``map``);
* the lookup-only *transform* phase is faster with the hash table at one
  thread, but scales to only 3.4x at 16 threads versus 6.1x for the tree
  (memory pressure from the sparse, very large array);
* main memory: ~420 MB with the map vs ~12.8 GB with the unordered map.
"""

import pytest

from repro.bench import FIG3_THREADS, run_paper_workflow
from repro.core import format_breakdown_table, format_comparison_rows

PHASE_ORDER = ["input+wc", "transform", "kmeans", "output"]


@pytest.fixture(scope="module")
def figure4_runs(mix_workload):
    runs = {}
    for workers in FIG3_THREADS:
        for kind in ("unordered_map", "map"):
            runs[(kind, workers)] = run_paper_workflow(
                mix_workload, mode="merged", wc_dict_kind=kind, workers=workers
            )
    return runs


def test_fig4_dictionary_breakdown(benchmark, figure4_runs, report):
    runs = benchmark.pedantic(lambda: figure4_runs, rounds=1, iterations=1)
    label = {"unordered_map": "u-map", "map": "map"}
    breakdowns = {
        f"{label[kind]}/{workers}T": runs[(kind, workers)].breakdown()
        for workers in FIG3_THREADS
        for kind in ("unordered_map", "map")
    }
    table = format_breakdown_table(
        breakdowns,
        phases=PHASE_ORDER,
        title=(
            "Figure 4 — TF/IDF->K-means execution time (s), Mix,\n"
            "std::unordered_map (u-map) vs std::map (map)"
        ),
    )

    def transform_scaling(kind):
        one = runs[(kind, 1)].breakdown()["transform"]
        sixteen = runs[(kind, 16)].breakdown()["transform"]
        return one / sixteen

    map_scaling = transform_scaling("map")
    umap_scaling = transform_scaling("unordered_map")
    map_memory = runs[("map", 16)].peak_resident_bytes
    umap_memory = runs[("unordered_map", 16)].peak_resident_bytes
    rows = format_comparison_rows(
        [
            ("transform scaling (map)", "6.1x", f"{map_scaling:.1f}x"),
            ("transform scaling (u-map)", "3.4x", f"{umap_scaling:.1f}x"),
            ("memory (map)", "420 MB", f"{map_memory / 1e6:.0f} MB"),
            ("memory (u-map)", "12.8 GB", f"{umap_memory / 1e9:.1f} GB"),
        ],
        title="Figure 4 anchors",
    )
    report("fig4_data_structures", table + "\n\n" + rows)

    # Shape 1 (§3.4): input+wc is faster with the map at one thread.
    assert (
        runs[("map", 1)].breakdown()["input+wc"]
        < runs[("unordered_map", 1)].breakdown()["input+wc"]
    )
    # Shape 2: transform is faster with the unordered map at one thread.
    assert (
        runs[("unordered_map", 1)].breakdown()["transform"]
        < runs[("map", 1)].breakdown()["transform"]
    )
    # Shape 3: the map's transform scales much better (paper 6.1 vs 3.4).
    assert map_scaling > 1.5 * umap_scaling
    assert 4.5 < map_scaling < 8.5
    assert 1.5 < umap_scaling < 4.5
    # Shape 4: memory contrast of more than an order of magnitude.
    assert umap_memory > 10 * map_memory
    assert 0.2e9 < map_memory < 1.5e9  # paper: 420 MB
    assert 6e9 < umap_memory < 25e9  # paper: 12.8 GB


def test_fig4_per_phase_choice_beats_uniform(benchmark, mix_workload, report):
    """§3.4's conclusion operationalized: different steps prefer different
    structures, so the best assignment is per-phase (the planner's job)."""
    uniform_map = benchmark.pedantic(
        lambda: run_paper_workflow(
            mix_workload, wc_dict_kind="map", workers=16
        ).total_s,
        rounds=1,
        iterations=1,
    )
    uniform_hash = run_paper_workflow(
        mix_workload, wc_dict_kind="unordered_map", workers=16
    ).total_s
    mixed = run_paper_workflow(
        mix_workload,
        wc_dict_kind="map",
        transform_dict_kind="unordered_map",
        workers=16,
    ).total_s
    report(
        "fig4_mixed_dicts",
        "per-phase dictionary choice, Mix @16T (virtual s)\n"
        f"  uniform map:            {uniform_map:8.2f}\n"
        f"  uniform unordered_map:  {uniform_hash:8.2f}\n"
        f"  map wc + u-map rest:    {mixed:8.2f}",
    )
    assert mixed <= min(uniform_map, uniform_hash) * 1.05
