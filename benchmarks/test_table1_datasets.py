"""Table 1 — data set description.

Paper reference values::

    Input          Documents  Bytes     Distinct words
    Mix            23 432     62.8 MB   184 743
    NSF Abstracts  101 483    310.9 MB  267 914

The benchmark generates both corpora at benchmark scale, measures their
statistics, and extrapolates documents/bytes linearly and the vocabulary
along the calibrated Heaps curve.
"""

from repro.core import format_comparison_rows
from repro.text import MIX_PROFILE, NSF_ABSTRACTS_PROFILE


def _mb(n_bytes: float) -> str:
    return f"{n_bytes / (1024 * 1024):.1f} MB"


def _rows(workload):
    profile = workload.profile
    stats = workload.stats
    doc_factor = workload.scale.doc_factor
    extrapolated_vocab = profile.expected_vocabulary(
        stats.total_tokens * doc_factor
    )
    return [
        (
            f"{profile.name}: documents",
            f"{profile.paper_documents:,}",
            f"{stats.documents * doc_factor:,.0f}",
        ),
        (
            f"{profile.name}: bytes",
            _mb(profile.paper_bytes),
            _mb(stats.total_bytes * doc_factor),
        ),
        (
            f"{profile.name}: distinct words",
            f"{profile.paper_distinct_words:,}",
            f"{extrapolated_vocab:,} (measured {stats.distinct_words:,} at scale)",
        ),
    ]


def test_table1_dataset_description(benchmark, mix_workload, nsf_workload, report):
    def run():
        return _rows(mix_workload) + _rows(nsf_workload)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_comparison_rows(rows, title="Table 1 — data set description")
    report("table1_datasets", text)

    # Shape assertions: extrapolated statistics within 25% of the paper.
    for workload, profile in (
        (mix_workload, MIX_PROFILE),
        (nsf_workload, NSF_ABSTRACTS_PROFILE),
    ):
        stats = workload.stats
        bytes_full = stats.total_bytes * workload.scale.doc_factor
        assert abs(bytes_full - profile.paper_bytes) / profile.paper_bytes < 0.25
        vocab_full = profile.expected_vocabulary(
            stats.total_tokens * workload.scale.doc_factor
        )
        assert (
            abs(vocab_full - profile.paper_distinct_words)
            / profile.paper_distinct_words
            < 0.25
        )
