"""Ablation A3 — a third dictionary in the Figure 4 design space.

Extension beyond the paper: a cache-conscious B-tree occupies the point
between ``std::map`` (sorted iteration, many pointer chases) and
``std::unordered_map`` (O(1) lookups, memory pressure): it keeps sorted
iteration while replacing most pointer chases with in-node scans, and its
memory stays proportional to live entries. The ablation places all three
structures on the Mix workflow.
"""

import pytest

from repro.bench import run_paper_workflow
from repro.core import format_breakdown_table

KINDS = ("map", "unordered_map", "btree")


@pytest.fixture(scope="module")
def btree_runs(mix_workload):
    runs = {}
    for workers in (1, 16):
        for kind in KINDS:
            runs[(kind, workers)] = run_paper_workflow(
                mix_workload, mode="merged", wc_dict_kind=kind, workers=workers
            )
    return runs


def test_btree_in_figure4_design_space(benchmark, btree_runs, report):
    runs = benchmark.pedantic(lambda: btree_runs, rounds=1, iterations=1)
    breakdowns = {
        f"{kind}/{workers}T": runs[(kind, workers)].breakdown()
        for workers in (1, 16)
        for kind in KINDS
    }
    table = format_breakdown_table(
        breakdowns,
        phases=["input+wc", "transform", "kmeans", "output"],
        title="A3 — three dictionary structures on the Mix workflow (s)",
    )
    memory_lines = [
        f"  {kind:>14}: {runs[(kind, 16)].peak_resident_bytes / 1e9:6.2f} GB"
        for kind in KINDS
    ]
    report(
        "ablation_btree",
        table + "\n\npeak modelled memory:\n" + "\n".join(memory_lines),
    )

    # The B-tree's memory stays tree-like, far below the pre-sized tables.
    assert (
        runs[("btree", 16)].peak_resident_bytes
        < runs[("unordered_map", 16)].peak_resident_bytes / 5
    )
    # And its input+wc beats the red-black tree (fewer pointer chases).
    assert (
        runs[("btree", 1)].breakdown()["input+wc"]
        < runs[("map", 1)].breakdown()["input+wc"]
    )


def test_btree_correctness_on_workflow(benchmark, mix_workload):
    """Same clustering as the other dictionary kinds."""
    reference = run_paper_workflow(mix_workload, wc_dict_kind="map", workers=4)
    btree = benchmark.pedantic(
        lambda: run_paper_workflow(mix_workload, wc_dict_kind="btree", workers=4),
        rounds=1,
        iterations=1,
    )
    assert (
        btree.value("kmeans.clusters").assignments
        == reference.value("kmeans.clusters").assignments
    )
