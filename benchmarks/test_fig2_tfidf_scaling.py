"""Figure 2 — self-relative scalability of the TF/IDF operator.

Paper shape: TF/IDF speeds up ~6x (Mix) and ~7x (NSF Abstracts) at 20
threads. Phase 1 (input + word count) parallelises over documents and
hides storage latency behind computation (the parallel-input
optimization); the ARFF output phase does not parallelise and, together
with the storage device, caps the curve.
"""

import pytest

from repro.bench import THREAD_SWEEP, run_paper_workflow
from repro.core import format_speedup_table, series_to_csv
from repro.exec import self_relative_speedups


def tfidf_seconds(workload, workers):
    result = run_paper_workflow(
        workload, mode="discrete", wc_dict_kind="map", workers=workers
    )
    breakdown = result.breakdown()
    return (
        breakdown["input+wc"] + breakdown["transform"] + breakdown["tfidf-output"]
    )


@pytest.fixture(scope="module")
def figure2_series(mix_workload, nsf_workload):
    return {
        "Mix": {T: tfidf_seconds(mix_workload, T) for T in THREAD_SWEEP},
        "NSF abstracts": {
            T: tfidf_seconds(nsf_workload, T) for T in THREAD_SWEEP
        },
    }


def test_fig2_tfidf_self_relative_speedup(benchmark, figure2_series, report):
    series = benchmark.pedantic(lambda: figure2_series, rounds=1, iterations=1)
    table = format_speedup_table(
        series,
        title=(
            "Figure 2 — TF/IDF self-relative speedup "
            "(paper: Mix ~6x, NSF ~7x at 20 threads)"
        ),
    )
    report("fig2_tfidf_scaling", table)
    report("fig2_tfidf_scaling_seconds_csv", series_to_csv(series))

    mix = self_relative_speedups(series["Mix"])
    nsf = self_relative_speedups(series["NSF abstracts"])

    # Shape 1: both data sets scale strongly (well beyond 3x)...
    assert mix[20] > 3.5
    assert nsf[20] > 3.5
    # ...but clearly sub-linear: the serial output phase binds.
    assert mix[20] < 10.0
    assert nsf[20] < 10.0
    # Shape 2: the larger corpus scales at least as well as the smaller.
    assert nsf[20] >= mix[20] - 0.5
    # Shape 3: monotone in thread count.
    for speedups in (mix, nsf):
        values = [speedups[T] for T in THREAD_SWEEP]
        assert all(b >= a - 0.05 for a, b in zip(values, values[1:]))


def test_fig2_parallel_input_hides_io(benchmark, mix_workload):
    """Optimization 2: with many threads the input phase's I/O overlaps
    computation, so input+wc still speeds up >5x despite reading every
    file from the simulated disk."""
    one, many = benchmark.pedantic(
        lambda: (
            run_paper_workflow(mix_workload, workers=1).breakdown()["input+wc"],
            run_paper_workflow(mix_workload, workers=16).breakdown()["input+wc"],
        ),
        rounds=1,
        iterations=1,
    )
    assert one / many > 5.0
