"""CI smoke for the out-of-core tiled data plane: run under a hard cap.

The benchmark (``tools/bench_wallclock.py --mode oocore``) measures; this
smoke *enforces*. It runs the same pipeline three times in fresh child
processes (via :mod:`repro.bench.oocore_child`, so each child owns its
``ru_maxrss``/``VmPeak`` high-water marks):

1. **untiled** — the reference digest and the untiled address-space
   footprint (``VmPeak``);
2. **tiled, uncapped** — a memory budget smaller than the matrix; must
   be bit-identical and keep ``peak_pinned_bytes`` under the budget;
3. **tiled, capped** — the same budgeted run under ``RLIMIT_AS`` set
   *below the untiled footprint* (midway between the two measured
   ``VmPeak`` values). The untiled pipeline could not even map that much
   address space; the tiled one must complete there bit-identically.

Exit code 0 when all three gates hold; 1 with a diagnostic otherwise.
A separation gate guards the cap itself: if tiling stopped saving
address space (tiled ``VmPeak`` within ``--min-separation-mb`` of
untiled), the midpoint cap would be meaningless, so that regresses too.

Usage::

    PYTHONPATH=src python tools/oocore_smoke.py            # CI defaults
    PYTHONPATH=src python tools/oocore_smoke.py --scale 0.1 --verbose
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))


def _child(config: dict, label: str, verbose: bool) -> dict:
    env = dict(os.environ)
    src_root = os.path.join(REPO, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root + os.pathsep + existing if existing else src_root
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench.oocore_child", json.dumps(config)],
        capture_output=True,
        text=True,
        env=env,
    )
    if proc.returncode != 0:
        tail = proc.stderr.strip()[-800:]
        raise RuntimeError(f"{label} child failed (exit {proc.returncode}): {tail}")
    out = json.loads(proc.stdout.strip().splitlines()[-1])
    if verbose:
        print(
            f"  {label}: total {out['total_s']:.3f}s, "
            f"rss {out['peak_rss_kb'] / 1024:.1f} MB, "
            f"vm_peak {out['vm_peak_kb'] / 1024:.1f} MB"
        )
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", choices=["mix", "nsf-abstracts"],
                        default="mix")
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--kmeans-iters", type=int, default=3)
    parser.add_argument("--budget-fraction", type=float, default=0.25,
                        help="memory budget as a fraction of the matrix "
                        "footprint (must be < 1: the out-of-core case)")
    parser.add_argument("--min-separation-mb", type=float, default=4.0,
                        help="minimum address-space saving (untiled VmPeak "
                        "minus tiled VmPeak) for the cap to be meaningful")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    if not 0 < args.budget_fraction < 1:
        print(f"error: --budget-fraction must be in (0, 1), got "
              f"{args.budget_fraction}", file=sys.stderr)
        return 1

    base = {
        "profile": args.profile,
        "scale": args.scale,
        "seed": args.seed,
        "kmeans_iters": args.kmeans_iters,
        "backend": "sequential",
        "workers": 1,
    }

    try:
        print("untiled reference...")
        ref = _child(base, "untiled", args.verbose)
        matrix_bytes = int(ref["matrix_bytes"])
        budget = max(1, int(matrix_bytes * args.budget_fraction))
        print(f"matrix {matrix_bytes:,} bytes; budget {budget:,} "
              f"({args.budget_fraction:g}x)")

        print("tiled, uncapped...")
        tiled = _child({**base, "memory_budget": budget}, "tiled", args.verbose)
        if tiled["digest"] != ref["digest"]:
            print("error: tiled output diverged from the untiled reference",
                  file=sys.stderr)
            return 1
        pinned = int(tiled["tiles"]["peak_pinned_bytes"])
        if pinned > budget:
            print(f"error: peak_pinned_bytes {pinned:,} exceeds the "
                  f"{budget:,}-byte budget", file=sys.stderr)
            return 1

        separation_kb = int(ref["vm_peak_kb"]) - int(tiled["vm_peak_kb"])
        if separation_kb < args.min_separation_mb * 1024:
            print(f"error: tiling saved only {separation_kb} kB of address "
                  f"space (untiled VmPeak {ref['vm_peak_kb']} kB, tiled "
                  f"{tiled['vm_peak_kb']} kB) — below the "
                  f"{args.min_separation_mb:g} MB separation gate, so an "
                  f"RLIMIT_AS below the untiled footprint cannot be set "
                  f"meaningfully", file=sys.stderr)
            return 1

        # Midway between the two footprints: provably below what the
        # untiled run needed, comfortably above what the tiled run used.
        cap_bytes = 1024 * (int(ref["vm_peak_kb"]) + int(tiled["vm_peak_kb"])) // 2
        print(f"tiled under RLIMIT_AS {cap_bytes:,} bytes "
              f"(untiled needed {ref['vm_peak_kb'] * 1024:,})...")
        capped = _child(
            {**base, "memory_budget": budget, "rlimit_as": cap_bytes},
            "capped", args.verbose,
        )
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if capped["digest"] != ref["digest"]:
        print("error: capped tiled output diverged from the untiled "
              "reference", file=sys.stderr)
        return 1
    print(f"ok: bounded-memory run bit-identical under an address-space cap "
          f"{(ref['vm_peak_kb'] * 1024 - cap_bytes) / 1e6:.1f} MB below the "
          f"untiled footprint (budget {budget:,} B, peak pinned {pinned:,} B)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
