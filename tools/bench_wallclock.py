"""Wall-clock benchmark CLI: backends × workers → BENCH_wallclock.json.

Sweeps the real execution backends (sequential, threads, processes) over
worker counts on the synthetic Mix corpus and records per-phase wall-clock
seconds — the repo's hardware-performance trajectory. Usage::

    PYTHONPATH=src python tools/bench_wallclock.py                 # full sweep
    PYTHONPATH=src python tools/bench_wallclock.py --tiny          # CI smoke
    PYTHONPATH=src python tools/bench_wallclock.py --scale 0.05 \
        --workers 1 2 4 8 --repeats 3 --out BENCH_wallclock.json

Every run cross-checks that all backends produce identical operator
output, so a green benchmark is also an equivalence certificate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.bench.wallclock import DEFAULT_WORKER_SWEEP, bench_wallclock  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", choices=["mix", "nsf-abstracts"], default="mix")
    parser.add_argument("--scale", type=float, default=0.01,
                        help="corpus scale (fraction of the full profile)")
    parser.add_argument("--backends", nargs="+",
                        default=["sequential", "threads", "processes"],
                        choices=["sequential", "threads", "processes"])
    parser.add_argument("--workers", nargs="+", type=int,
                        default=list(DEFAULT_WORKER_SWEEP))
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--kmeans-iters", type=int, default=5)
    parser.add_argument("--out", default=os.path.join(REPO, "BENCH_wallclock.json"))
    parser.add_argument("--tiny", action="store_true",
                        help="smoke-test configuration (seconds, not minutes)")
    args = parser.parse_args(argv)

    if args.tiny:
        args.scale = min(args.scale, 0.002)
        args.workers = [w for w in args.workers if w <= 2] or [1, 2]
        args.repeats = 1
        args.kmeans_iters = 2

    record = bench_wallclock(
        profile=args.profile,
        scale=args.scale,
        backends=args.backends,
        workers=args.workers,
        repeats=args.repeats,
        seed=args.seed,
        kmeans_iters=args.kmeans_iters,
    )

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")

    print(f"{record['n_docs']} documents, profile={record['profile']} "
          f"scale={record['scale']}, host cpus={record['host']['cpu_count']}")
    header = f"{'backend':>12} {'workers':>7} {'total_s':>9} {'speedup':>8} identical"
    print(header)
    for run in record["runs"]:
        print(f"{run['backend']:>12} {run['workers']:>7} "
              f"{run['total_s']:>9.3f} {run['speedup_vs_sequential']:>8.2f} "
              f"{'yes' if run['output_identical'] else 'NO'}")
    if not all(run["output_identical"] for run in record["runs"]):
        print("error: backends disagree on operator output", file=sys.stderr)
        return 1
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
