"""Wall-clock benchmark CLI: backends × workers → BENCH_wallclock.json.

Two modes, both appending comparable records to the repo's performance
trajectory:

* ``--mode backends`` (default) sweeps the real execution backends
  (sequential, threads, processes) over worker counts on the in-memory
  synthetic Mix corpus.
* ``--mode read`` writes the corpus to an on-disk directory and sweeps
  **read-worker counts** through the bounded-prefetch parallel reader —
  the paper's §3.2 parallel-input optimization, measured end to end.
* ``--mode ipc`` sweeps the process backend's shared-memory plane on/off
  × worker counts, recording per-phase IPC accounting (bytes pickled,
  segments, broadcasts) — the counters that show the zero-copy win even
  where wall-clock deltas are noise.
* ``--mode faults`` injects deterministic faults (transient exceptions, a
  worker crash, a poisoned task) under a retry policy and records the
  recovery bill: re-executed tasks, pool restarts, quarantined documents,
  and wall-clock overhead versus a fault-free run. Recovered runs must be
  bit-identical; the quarantine run must differ by exactly its
  quarantined rows.
* ``--mode plan`` runs the pipeline under the measured-cost adaptive
  planner against hard-coded fixed configurations (and the fused
  wc→transform path against the unfused one where shm is available);
  exits nonzero if the planned total is not within 10% of the best fixed
  total, or if fusion fails to eliminate transform task-pickle bytes.
* ``--mode cache`` runs the cold → warm → incremental triple through the
  phase-level result cache; exits nonzero unless the warm run serves all
  three phases bit-identically with zero recompute and the incremental
  run (tail-edited + appended corpus) matches an uncached run on the
  modified corpus while reusing unchanged word-count shards.
* ``--mode oocore`` measures the out-of-core tiled data plane: fresh
  child processes run the pipeline untiled, then under memory budgets
  derived from the measured matrix footprint (including budgets smaller
  than the matrix). Exits nonzero unless every budgeted run is
  bit-identical to the untiled reference and keeps the spill plane's
  peak pinned bytes under its budget; each run records its own peak RSS.
* ``--mode serve`` load-tests the serve daemon (``repro serve``):
  concurrent submissions through steady-state, backpressure (forced
  load-shedding), and a fault-injected crash + restart mid-load.
  Records throughput, latency percentiles, and shed/recovered counts;
  exits nonzero if any job is lost, double-completed, or differs from
  the one-shot reference digest (see docs/serving.md).

Usage::

    PYTHONPATH=src python tools/bench_wallclock.py                 # full sweep
    PYTHONPATH=src python tools/bench_wallclock.py --tiny          # CI smoke
    PYTHONPATH=src python tools/bench_wallclock.py --mode read \
        --read-workers 1 2 4 8 --repeats 3 --append
    PYTHONPATH=src python tools/bench_wallclock.py --mode ipc --append
    PYTHONPATH=src python tools/bench_wallclock.py --scale 0.05 \
        --workers 1 2 4 8 --repeats 3 --out BENCH_wallclock.json

With ``--append``, the output file accumulates a JSON list of records
(a legacy single-record file is converted in place); without it the file
is overwritten with one record. Every run cross-checks that all
configurations produce identical operator output, so a green benchmark is
also an equivalence certificate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.bench.wallclock import (  # noqa: E402
    DEFAULT_OOCORE_FRACTIONS,
    DEFAULT_READ_WORKER_SWEEP,
    DEFAULT_WORKER_SWEEP,
    bench_cache,
    bench_fault_recovery,
    bench_ipc_sweep,
    bench_oocore,
    bench_plan,
    bench_read_sweep,
    bench_serve,
    bench_wallclock,
)
from repro.io.atomic import atomic_write_text  # noqa: E402


def _write(out: str, record: dict, append: bool) -> None:
    """Write (or append to) the records file atomically.

    The trajectory file is append-forever: a crash mid-write must leave
    either the old contents or the new, never a truncated JSON document
    that poisons every later ``--append``. Serialization happens before
    the target is touched; the replace is a single ``os.replace``.
    """
    if append and os.path.exists(out):
        with open(out, "r", encoding="utf-8") as handle:
            existing = json.load(handle)
        records = existing if isinstance(existing, list) else [existing]
        records.append(record)
    else:
        records = record
    atomic_write_text(out, json.dumps(records, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode",
                        choices=["backends", "read", "ipc", "faults", "plan",
                                 "cache", "oocore", "serve"],
                        default="backends",
                        help="sweep compute backends, read-worker counts "
                        "over an on-disk corpus (paper §3.2), the "
                        "shared-memory plane on/off with IPC accounting, "
                        "fault-injection recovery scenarios, the adaptive "
                        "planner vs fixed configurations, the "
                        "cold/warm/incremental result-cache triple, "
                        "out-of-core tiled execution under memory budgets, "
                        "or the serve daemon under concurrent load with a "
                        "crash-recovery fault variant")
    parser.add_argument("--profile", choices=["mix", "nsf-abstracts"], default="mix")
    parser.add_argument("--scale", type=float, default=0.01,
                        help="corpus scale (fraction of the full profile)")
    parser.add_argument("--backends", nargs="+",
                        default=["sequential", "threads", "processes"],
                        choices=["sequential", "threads", "processes"])
    parser.add_argument("--workers", nargs="+", type=int,
                        default=list(DEFAULT_WORKER_SWEEP))
    parser.add_argument("--read-workers", nargs="+", type=int,
                        default=list(DEFAULT_READ_WORKER_SWEEP),
                        help="read-thread counts for --mode read")
    parser.add_argument("--prefetch", type=int, default=None,
                        help="in-flight document bound for --mode read")
    parser.add_argument("--compute-backend", default="processes",
                        choices=["sequential", "threads", "processes"],
                        help="fixed compute backend for --mode read")
    parser.add_argument("--compute-workers", type=int, default=None,
                        help="fixed compute workers for --mode read "
                        "(default: cpu count)")
    parser.add_argument("--corpus-dir", default=None,
                        help="directory for the on-disk corpus in --mode "
                        "read (default: a temp dir, removed afterwards)")
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--kmeans-iters", type=int, default=5)
    parser.add_argument("--max-attempts", type=int, default=3,
                        help="retry budget per task for --mode faults")
    parser.add_argument("--fault-workers", type=int, default=2,
                        help="process workers for --mode faults")
    parser.add_argument("--budget-fractions", nargs="+", type=float,
                        default=list(DEFAULT_OOCORE_FRACTIONS),
                        help="memory budgets for --mode oocore, as "
                        "fractions of the measured matrix footprint "
                        "(must include a fraction < 1)")
    parser.add_argument("--serve-jobs", type=int, default=8,
                        help="concurrent submissions per scenario for "
                        "--mode serve")
    parser.add_argument("--serve-executors", type=int, default=2,
                        help="daemon executor threads for --mode serve")
    parser.add_argument("--serve-backend", default="threads",
                        choices=["sequential", "threads", "processes"],
                        help="job execution backend for --mode serve")
    parser.add_argument("--no-serve-fault", action="store_true",
                        help="skip the crash-recovery scenario in "
                        "--mode serve")
    parser.add_argument("--calibration", default=None, metavar="PATH",
                        help="calibration store for --mode plan (JSON; "
                        "probed from the corpus and persisted when the "
                        "file does not exist)")
    parser.add_argument("--process-workers", type=int, default=None,
                        help="worker count of the fixed process-backend "
                        "configuration in --mode plan (default: cpu count)")
    parser.add_argument("--trace", action="store_true",
                        help="span-trace every configuration in --mode "
                        "backends and embed utilization/straggler summaries "
                        "(adds a small tracing overhead to the timings)")
    parser.add_argument("--ledger", default=None, metavar="DIR",
                        help="append every --mode backends run to a run "
                        "ledger directory for repro analytics "
                        "(see docs/ledger.md)")
    parser.add_argument("--out", default=os.path.join(REPO, "BENCH_wallclock.json"))
    parser.add_argument("--append", action="store_true",
                        help="append the record to --out (JSON list) "
                        "instead of overwriting")
    parser.add_argument("--tiny", action="store_true",
                        help="smoke-test configuration (seconds, not minutes)")
    args = parser.parse_args(argv)

    if args.tiny:
        args.scale = min(args.scale, 0.002)
        args.workers = [w for w in args.workers if w <= 2] or [1, 2]
        args.read_workers = [w for w in args.read_workers if w <= 2] or [1, 2]
        args.repeats = 1
        args.kmeans_iters = 2
        if args.compute_workers is None:
            args.compute_workers = 2
        args.serve_jobs = min(args.serve_jobs, 4)

    if args.mode == "serve":
        record = bench_serve(
            profile=args.profile,
            scale=args.scale,
            n_jobs=args.serve_jobs,
            executors=args.serve_executors,
            workers=2 if args.tiny else 4,
            backend=args.serve_backend,
            repeats=args.repeats,
            seed=args.seed,
            kmeans_iters=args.kmeans_iters,
            fault=not args.no_serve_fault,
        )
    elif args.mode == "oocore":
        record = bench_oocore(
            profile=args.profile,
            scale=args.scale,
            repeats=args.repeats,
            seed=args.seed,
            kmeans_iters=args.kmeans_iters,
            budget_fractions=args.budget_fractions,
        )
    elif args.mode == "cache":
        record = bench_cache(
            profile=args.profile,
            scale=args.scale,
            repeats=args.repeats,
            seed=args.seed,
            kmeans_iters=args.kmeans_iters,
        )
    elif args.mode == "plan":
        record = bench_plan(
            profile=args.profile,
            scale=args.scale,
            repeats=args.repeats,
            seed=args.seed,
            kmeans_iters=args.kmeans_iters,
            calibration=args.calibration,
            process_workers=args.process_workers,
        )
    elif args.mode == "faults":
        record = bench_fault_recovery(
            profile=args.profile,
            scale=args.scale,
            workers=args.fault_workers,
            repeats=args.repeats,
            seed=args.seed,
            kmeans_iters=args.kmeans_iters,
            max_attempts=args.max_attempts,
        )
    elif args.mode == "ipc":
        record = bench_ipc_sweep(
            profile=args.profile,
            scale=args.scale,
            workers=args.workers,
            repeats=args.repeats,
            seed=args.seed,
            kmeans_iters=args.kmeans_iters,
        )
    elif args.mode == "read":
        record = bench_read_sweep(
            profile=args.profile,
            scale=args.scale,
            read_workers=args.read_workers,
            prefetch=args.prefetch,
            backend=args.compute_backend,
            workers=args.compute_workers,
            repeats=args.repeats,
            seed=args.seed,
            kmeans_iters=args.kmeans_iters,
            corpus_dir=args.corpus_dir,
        )
    else:
        record = bench_wallclock(
            profile=args.profile,
            scale=args.scale,
            backends=args.backends,
            workers=args.workers,
            repeats=args.repeats,
            seed=args.seed,
            kmeans_iters=args.kmeans_iters,
            trace=args.trace,
            ledger=args.ledger,
        )

    _write(args.out, record, args.append)

    print(f"{record['n_docs']} documents, profile={record['profile']} "
          f"scale={record['scale']}, host cpus={record['host']['cpu_count']}")
    if args.mode == "serve":
        header = (f"{'scenario':>15} {'total_s':>9} {'done':>5} "
                  f"{'shed':>5} {'recov':>6} {'p50_s':>7} {'p95_s':>7} "
                  f"{'jobs/s':>7} ok")
        print(header)
        for run in record["runs"]:
            p50 = run["latency_p50_s"]
            p95 = run["latency_p95_s"]
            thru = run["throughput_jobs_per_s"]
            print(f"{run['scenario']:>15} {run['total_s']:>9.3f} "
                  f"{run['done']:>5} {run['shed']:>5} {run['recovered']:>6} "
                  f"{(f'{p50:.3f}' if p50 is not None else '-'):>7} "
                  f"{(f'{p95:.3f}' if p95 is not None else '-'):>7} "
                  f"{(f'{thru:.2f}' if thru is not None else '-'):>7} "
                  f"{'yes' if run['ok'] else 'NO'}")
        summary = record["serve_summary"]
        print(f"lost: {summary['lost']}, double-completed: "
              f"{summary['double_completed']}, shed: {summary['shed']}, "
              f"recovered: {summary['recovered']} "
              f"({'ok' if summary['all_ok'] else 'FAILED'})")
    elif args.mode == "oocore":
        summary = record["oocore_summary"]
        print(f"matrix footprint: {summary['matrix_bytes']:,} bytes")
        header = (f"{'config':>14} {'budget_B':>10} {'total_s':>9} "
                  f"{'rss_MB':>8} {'pinned_peak_B':>13} {'tiles':>6} "
                  f"{'evict':>6} identical")
        print(header)
        for run in record["runs"]:
            tiles = run.get("tiles") or {}
            budget = run["memory_budget"]
            print(f"{run['label']:>14} "
                  f"{(f'{budget:,}' if budget else '-'):>10} "
                  f"{run['total_s']:>9.3f} "
                  f"{run['peak_rss_kb'] / 1024:>8.1f} "
                  f"{tiles.get('peak_pinned_bytes', 0):>13,} "
                  f"{tiles.get('tiles', 0):>6} "
                  f"{tiles.get('evictions', 0):>6} "
                  f"{'yes' if run['output_identical'] else 'NO'}")
        print(f"all identical: {summary['all_identical']}, "
              f"all under budget: {summary['all_under_budget']}")
    elif args.mode == "cache":
        header = (f"{'scenario':>12} {'total_s':>9} {'hits':>5} "
                  f"{'misses':>7} {'shard_hits':>10} {'MB_served':>10} ok")
        print(header)
        for run in record["runs"]:
            cache = run.get("cache") or {}
            print(f"{run['scenario']:>12} {run['total_s']:>9.3f} "
                  f"{cache.get('hits', 0):>5} {cache.get('misses', 0):>7} "
                  f"{cache.get('shard_hits', 0):>10} "
                  f"{cache.get('bytes_saved', 0) / 1e6:>10.2f} "
                  f"{'yes' if run['ok'] else 'NO'}")
        summary = record["cache_summary"]
        print(f"warm serve: {summary['warm_speedup_vs_uncached']:.1f}x vs "
              f"uncached ({summary['warm_seconds_saved']:.3f}s of compute "
              f"skipped); cold store overhead "
              f"{summary['cold_store_overhead_s']:.3f}s")
    elif args.mode == "plan":
        header = f"{'config':>26} {'total_s':>9} {'plan_s':>8} ok"
        print(header)
        for run in record["runs"]:
            plan_s = (
                f"{run['plan_seconds']:>8.3f}" if "plan_seconds" in run
                else f"{'-':>8}"
            )
            print(f"{run['config']:>26} {run['total_s']:>9.3f} {plan_s} "
                  f"{'yes' if run['ok'] else 'NO'}")
        pvf = record["planned_vs_fixed"]
        print(f"planned vs best fixed ({pvf['best_fixed_config']}): "
              f"{pvf['ratio']:.2f}x "
              f"(tolerance {1 + pvf['tolerance']:.2f}x, "
              f"{'ok' if pvf['within_tolerance'] else 'EXCEEDED'})")
        planned_run = next(r for r in record["runs"] if r["config"] == "planned")
        print(f"chosen plan: "
              + "; ".join(f"{phase}: {desc}" for phase, desc
                          in planned_run["plan"]["phases"].items()))
        if record["fusion"] is not None:
            fus = record["fusion"]
            print(f"fusion on {fus['config']}: transform task bytes "
                  f"{fus['unfused_transform_task_bytes']:,} unfused -> "
                  f"{fus['fused_transform_task_bytes']:,} fused "
                  f"({fus['eliminated_bytes']:,} eliminated, "
                  f"{'ok' if fus['ok'] else 'NOT ELIMINATED'})")
    elif args.mode == "faults":
        header = (f"{'scenario':>18} {'total_s':>9} {'overhead':>9} "
                  f"{'fired':>6} {'retries':>8} {'restarts':>9} "
                  f"{'quarantined':>11} ok")
        print(header)
        for run in record["runs"]:
            rec = run["recovery"]
            print(f"{run['scenario']:>18} {run['total_s']:>9.3f} "
                  f"{run['overhead_vs_baseline']:>8.2f}x "
                  f"{run['faults_fired']:>6} {rec['retries']:>8} "
                  f"{rec['pool_restarts']:>9} {rec['quarantined']:>11} "
                  f"{'yes' if run['ok'] else 'NO'}")
    elif args.mode == "ipc":
        header = (f"{'shm':>5} {'workers':>7} {'total_s':>9} "
                  f"{'task_MB':>9} {'kmeans_B/iter':>13} {'util':>5} identical")
        print(header)
        for run in record["runs"]:
            task_mb = run["ipc"]["total"]["task_pickle_bytes"] / 1e6
            util = run.get("utilization", {}).get("kmeans", 0.0)
            print(f"{('on' if run['shm'] else 'off'):>5} "
                  f"{run['workers']:>7} {run['total_s']:>9.3f} "
                  f"{task_mb:>9.2f} "
                  f"{run['kmeans_task_bytes_per_iter']:>13.0f} "
                  f"{util:>5.0%} "
                  f"{'yes' if run['output_identical'] else 'NO'}")
        # IPC records double as the utilization trajectory: a record
        # without the trace summary is an incomplete benchmark.
        missing = [
            index
            for index, run in enumerate(record["runs"])
            if "utilization" not in run or "straggler_ratio" not in run
            or not run.get("trace")
        ]
        if missing:
            print(f"error: ipc runs {missing} lack utilization/trace fields",
                  file=sys.stderr)
            return 1
    elif args.mode == "read":
        print(f"compute: {record['config']['backend']} x "
              f"{record['config']['workers']}")
        header = (f"{'read_workers':>12} {'total_s':>9} {'read_s':>8} "
                  f"{'speedup':>8} identical")
        print(header)
        for run in record["runs"]:
            print(f"{run['read_workers']:>12} {run['total_s']:>9.3f} "
                  f"{run['read_s']:>8.3f} "
                  f"{run['speedup_vs_serial_input']:>8.2f} "
                  f"{'yes' if run['output_identical'] else 'NO'}")
    else:
        header = f"{'backend':>12} {'workers':>7} {'total_s':>9} {'speedup':>8} identical"
        print(header)
        for run in record["runs"]:
            print(f"{run['backend']:>12} {run['workers']:>7} "
                  f"{run['total_s']:>9.3f} {run['speedup_vs_sequential']:>8.2f} "
                  f"{'yes' if run['output_identical'] else 'NO'}")
    # Fault runs judge themselves via "ok" (the quarantine scenario is
    # *supposed* to differ, by exactly its quarantined rows); everything
    # else must be bit-identical.
    if not all(run.get("ok", run["output_identical"]) for run in record["runs"]):
        print("error: benchmark self-check failed (output mismatch or "
              "planned run outside tolerance)", file=sys.stderr)
        return 1
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
