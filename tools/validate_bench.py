"""Validate ``BENCH_wallclock.json`` against the uniform record envelope.

Every record the wall-clock bench appends — whatever its mode — must
share one shape, so the performance trajectory stays machine-readable
across PRs:

* top level is a list of records (a legacy single record is accepted and
  reported, but new files should be lists);
* every record has ``benchmark == "wallclock"``, a known ``mode``
  (``backends``/``read``/``ipc``/``faults``/``plan``/``cache``/
  ``oocore``/``serve``), and the shared envelope keys: ``profile``,
  ``scale``, ``n_docs``, ``repeats``, ``kmeans_iters``, ``host``,
  ``config``, ``runs``;
* schema-2 records (``"schema": 2``, everything the bench appends now)
  must also carry a numeric top-level ``peak_rss_kb`` — the memory
  envelope next to the wall time. Historical records without a
  ``schema`` key are grandfathered and not required to have it;
* ``host`` carries ``platform``/``python``/``cpu_count``; ``config`` is
  an object (the mode's backend-side knobs); ``runs`` is a non-empty
  list of objects, each with a numeric ``total_s``;
* every run passes its own self-check: ``ok`` when present, else
  ``output_identical``;
* ``plan`` records additionally carry ``planned_vs_fixed`` (with
  ``within_tolerance``) and a ``fusion`` section (object or null);
* ``cache`` records additionally carry ``cache_summary``, and every
  cached scenario's run embeds its ``cache`` accounting snapshot
  (``hits``/``misses``/``bytes_saved``/``seconds_saved``);
* ``oocore`` records additionally carry ``oocore_summary`` (with
  ``matrix_bytes``), at least one run whose ``memory_budget`` is smaller
  than the matrix footprint, and every budgeted run's ``tiles`` snapshot
  must show ``peak_pinned_bytes <= memory_budget`` — the bounded-memory
  witness is validated, not just recorded;
* ``serve`` records additionally carry ``serve_summary`` with numeric
  ``shed``/``recovered``/``lost``/``double_completed`` counters and the
  steady scenario's latency percentiles; ``lost`` and
  ``double_completed`` must be zero (the exactly-once witness), and
  every scenario run carries its ``done``/``shed``/``recovered``
  counts;
* a truncated, empty, or otherwise unparseable file fails loudly with a
  diagnostic naming the path — it is the append-forever performance
  trajectory, so silent acceptance of a half-written file would poison
  every later append.

Usage::

    python tools/validate_bench.py BENCH_wallclock.json

Exit code 0 when the file passes, 1 with diagnostics when it does not.
"""

from __future__ import annotations

import argparse
import json
import sys

_MODES = {"backends", "read", "ipc", "faults", "plan", "cache", "oocore",
          "serve"}

#: Counters every serve scenario run and the serve summary must carry.
_SERVE_RUN_KEYS = ("jobs", "done", "failed", "shed", "recovered", "lost",
                   "double_completed")
_SERVE_SUMMARY_KEYS = ("shed", "recovered", "lost", "double_completed")

#: Accounting counters every cached scenario's snapshot must carry.
_CACHE_RUN_KEYS = ("hits", "misses", "bytes_saved", "seconds_saved")

_ENVELOPE_KEYS = (
    "benchmark", "mode", "profile", "scale", "n_docs", "repeats",
    "kmeans_iters", "host", "config", "runs",
)

_HOST_KEYS = ("platform", "python", "cpu_count")


def _validate_record(record: object, label: str) -> list[str]:
    problems: list[str] = []
    if not isinstance(record, dict):
        return [f"{label}: record is not an object"]
    for key in _ENVELOPE_KEYS:
        if key not in record:
            problems.append(f"{label}: lacks envelope key {key!r}")
    if problems:
        return problems

    if record["benchmark"] != "wallclock":
        problems.append(
            f"{label}: benchmark must be 'wallclock', got "
            f"{record['benchmark']!r}"
        )
    if record["mode"] not in _MODES:
        problems.append(
            f"{label}: unknown mode {record['mode']!r} "
            f"(expected one of {sorted(_MODES)})"
        )

    # schema 2 added the required top-level peak_rss_kb; records predating
    # the schema key are historical and tolerated without it.
    schema = record.get("schema")
    if schema is not None:
        if not isinstance(schema, int) or schema < 2:
            problems.append(
                f"{label}: schema must be an integer >= 2 when present, "
                f"got {schema!r}"
            )
        elif not isinstance(record.get("peak_rss_kb"), (int, float)):
            problems.append(
                f"{label}: schema-{schema} record lacks numeric 'peak_rss_kb'"
            )

    host = record["host"]
    if not isinstance(host, dict):
        problems.append(f"{label}: host must be an object")
    else:
        for key in _HOST_KEYS:
            if key not in host:
                problems.append(f"{label}: host lacks {key!r}")
    if not isinstance(record["config"], dict):
        problems.append(f"{label}: config must be an object")

    runs = record["runs"]
    if not isinstance(runs, list) or not runs:
        problems.append(f"{label}: runs must be a non-empty list")
        runs = []
    for index, run in enumerate(runs):
        if not isinstance(run, dict):
            problems.append(f"{label}: run {index} is not an object")
            continue
        if not isinstance(run.get("total_s"), (int, float)):
            problems.append(f"{label}: run {index} lacks numeric 'total_s'")
        check = run.get("ok", run.get("output_identical"))
        if check is None:
            problems.append(
                f"{label}: run {index} has neither 'ok' nor "
                f"'output_identical'"
            )
        elif not check:
            problems.append(f"{label}: run {index} failed its self-check")

    if record["mode"] == "plan":
        pvf = record.get("planned_vs_fixed")
        if not isinstance(pvf, dict) or "within_tolerance" not in pvf:
            problems.append(
                f"{label}: plan record lacks planned_vs_fixed"
                f".within_tolerance"
            )
        elif not pvf["within_tolerance"]:
            problems.append(f"{label}: planned run outside tolerance")
        if "fusion" not in record:
            problems.append(f"{label}: plan record lacks 'fusion'")
        elif record["fusion"] is not None and not record["fusion"].get("ok"):
            problems.append(f"{label}: fusion failed to eliminate bytes")

    if record["mode"] == "cache":
        if not isinstance(record.get("cache_summary"), dict):
            problems.append(f"{label}: cache record lacks 'cache_summary'")
        for index, run in enumerate(runs):
            if not isinstance(run, dict):
                continue
            if run.get("scenario") == "uncached":
                continue
            snapshot = run.get("cache")
            if not isinstance(snapshot, dict):
                problems.append(
                    f"{label}: cache run {index} lacks its 'cache' "
                    f"accounting snapshot"
                )
                continue
            for key in _CACHE_RUN_KEYS:
                if not isinstance(snapshot.get(key), (int, float)):
                    problems.append(
                        f"{label}: cache run {index} snapshot lacks "
                        f"numeric {key!r}"
                    )

    if record["mode"] == "oocore":
        summary = record.get("oocore_summary")
        if not isinstance(summary, dict) or not isinstance(
            summary.get("matrix_bytes"), int
        ):
            problems.append(
                f"{label}: oocore record lacks oocore_summary.matrix_bytes"
            )
            matrix_bytes = None
        else:
            matrix_bytes = summary["matrix_bytes"]
        under_matrix = 0
        for index, run in enumerate(runs):
            if not isinstance(run, dict):
                continue
            if not isinstance(run.get("peak_rss_kb"), (int, float)):
                problems.append(
                    f"{label}: oocore run {index} lacks numeric 'peak_rss_kb'"
                )
            budget = run.get("memory_budget")
            if budget is None:
                continue  # the untiled reference
            if not isinstance(budget, int):
                problems.append(
                    f"{label}: oocore run {index} memory_budget must be an "
                    f"integer or null"
                )
                continue
            if matrix_bytes is not None and budget < matrix_bytes:
                under_matrix += 1
            tiles = run.get("tiles")
            if not isinstance(tiles, dict) or not isinstance(
                tiles.get("peak_pinned_bytes"), int
            ):
                problems.append(
                    f"{label}: oocore run {index} lacks its 'tiles' snapshot "
                    f"with integer 'peak_pinned_bytes'"
                )
            elif tiles["peak_pinned_bytes"] > budget:
                problems.append(
                    f"{label}: oocore run {index} peak_pinned_bytes "
                    f"{tiles['peak_pinned_bytes']} exceeds its memory_budget "
                    f"{budget}"
                )
        if matrix_bytes is not None and under_matrix == 0:
            problems.append(
                f"{label}: oocore record has no run with memory_budget < "
                f"matrix_bytes — the out-of-core case is the point"
            )

    if record["mode"] == "serve":
        summary = record.get("serve_summary")
        if not isinstance(summary, dict):
            problems.append(f"{label}: serve record lacks 'serve_summary'")
        else:
            for key in _SERVE_SUMMARY_KEYS:
                if not isinstance(summary.get(key), int):
                    problems.append(
                        f"{label}: serve_summary lacks integer {key!r}"
                    )
            for key in ("lost", "double_completed"):
                if summary.get(key):
                    problems.append(
                        f"{label}: serve_summary.{key} = {summary[key]} — "
                        f"completion is not exactly-once"
                    )
            for key in ("latency_p50_s", "latency_p95_s"):
                if not isinstance(summary.get(key), (int, float)):
                    problems.append(
                        f"{label}: serve_summary lacks numeric {key!r} "
                        f"(latency percentiles are the load-test point)"
                    )
        for index, run in enumerate(runs):
            if not isinstance(run, dict):
                continue
            for key in _SERVE_RUN_KEYS:
                if not isinstance(run.get(key), int):
                    problems.append(
                        f"{label}: serve run {index} lacks integer {key!r}"
                    )
    return problems


def validate(payload: object) -> list[str]:
    """Return a list of problems (empty = valid)."""
    records = payload if isinstance(payload, list) else [payload]
    if not records:
        return ["file contains no benchmark records"]
    problems: list[str] = []
    for index, record in enumerate(records):
        problems.extend(_validate_record(record, f"record {index}"))
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench", help="BENCH_wallclock.json file to validate")
    args = parser.parse_args(argv)

    try:
        with open(args.bench, "r", encoding="utf-8") as handle:
            raw = handle.read()
    except OSError as exc:
        print(f"error: cannot read {args.bench}: {exc}", file=sys.stderr)
        return 1
    if not raw.strip():
        print(
            f"error: {args.bench} is empty — the file was truncated "
            f"(interrupted write?); restore it from version control before "
            f"appending new records",
            file=sys.stderr,
        )
        return 1
    try:
        payload = json.loads(raw)
    except ValueError as exc:
        print(
            f"error: {args.bench} is not valid JSON (truncated or corrupt "
            f"— restore it from version control): {exc}",
            file=sys.stderr,
        )
        return 1

    problems = validate(payload)
    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        return 1

    records = payload if isinstance(payload, list) else [payload]
    modes = [record["mode"] for record in records]
    print(f"{args.bench}: {len(records)} valid record(s) "
          f"(modes: {', '.join(modes)})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
