"""Calibration harness: measured-vs-paper for every anchor quantity.

Run with ``python tools/calibrate.py [scale]``. Prints each paper anchor
next to the value the current cost constants produce, so the constants in
``repro.core.cost_model`` and ``repro.dicts.cost`` can be tuned until the
shapes match. All reported seconds are full-scale (the WorkloadScale does
the extrapolation at metering time).

Development tool; the polished per-figure reports live in ``benchmarks/``.
"""

from __future__ import annotations

import sys

from repro.bench import prepare_workload, run_paper_workflow
from repro.text import MIX_PROFILE, NSF_ABSTRACTS_PROFILE


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    mix = prepare_workload(MIX_PROFILE, scale=scale)
    nsf = prepare_workload(NSF_ABSTRACTS_PROFILE, scale=scale / 2)
    print(f"mix: {mix.n_docs} docs, vocab {mix.stats.distinct_words}, "
          f"doc_factor {mix.scale.doc_factor:.0f}, vocab_factor {mix.scale.vocab_factor:.1f}")
    print(f"nsf: {nsf.n_docs} docs, vocab {nsf.stats.distinct_words}, "
          f"doc_factor {nsf.scale.doc_factor:.0f}, vocab_factor {nsf.scale.vocab_factor:.1f}")

    print("=== Fig 4 (Mix) ===")
    for kind in ("map", "unordered_map"):
        r1 = run_paper_workflow(mix, "merged", kind, workers=1)
        r16 = run_paper_workflow(mix, "merged", kind, workers=16)
        b1, b16 = r1.breakdown(), r16.breakdown()
        print(f"-- {kind} @1T : " + "  ".join(f"{k}={v:7.2f}" for k, v in b1.items()))
        print(f"-- {kind} @16T: " + "  ".join(f"{k}={v:7.2f}" for k, v in b16.items()))
        print(f"   transform scaling: {b1['transform']/b16['transform']:.2f}x "
              f"(paper: map 6.1x, u-map 3.4x); "
              f"input+wc scaling: {b1['input+wc']/b16['input+wc']:.2f}x; "
              f"peak mem {r16.peak_resident_bytes/1e9:.2f} GB (paper: map 0.42, u-map 12.8)")

    print("=== Fig 1 (kmeans speedups) ===")
    for label, wl, paper in (("mix", mix, "2.5x@20"), ("nsf", nsf, "8x@20")):
        times = {}
        for T in (1, 4, 8, 16, 20):
            times[T] = run_paper_workflow(wl, "merged", "map", workers=T).breakdown()["kmeans"]
        print(f"   {label}: " + str({T: round(times[1]/t, 2) for T, t in times.items()})
              + f"  seq={times[1]:.1f}s (paper {'3.3s' if label=='mix' else '40.9s'}, {paper})")

    print("=== Fig 2 (tfidf speedups incl. serial output) ===")
    for label, wl in (("mix", mix), ("nsf", nsf)):
        times = {}
        for T in (1, 4, 8, 16, 20):
            b = run_paper_workflow(wl, "discrete", "map", workers=T).breakdown()
            times[T] = b["input+wc"] + b["transform"] + b["tfidf-output"]
        print(f"   {label}: " + str({T: round(times[1]/t, 2) for T, t in times.items()})
              + "  (paper: mix ~6x, nsf ~7x @20)")

    print("=== Fig 3 (NSF discrete vs merged) ===")
    for T in (1, 16):
        d = run_paper_workflow(nsf, "discrete", "map", workers=T)
        m = run_paper_workflow(nsf, "merged", "map", workers=T)
        print(f"   @{T:2}T: discrete={d.total_s:7.2f}s merged={m.total_s:7.2f}s "
              f"ratio={d.total_s/m.total_s:.2f} (paper: 1.369@1T, 3.84@16T)")
        if T == 1:
            print("      discrete:", {k: round(v, 1) for k, v in d.breakdown().items()})
            print("      merged  :", {k: round(v, 1) for k, v in m.breakdown().items()})


if __name__ == "__main__":
    main()
