"""Validate a Chrome trace-event JSON file emitted by ``--trace``.

Checks the structural contract that chrome://tracing / Perfetto rely on —
and that the repo's observability guarantees promise:

* top level is ``{"traceEvents": [...]}``;
* every event has ``ph``/``pid``/``tid``/``name``, with ``ph`` one of the
  types we emit (``M`` metadata, ``X`` complete);
* every ``X`` event has numeric, non-negative ``ts`` and ``dur``
  (microseconds);
* per ``tid`` lane, ``X`` events do not overlap — one worker cannot run
  two tasks at once;
* optionally (``--phases a,b,...``) every named phase contributed at
  least one span.

Usage::

    PYTHONPATH=src python -m repro pipeline ... --trace t.json
    python tools/validate_trace.py t.json --phases read,input+wc,transform,kmeans

Exit code 0 when the file passes, 1 with a diagnostic when it does not.
"""

from __future__ import annotations

import argparse
import os
import sys

_TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
if _TOOLS_DIR not in sys.path:
    sys.path.insert(0, _TOOLS_DIR)

from loudload import LoudLoadError, load_json_strict  # noqa: E402

#: Event types RunTrace.to_chrome_trace emits.
_ALLOWED_PH = {"M", "X"}

#: Tolerance for lane-overlap checks, in microseconds. Timestamps are
#: rounded to 3 decimals on export, so back-to-back tasks may touch.
_OVERLAP_SLACK_US = 0.002


def validate(trace: object, required_phases: list[str]) -> list[str]:
    """Return a list of problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        return ["top level must be an object with a 'traceEvents' key"]
    events = trace["traceEvents"]
    if not isinstance(events, list) or not events:
        return ["'traceEvents' must be a non-empty list"]

    lanes: dict[object, list[tuple[float, float, str]]] = {}
    seen_phases: set[str] = set()
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index} is not an object")
            continue
        for key in ("ph", "pid", "tid", "name"):
            if key not in event:
                problems.append(f"event {index} lacks required key {key!r}")
        ph = event.get("ph")
        if ph not in _ALLOWED_PH:
            problems.append(f"event {index} has unexpected ph {ph!r}")
            continue
        if ph != "X":
            continue
        ts, dur = event.get("ts"), event.get("dur")
        if not isinstance(ts, (int, float)) or not isinstance(dur, (int, float)):
            problems.append(f"event {index} ({event.get('name')}) has "
                            f"non-numeric ts/dur")
            continue
        if ts < 0 or dur < 0:
            problems.append(f"event {index} ({event.get('name')}) has "
                            f"negative ts/dur ({ts}, {dur})")
        lanes.setdefault(event.get("tid"), []).append(
            (float(ts), float(ts) + float(dur), str(event.get("name")))
        )
        cat = event.get("cat")
        if isinstance(cat, str):
            seen_phases.add(cat)

    if not any(lane for lane in lanes.values()):
        problems.append("no complete ('X') span events found")

    for tid, spans in lanes.items():
        spans.sort()
        for (s0, e0, n0), (s1, _, n1) in zip(spans, spans[1:]):
            if s1 < e0 - _OVERLAP_SLACK_US:
                problems.append(
                    f"lane tid={tid}: spans overlap ({n0} ends at {e0:.3f}us, "
                    f"{n1} starts at {s1:.3f}us)"
                )

    for phase in required_phases:
        if phase not in seen_phases:
            problems.append(f"phase {phase!r} contributed no spans "
                            f"(saw: {sorted(seen_phases)})")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace-event JSON file to validate")
    parser.add_argument("--phases", default="",
                        help="comma-separated phases that must each have "
                        "at least one span")
    args = parser.parse_args(argv)

    try:
        trace = load_json_strict(
            args.trace,
            remedy="re-run the pipeline with --trace to regenerate it",
        )
    except LoudLoadError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    required = [p for p in args.phases.split(",") if p]
    problems = validate(trace, required)
    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        return 1

    n_spans = sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")
    lanes = {e.get("tid") for e in trace["traceEvents"] if e.get("ph") == "X"}
    print(f"{args.trace}: valid trace-event JSON "
          f"({n_spans} spans across {len(lanes)} worker lane(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
