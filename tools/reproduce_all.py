"""One-command reproduction: regenerate every table and figure.

Runs the benchmark suite (which writes one report per paper artefact to
``benchmarks/reports/``) and concatenates the reports into a single
``REPRODUCTION.txt`` at the repository root — the artifact-evaluation
view of the whole study.

Usage::

    python tools/reproduce_all.py [--scale 0.01]

Higher scales raise fidelity (and wall-clock time) — the scale only
affects how large a corpus the real operators run on; reported numbers
are always full-scale virtual times.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
REPORT_DIR = os.path.join(REPO, "benchmarks", "reports")

# Presentation order: paper artefacts first, then extensions.
REPORT_ORDER = [
    "table1_datasets",
    "fig1_kmeans_scaling",
    "fig1_sequential_anchors",
    "fig2_tfidf_scaling",
    "fig3_workflow_fusion",
    "fig4_data_structures",
    "fig4_mixed_dicts",
    "sec31_weka_baseline",
    "sec34_dict_speedup",
    "ablation_planner",
    "ablation_parallel_io",
    "ablation_btree",
]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=None,
                        help="corpus scale (default: benchmark default 0.01)")
    parser.add_argument("--skip-run", action="store_true",
                        help="only assemble REPRODUCTION.txt from existing reports")
    args = parser.parse_args()

    if not args.skip_run:
        env = dict(os.environ)
        if args.scale is not None:
            env["REPRO_BENCH_SCALE"] = str(args.scale)
        print("running the benchmark suite (several minutes)...", flush=True)
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "benchmarks/", "--benchmark-only"],
            cwd=REPO,
            env=env,
        )
        if proc.returncode != 0:
            print("benchmark suite failed", file=sys.stderr)
            return proc.returncode

    blocks = []
    for name in REPORT_ORDER:
        path = os.path.join(REPORT_DIR, f"{name}.txt")
        if os.path.exists(path):
            with open(path, encoding="utf-8") as handle:
                blocks.append(handle.read().rstrip())
        else:
            blocks.append(f"[missing report: {name}]")
    combined = (
        "REPRODUCTION — Operator and Workflow Optimization for "
        "High-Performance Analytics (MEDAL/EDBT 2016)\n"
        "Every table and figure, measured on the simulated paper node.\n"
        "See EXPERIMENTS.md for the annotated paper-vs-measured record.\n\n"
        + "\n\n".join("=" * 72 + "\n" + block for block in blocks)
        + "\n"
    )
    out_path = os.path.join(REPO, "REPRODUCTION.txt")
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(combined)
    print(f"wrote {out_path} ({len(blocks)} sections)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
